//! # mempersp — memory perspective for performance analysis
//!
//! A Rust reproduction of *"Integrating Memory Perspective into the BSC
//! Performance Tools"* (Servat et al., ICPP 2017).
//!
//! This façade crate re-exports the whole suite:
//!
//! * [`memsim`] — deterministic multi-level memory-hierarchy simulator
//!   (the stand-in for the Haswell node used in the paper);
//! * [`pebs`] — software PMU: counters and PEBS-style precise memory
//!   sampling with event multiplexing;
//! * [`extrae`] — the monitoring runtime: instrumentation, allocation
//!   interposition, data-object resolution and Paraver-like traces;
//! * [`store`] — the chunked, indexed binary trace container (`.mps`)
//!   with predicate-pushdown queries and a sharded block cache;
//! * [`folding`] — the Folding mechanism that turns sparse samples from
//!   repetitive regions into one detailed synthetic instance;
//! * [`server`] — the long-running trace-analysis service: an HTTP/1.1
//!   + JSON query/fold server over a repository of `.mps` stores;
//! * [`hpcg`] — the HPCG 3.0 benchmark reimplementation used in the
//!   paper's evaluation;
//! * [`workloads`] — additional instrumented kernels;
//! * [`core`] — the integrated work-flow: simulated machine, run harness,
//!   analyses and figure emission.
//!
//! ## Quickstart
//!
//! ```
//! use mempersp::core::{Machine, MachineConfig};
//! use mempersp::workloads::StreamTriad;
//!
//! let mut machine = Machine::new(MachineConfig::small());
//! let report = machine.run(&mut StreamTriad::new(1 << 14, 3));
//! assert!(report.trace.num_events() > 0);
//! ```

pub use mempersp_core as core;
pub use mempersp_extrae as extrae;
pub use mempersp_folding as folding;
pub use mempersp_hpcg as hpcg;
pub use mempersp_memsim as memsim;
pub use mempersp_pebs as pebs;
pub use mempersp_server as server;
pub use mempersp_store as store;
pub use mempersp_workloads as workloads;
