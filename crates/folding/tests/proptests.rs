//! Property-based tests for the Folding mechanism.

use mempersp_extrae::{Tracer, TracerConfig};
use mempersp_folding::pava::pava_nondecreasing;
use mempersp_folding::{fold_region, FoldingConfig, MonotoneCurve};
use mempersp_pebs::{CounterSnapshot, EventKind};
use proptest::prelude::*;

proptest! {
    /// PAVA output is non-decreasing, length-preserving, and preserves
    /// the weighted mean.
    #[test]
    fn pava_invariants(
        pairs in prop::collection::vec((0.0f64..1.0, 0.1f64..10.0), 1..200),
    ) {
        let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let weights: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let out = pava_nondecreasing(&values, &weights);
        prop_assert_eq!(out.len(), values.len());
        for w in out.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        let mean_in: f64 = values.iter().zip(&weights).map(|(v, w)| v * w).sum::<f64>()
            / weights.iter().sum::<f64>();
        let mean_out: f64 = out.iter().zip(&weights).map(|(v, w)| v * w).sum::<f64>()
            / weights.iter().sum::<f64>();
        prop_assert!((mean_in - mean_out).abs() < 1e-9, "PAVA preserves the weighted mean");
    }

    /// PAVA is idempotent: projecting an already-monotone sequence is
    /// the identity.
    #[test]
    fn pava_idempotent(
        pairs in prop::collection::vec((0.0f64..1.0, 0.1f64..10.0), 1..100),
    ) {
        let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let weights: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let once = pava_nondecreasing(&values, &weights);
        let twice = pava_nondecreasing(&once, &weights);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Curves built from arbitrary knots stay within [0,1], are
    /// monotone, and hit their anchors.
    #[test]
    fn curve_stays_in_unit_box(
        raw in prop::collection::vec((0.001f64..0.999, 0.0f64..1.0), 0..50),
    ) {
        let mut knots = raw;
        knots.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        knots.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
        let c = MonotoneCurve::from_knots(&knots);
        prop_assert_eq!(c.eval(0.0), 0.0);
        prop_assert_eq!(c.eval(1.0), 1.0);
        let mut prev = -1e-12;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let y = c.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y >= prev - 1e-12, "monotone");
            prop_assert!(c.slope(x) >= 0.0);
            prev = y;
        }
    }

    /// Folding a region whose counters advance *linearly* in time
    /// recovers (approximately) the identity progress curve and a flat
    /// rate, regardless of instance count, duration and sampling.
    #[test]
    fn fold_recovers_linear_progress(
        n_instances in 3usize..20,
        samples in 3usize..20,
        dur in 1_000u64..100_000,
        total in 1_000u64..1_000_000,
    ) {
        let mut t = Tracer::new(TracerConfig { freq_mhz: 2000, ..Default::default() }, 1);
        let ip = t.location("lin.cpp", 1, "lin");
        let mk = |inst: u64| {
            let mut v = [0u64; EventKind::ALL.len()];
            v[EventKind::Instructions.index()] = inst;
            CounterSnapshot::from_values(v)
        };
        let mut now = 0u64;
        let mut base = 0u64;
        for _ in 0..n_instances {
            t.enter(0, "R", mk(base), now);
            for s in 1..=samples {
                let x = s as f64 / (samples + 1) as f64;
                t.record_counter_sample(
                    0,
                    ip,
                    mk(base + (x * total as f64) as u64),
                    now + (x * dur as f64) as u64,
                );
            }
            t.exit(0, "R", mk(base + total), now + dur);
            base += total;
            now += dur + 17;
        }
        let tr = t.finish("linear");
        let f = fold_region(&tr, "R", &FoldingConfig::default()).unwrap();
        let c = f.counter(EventKind::Instructions);
        prop_assert!((c.avg_total - total as f64).abs() < 1.0);
        for x in [0.2, 0.5, 0.8] {
            prop_assert!((c.curve.eval(x) - x).abs() < 0.1, "eval({x}) = {}", c.curve.eval(x));
        }
        // Flat rate ⇒ MIPS ≈ mean MIPS everywhere.
        let mean = f.mean_mips();
        prop_assert!(mean > 0.0);
        let mid = f.mips_at(0.5);
        prop_assert!((mid - mean).abs() / mean < 0.35, "mid {mid} vs mean {mean}");
    }
}
