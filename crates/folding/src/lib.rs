//! # mempersp-folding — the Folding mechanism
//!
//! Folding (Servat et al., ICPP 2011) turns *coarse-grained* samples
//! scattered over many dynamic instances of a repetitive code region
//! into *one* synthetic, densely-sampled instance:
//!
//! 1. collect the region's instances from the instrumented enter/exit
//!    events, rejecting duration outliers ([`instances`]);
//! 2. map every sample inside an instance to a **normalized time**
//!    x ∈ [0, 1] and, for counter samples, to the **normalized counter
//!    progress** y ∈ [0, 1] within that instance ([`pool`]);
//! 3. fit the pooled (x, y) cloud per counter with a **monotone
//!    piecewise-linear model** (binned means + pool-adjacent-violators,
//!    anchored at (0,0) and (1,1)) whose slope is the instantaneous
//!    event rate ([`pava`], [`curve`]);
//! 4. expose the three orthogonal panels of the paper's Fig. 1:
//!    source-code lines, addresses referenced, and performance
//!    ([`FoldedRegion`]).
//!
//! The folded performance panel reports exactly what the paper plots:
//! *counter / instruction* curves (branches and L1D/L2/L3 misses per
//! instruction) and achieved MIPS over the folded time axis.

pub mod cluster;
pub mod curve;
pub mod digest;
pub mod engine;
pub mod fold;
pub mod instances;
pub mod pava;
pub mod pool;

pub use cluster::{cluster_by_duration, DurationCluster};
pub use curve::MonotoneCurve;
pub use digest::{config_digest, fold_request_digest, Fnv64};
pub use engine::{fold_regions, fold_regions_source, RegionRequest, FOLD_KINDS};
pub use fold::{
    fold_region, fold_region_source, FitModel, FoldError, FoldedCounter, FoldedRegion,
    FoldingConfig,
};
pub use instances::{collect_instances, collect_instances_multi, InstanceFilter, RegionInstance};
pub use pool::{pool_all, pool_samples, AddrPoint, FileId, LinePoint, PooledSamples};
