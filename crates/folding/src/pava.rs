//! Weighted isotonic regression via the Pool-Adjacent-Violators
//! Algorithm (PAVA).
//!
//! Counter values are cumulative, so the folded progress curve must be
//! non-decreasing; PAVA projects the noisy binned means onto the
//! monotone cone in O(n).

/// Weighted PAVA: given `values[i]` with positive `weights[i]`,
/// returns the non-decreasing sequence minimizing the weighted squared
/// error. Zero-weight entries are treated as weight-free placeholders
/// that simply follow their pool.
pub fn pava_nondecreasing(values: &[f64], weights: &[f64]) -> Vec<f64> {
    assert_eq!(values.len(), weights.len());
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    // Blocks of pooled entries: (mean, weight, count).
    let mut means: Vec<f64> = Vec::with_capacity(n);
    let mut wsum: Vec<f64> = Vec::with_capacity(n);
    let mut count: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        means.push(values[i]);
        wsum.push(weights[i].max(0.0));
        count.push(1);
        // Merge while the monotonicity constraint is violated.
        while means.len() >= 2 {
            let m = means.len();
            if means[m - 2] <= means[m - 1] {
                break;
            }
            let w_total = wsum[m - 2] + wsum[m - 1];
            let merged = if w_total > 0.0 {
                (means[m - 2] * wsum[m - 2] + means[m - 1] * wsum[m - 1]) / w_total
            } else {
                // Both weightless: plain average keeps determinism.
                (means[m - 2] + means[m - 1]) / 2.0
            };
            means[m - 2] = merged;
            wsum[m - 2] = w_total;
            count[m - 2] += count[m - 1];
            means.pop();
            wsum.pop();
            count.pop();
        }
    }
    let mut out = Vec::with_capacity(n);
    for (m, c) in means.iter().zip(count.iter()) {
        for _ in 0..*c {
            out.push(*m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_nondecreasing(v: &[f64]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1] + 1e-12)
    }

    #[test]
    fn already_monotone_is_unchanged() {
        let v = vec![0.0, 0.25, 0.5, 0.75, 1.0];
        let w = vec![1.0; 5];
        assert_eq!(pava_nondecreasing(&v, &w), v);
    }

    #[test]
    fn single_violation_pooled() {
        let v = vec![0.0, 0.6, 0.4, 1.0];
        let w = vec![1.0; 4];
        let out = pava_nondecreasing(&v, &w);
        assert!(is_nondecreasing(&out));
        assert!((out[1] - 0.5).abs() < 1e-12);
        assert!((out[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weights_bias_the_pool() {
        let v = vec![0.8, 0.2];
        let w = vec![3.0, 1.0];
        let out = pava_nondecreasing(&v, &w);
        // Pooled mean = (0.8*3 + 0.2*1)/4 = 0.65.
        assert!((out[0] - 0.65).abs() < 1e-12);
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn strictly_decreasing_collapses_to_mean() {
        let v = vec![4.0, 3.0, 2.0, 1.0];
        let w = vec![1.0; 4];
        let out = pava_nondecreasing(&v, &w);
        assert!(out.iter().all(|&x| (x - 2.5).abs() < 1e-12));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(pava_nondecreasing(&[], &[]).is_empty());
        assert_eq!(pava_nondecreasing(&[7.0], &[1.0]), vec![7.0]);
    }

    #[test]
    fn zero_weight_entries_follow_pool() {
        let v = vec![0.0, 100.0, 0.5, 1.0];
        let w = vec![1.0, 0.0, 1.0, 1.0];
        let out = pava_nondecreasing(&v, &w);
        assert!(is_nondecreasing(&out));
        // The weightless spike cannot pull the pooled value above its
        // weighted neighbours' mean.
        assert!(out[1] <= 0.5 + 1e-12, "got {out:?}");
    }

    #[test]
    fn output_preserves_length_and_bounds() {
        let v: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64 / 100.0).collect();
        let w = vec![1.0; 100];
        let out = pava_nondecreasing(&v, &w);
        assert_eq!(out.len(), 100);
        assert!(is_nondecreasing(&out));
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(out.iter().all(|&x| x >= lo - 1e-12 && x <= hi + 1e-12));
    }
}
