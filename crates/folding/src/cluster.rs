//! Duration clustering of region instances.
//!
//! The BSC folding tool-chain clusters the instances of a region by
//! behaviour (duration, counters) and folds each cluster separately —
//! one region name can hide several distinct behaviours (the fine and
//! coarse SYMGS calls of a multigrid hierarchy being the canonical
//! example). This module provides a deterministic 1-D k-means over
//! instance durations with automatic k selection by the largest
//! relative gap.

use crate::instances::RegionInstance;
use serde::{Deserialize, Serialize};

/// One duration cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurationCluster {
    /// Mean duration (cycles).
    pub centroid: f64,
    /// Member indices into the instance list handed to
    /// [`cluster_by_duration`].
    pub members: Vec<usize>,
}

impl DurationCluster {
    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Deterministic 1-D k-means (exact via sorting + split optimization
/// would be overkill; Lloyd's with sorted-quantile init converges in
/// a few passes on 1-D data).
fn kmeans_1d(values: &[f64], k: usize) -> Vec<usize> {
    debug_assert!(k >= 1 && k <= values.len());
    // Init: quantile seeds over the sorted values.
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| sorted[(i * (values.len() - 1)) / k.max(1)])
        .collect();
    centroids.dedup();
    let k = centroids.len();
    let mut assign = vec![0usize; values.len()];
    for _ in 0..32 {
        let mut changed = false;
        for (i, &v) in values.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (v - *a).abs().partial_cmp(&(v - *b).abs()).expect("finite")
                })
                .map(|(j, _)| j)
                .expect("k >= 1");
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (i, &v) in values.iter().enumerate() {
            sums[assign[i]] += v;
            counts[assign[i]] += 1;
        }
        for j in 0..k {
            if counts[j] > 0 {
                centroids[j] = sums[j] / counts[j] as f64;
            }
        }
        if !changed {
            break;
        }
    }
    assign
}

/// Cluster instances by duration. `k = None` selects k automatically:
/// the sorted durations are scanned for relative gaps larger than 2×
/// (adjacent durations differing by more than that start a new
/// cluster), capped at 4 clusters.
pub fn cluster_by_duration(instances: &[RegionInstance], k: Option<usize>) -> Vec<DurationCluster> {
    if instances.is_empty() {
        return Vec::new();
    }
    let durations: Vec<f64> = instances.iter().map(|i| i.duration() as f64).collect();

    let k = k.unwrap_or_else(|| {
        let mut sorted = durations.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut clusters = 1usize;
        for w in sorted.windows(2) {
            if w[0] > 0.0 && w[1] / w[0] > 2.0 {
                clusters += 1;
            }
        }
        clusters.min(4)
    })
    .min(instances.len())
    .max(1);

    let assign = kmeans_1d(&durations, k);
    let k_eff = assign.iter().copied().max().unwrap_or(0) + 1;
    let mut clusters: Vec<DurationCluster> = (0..k_eff)
        .map(|_| DurationCluster { centroid: 0.0, members: Vec::new() })
        .collect();
    for (i, &c) in assign.iter().enumerate() {
        clusters[c].members.push(i);
    }
    clusters.retain(|c| !c.is_empty());
    for c in &mut clusters {
        c.centroid =
            c.members.iter().map(|&i| durations[i]).sum::<f64>() / c.members.len() as f64;
    }
    // Slowest cluster first (the usual analysis target).
    clusters.sort_by(|a, b| b.centroid.partial_cmp(&a.centroid).expect("finite"));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_pebs::CounterSnapshot;

    fn inst(duration: u64) -> RegionInstance {
        RegionInstance {
            core: 0,
            start_cycles: 0,
            end_cycles: duration,
            counters_in: CounterSnapshot::default(),
            counters_out: CounterSnapshot::default(),
        }
    }

    #[test]
    fn separates_mg_level_durations() {
        // 8 fine (≈1000), 8 coarse (≈120), 4 coarsest (≈15).
        let mut v = Vec::new();
        for i in 0..8 {
            v.push(inst(1000 + i));
        }
        for i in 0..8 {
            v.push(inst(120 + i));
        }
        for i in 0..4 {
            v.push(inst(15 + i));
        }
        let clusters = cluster_by_duration(&v, None);
        assert_eq!(clusters.len(), 3, "{clusters:?}");
        assert_eq!(clusters[0].len(), 8);
        assert!(clusters[0].centroid > 1000.0 - 1.0);
        assert_eq!(clusters[1].len(), 8);
        assert_eq!(clusters[2].len(), 4);
        // Members index the original list.
        assert!(clusters[0].members.iter().all(|&i| i < 8));
    }

    #[test]
    fn uniform_durations_single_cluster() {
        let v: Vec<RegionInstance> = (0..10).map(|i| inst(500 + i % 3)).collect();
        let clusters = cluster_by_duration(&v, None);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 10);
    }

    #[test]
    fn explicit_k_respected() {
        let v: Vec<RegionInstance> = (0..12).map(|i| inst(100 * (i + 1))).collect();
        let clusters = cluster_by_duration(&v, Some(3));
        assert_eq!(clusters.len(), 3);
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(cluster_by_duration(&[], None).is_empty());
        let one = cluster_by_duration(&[inst(42)], None);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].centroid, 42.0);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let v = vec![inst(10), inst(20)];
        let clusters = cluster_by_duration(&v, Some(10));
        assert!(clusters.len() <= 2);
    }
}
