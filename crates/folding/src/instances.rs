//! Instance detection: find the dynamic executions of a region and
//! their per-instance counter deltas, rejecting outliers.
//!
//! The folding literature filters instances whose duration deviates
//! from the typical one (perturbed by OS noise, signals, or trace
//! flushes); we use the robust median ± k·MAD criterion.

use mempersp_extrae::events::{EventPayload, RegionId};
use mempersp_extrae::Trace;
use mempersp_pebs::CounterSnapshot;
use serde::{Deserialize, Serialize};

/// One dynamic execution of the folded region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionInstance {
    pub core: usize,
    pub start_cycles: u64,
    pub end_cycles: u64,
    /// Counters at entry.
    pub counters_in: CounterSnapshot,
    /// Counters at exit.
    pub counters_out: CounterSnapshot,
}

impl RegionInstance {
    pub fn duration(&self) -> u64 {
        self.end_cycles - self.start_cycles
    }

    /// Normalized position of `cycles` within this instance.
    pub fn normalize(&self, cycles: u64) -> f64 {
        debug_assert!(cycles >= self.start_cycles && cycles <= self.end_cycles);
        if self.duration() == 0 {
            0.0
        } else {
            (cycles - self.start_cycles) as f64 / self.duration() as f64
        }
    }

    /// Does this instance contain the timestamp?
    pub fn contains(&self, cycles: u64) -> bool {
        (self.start_cycles..=self.end_cycles).contains(&cycles)
    }
}

/// Outlier-filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceFilter {
    /// Reject instances whose duration is farther than `mad_k` MADs
    /// from the median duration. `f64::INFINITY` keeps everything.
    pub mad_k: f64,
    /// Before the MAD step, keep only instances at least this fraction
    /// of the *longest* instance. The folding literature clusters
    /// instances by duration and folds each cluster separately; this
    /// selects the slowest cluster — e.g. the fine-level SYMGS calls
    /// of a multigrid hierarchy, whose coarse-level siblings are ~8×
    /// shorter. 0.0 keeps everything (the default).
    pub min_fraction_of_max: f64,
}

impl Default for InstanceFilter {
    fn default() -> Self {
        Self { mad_k: 5.0, min_fraction_of_max: 0.0 }
    }
}

impl InstanceFilter {
    /// A filter that selects the slowest duration cluster (instances
    /// within `fraction` of the longest) before outlier rejection.
    pub fn slowest_cluster(fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        Self { mad_k: 5.0, min_fraction_of_max: fraction }
    }
}

/// Extract the top-level instances of `region` on every core, with
/// their boundary counter snapshots. Returns `(kept, rejected_count)`.
pub fn collect_instances(
    trace: &Trace,
    region: RegionId,
    filter: InstanceFilter,
) -> (Vec<RegionInstance>, usize) {
    collect_instances_multi(trace, &[region], &[filter])
        .pop()
        .expect("one slot per requested region")
}

/// [`collect_instances`] for many regions in **one pass** over the
/// trace events: per-(region, core) depth counters track top-level
/// nesting for every requested region simultaneously, so folding N
/// regions costs one event scan instead of N.
///
/// `regions[s]` and `filters[s]` describe slot `s`; the result keeps
/// slot order. Duplicate region ids are allowed (each slot accumulates
/// independently).
pub fn collect_instances_multi(
    trace: &Trace,
    regions: &[RegionId],
    filters: &[InstanceFilter],
) -> Vec<(Vec<RegionInstance>, usize)> {
    assert_eq!(regions.len(), filters.len(), "one filter per region");
    let nr = regions.len();
    let nc = trace.meta.num_cores;
    let mut all: Vec<Vec<RegionInstance>> = vec![Vec::new(); nr];
    // State arrays indexed slot * num_cores + core.
    let mut depth = vec![0u32; nr * nc];
    let mut start: Vec<Option<(u64, CounterSnapshot)>> = vec![None; nr * nc];
    for e in &trace.events {
        if e.core >= nc {
            continue;
        }
        match &e.payload {
            EventPayload::RegionEnter { region: r, counters } => {
                for (slot, reg) in regions.iter().enumerate() {
                    if reg == r {
                        let s = slot * nc + e.core;
                        if depth[s] == 0 {
                            start[s] = Some((e.cycles, *counters));
                        }
                        depth[s] += 1;
                    }
                }
            }
            EventPayload::RegionExit { region: r, counters } => {
                for (slot, reg) in regions.iter().enumerate() {
                    if reg == r && depth[slot * nc + e.core] > 0 {
                        let s = slot * nc + e.core;
                        depth[s] -= 1;
                        if depth[s] == 0 {
                            let (st, cin) = start[s].take().expect("enter recorded");
                            all[slot].push(RegionInstance {
                                core: e.core,
                                start_cycles: st,
                                end_cycles: e.cycles,
                                counters_in: cin,
                                counters_out: *counters,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // The legacy single-region collector walked cores in the outer
    // loop, producing core-major, start-ascending order; reproduce it
    // so downstream instance indices are byte-identical.
    for v in &mut all {
        v.sort_by_key(|i| (i.core, i.start_cycles, i.end_cycles));
    }
    all.into_iter()
        .zip(filters)
        .map(|(v, &f)| apply_filter(v, f))
        .collect()
}

/// Apply the outlier filter to one region's collected instances.
fn apply_filter(mut all: Vec<RegionInstance>, filter: InstanceFilter) -> (Vec<RegionInstance>, usize) {
    if all.is_empty() {
        return (all, 0);
    }

    let mut rejected_cluster = 0usize;
    if filter.min_fraction_of_max > 0.0 {
        let max_dur = all.iter().map(|i| i.duration()).max().expect("non-empty") as f64;
        let before = all.len();
        all.retain(|i| i.duration() as f64 >= filter.min_fraction_of_max * max_dur);
        rejected_cluster = before - all.len();
    }

    if !filter.mad_k.is_finite() {
        return (all, rejected_cluster);
    }

    // Robust duration filter.
    let mut durations: Vec<f64> = all.iter().map(|i| i.duration() as f64).collect();
    let median = median_of(&mut durations);
    let mut deviations: Vec<f64> = all
        .iter()
        .map(|i| (i.duration() as f64 - median).abs())
        .collect();
    let mad = median_of(&mut deviations);
    if mad == 0.0 {
        // All identical (or half identical): keep exact matches of the
        // median plus anything within 10 % as a fallback tolerance.
        let tol = median * 0.10;
        let before = all.len();
        let kept: Vec<RegionInstance> = all
            .into_iter()
            .filter(|i| (i.duration() as f64 - median).abs() <= tol)
            .collect();
        let rejected = before - kept.len();
        return (kept, rejected + rejected_cluster);
    }
    let before = all.len();
    let kept: Vec<RegionInstance> = all
        .into_iter()
        .filter(|i| (i.duration() as f64 - median).abs() <= filter.mad_k * mad)
        .collect();
    let rejected = before - kept.len();
    (kept, rejected + rejected_cluster)
}

fn median_of(v: &mut [f64]) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN durations"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::{Tracer, TracerConfig};

    fn trace_with_durations(durations: &[u64]) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let c = CounterSnapshot::default();
        let mut now = 0;
        for &d in durations {
            t.enter(0, "R", c, now);
            t.exit(0, "R", c, now + d);
            now += d + 10;
        }
        t.finish("test")
    }

    #[test]
    fn collects_all_without_filter() {
        let tr = trace_with_durations(&[100, 100, 100]);
        let id = tr.region_id("R").unwrap();
        let (kept, rej) = collect_instances(
            &tr,
            id,
            InstanceFilter { mad_k: f64::INFINITY, ..InstanceFilter::default() },
        );
        assert_eq!(kept.len(), 3);
        assert_eq!(rej, 0);
    }

    #[test]
    fn rejects_duration_outlier() {
        let tr = trace_with_durations(&[100, 101, 99, 102, 98, 5000]);
        let id = tr.region_id("R").unwrap();
        let (kept, rej) = collect_instances(&tr, id, InstanceFilter::default());
        assert_eq!(kept.len(), 5);
        assert_eq!(rej, 1);
        assert!(kept.iter().all(|i| i.duration() < 200));
    }

    #[test]
    fn identical_durations_all_kept() {
        let tr = trace_with_durations(&[100; 8]);
        let id = tr.region_id("R").unwrap();
        let (kept, rej) = collect_instances(&tr, id, InstanceFilter::default());
        assert_eq!(kept.len(), 8);
        assert_eq!(rej, 0);
    }

    #[test]
    fn zero_mad_with_outlier_keeps_majority() {
        let tr = trace_with_durations(&[100, 100, 100, 100, 100, 9999]);
        let id = tr.region_id("R").unwrap();
        let (kept, rej) = collect_instances(&tr, id, InstanceFilter::default());
        assert_eq!(kept.len(), 5);
        assert_eq!(rej, 1);
    }

    #[test]
    fn normalize_maps_to_unit_interval() {
        let i = RegionInstance {
            core: 0,
            start_cycles: 100,
            end_cycles: 300,
            counters_in: CounterSnapshot::default(),
            counters_out: CounterSnapshot::default(),
        };
        assert_eq!(i.normalize(100), 0.0);
        assert_eq!(i.normalize(200), 0.5);
        assert_eq!(i.normalize(300), 1.0);
        assert!(i.contains(150));
        assert!(!i.contains(301));
    }

    #[test]
    fn multi_core_instances_collected() {
        let mut t = Tracer::new(TracerConfig::default(), 2);
        let c = CounterSnapshot::default();
        t.enter(0, "R", c, 0);
        t.exit(0, "R", c, 100);
        t.enter(1, "R", c, 5);
        t.exit(1, "R", c, 105);
        let tr = t.finish("test");
        let id = tr.region_id("R").unwrap();
        let (kept, _) = collect_instances(&tr, id, InstanceFilter::default());
        assert_eq!(kept.len(), 2);
        assert_eq!(kept.iter().map(|i| i.core).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn multi_matches_per_region_collection() {
        let mut t = Tracer::new(TracerConfig::default(), 2);
        let c = CounterSnapshot::default();
        // Interleaved + nested instances of two regions on two cores.
        t.enter(0, "A", c, 0);
        t.enter(0, "B", c, 10);
        t.exit(0, "B", c, 20);
        t.exit(0, "A", c, 100);
        t.enter(1, "B", c, 5);
        t.exit(1, "B", c, 15);
        t.enter(1, "A", c, 30);
        t.exit(1, "A", c, 130);
        let tr = t.finish("multi");
        let a = tr.region_id("A").unwrap();
        let b = tr.region_id("B").unwrap();
        let f = InstanceFilter::default();
        let multi = collect_instances_multi(&tr, &[a, b], &[f, f]);
        assert_eq!(multi[0], collect_instances(&tr, a, f));
        assert_eq!(multi[1], collect_instances(&tr, b, f));
        assert_eq!(multi[0].0.len(), 2);
        assert_eq!(multi[1].0.len(), 2);
    }

    #[test]
    fn empty_region_yields_nothing() {
        let tr = trace_with_durations(&[100]);
        // Region id 0 is "R"; a bogus id produces nothing rather than
        // panicking.
        let (kept, rej) =
            collect_instances(&tr, mempersp_extrae::events::RegionId(7), InstanceFilter::default());
        assert!(kept.is_empty());
        assert_eq!(rej, 0);
    }
}
