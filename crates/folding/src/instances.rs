//! Instance detection: find the dynamic executions of a region and
//! their per-instance counter deltas, rejecting outliers.
//!
//! The folding literature filters instances whose duration deviates
//! from the typical one (perturbed by OS noise, signals, or trace
//! flushes); we use the robust median ± k·MAD criterion.

use mempersp_extrae::events::{EventPayload, RegionId};
use mempersp_extrae::Trace;
use mempersp_pebs::CounterSnapshot;
use serde::{Deserialize, Serialize};

/// One dynamic execution of the folded region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionInstance {
    pub core: usize,
    pub start_cycles: u64,
    pub end_cycles: u64,
    /// Counters at entry.
    pub counters_in: CounterSnapshot,
    /// Counters at exit.
    pub counters_out: CounterSnapshot,
}

impl RegionInstance {
    pub fn duration(&self) -> u64 {
        self.end_cycles - self.start_cycles
    }

    /// Normalized position of `cycles` within this instance.
    pub fn normalize(&self, cycles: u64) -> f64 {
        debug_assert!(cycles >= self.start_cycles && cycles <= self.end_cycles);
        if self.duration() == 0 {
            0.0
        } else {
            (cycles - self.start_cycles) as f64 / self.duration() as f64
        }
    }

    /// Does this instance contain the timestamp?
    pub fn contains(&self, cycles: u64) -> bool {
        (self.start_cycles..=self.end_cycles).contains(&cycles)
    }
}

/// Outlier-filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceFilter {
    /// Reject instances whose duration is farther than `mad_k` MADs
    /// from the median duration. `f64::INFINITY` keeps everything.
    pub mad_k: f64,
    /// Before the MAD step, keep only instances at least this fraction
    /// of the *longest* instance. The folding literature clusters
    /// instances by duration and folds each cluster separately; this
    /// selects the slowest cluster — e.g. the fine-level SYMGS calls
    /// of a multigrid hierarchy, whose coarse-level siblings are ~8×
    /// shorter. 0.0 keeps everything (the default).
    pub min_fraction_of_max: f64,
}

impl Default for InstanceFilter {
    fn default() -> Self {
        Self { mad_k: 5.0, min_fraction_of_max: 0.0 }
    }
}

impl InstanceFilter {
    /// A filter that selects the slowest duration cluster (instances
    /// within `fraction` of the longest) before outlier rejection.
    pub fn slowest_cluster(fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        Self { mad_k: 5.0, min_fraction_of_max: fraction }
    }
}

/// Extract the top-level instances of `region` on every core, with
/// their boundary counter snapshots. Returns `(kept, rejected_count)`.
pub fn collect_instances(
    trace: &Trace,
    region: RegionId,
    filter: InstanceFilter,
) -> (Vec<RegionInstance>, usize) {
    let mut all: Vec<RegionInstance> = Vec::new();
    for core in 0..trace.meta.num_cores {
        let mut depth = 0u32;
        let mut start: Option<(u64, CounterSnapshot)> = None;
        for e in trace.events.iter().filter(|e| e.core == core) {
            match &e.payload {
                EventPayload::RegionEnter { region: r, counters } if *r == region => {
                    if depth == 0 {
                        start = Some((e.cycles, *counters));
                    }
                    depth += 1;
                }
                EventPayload::RegionExit { region: r, counters } if *r == region
                    && depth > 0 => {
                        depth -= 1;
                        if depth == 0 {
                            let (s, cin) = start.take().expect("enter recorded");
                            all.push(RegionInstance {
                                core,
                                start_cycles: s,
                                end_cycles: e.cycles,
                                counters_in: cin,
                                counters_out: *counters,
                            });
                        }
                    }
                _ => {}
            }
        }
    }

    if all.is_empty() {
        return (all, 0);
    }

    let mut rejected_cluster = 0usize;
    if filter.min_fraction_of_max > 0.0 {
        let max_dur = all.iter().map(|i| i.duration()).max().expect("non-empty") as f64;
        let before = all.len();
        all.retain(|i| i.duration() as f64 >= filter.min_fraction_of_max * max_dur);
        rejected_cluster = before - all.len();
    }

    if !filter.mad_k.is_finite() {
        return (all, rejected_cluster);
    }

    // Robust duration filter.
    let mut durations: Vec<f64> = all.iter().map(|i| i.duration() as f64).collect();
    let median = median_of(&mut durations);
    let mut deviations: Vec<f64> = all
        .iter()
        .map(|i| (i.duration() as f64 - median).abs())
        .collect();
    let mad = median_of(&mut deviations);
    if mad == 0.0 {
        // All identical (or half identical): keep exact matches of the
        // median plus anything within 10 % as a fallback tolerance.
        let tol = median * 0.10;
        let before = all.len();
        let kept: Vec<RegionInstance> = all
            .into_iter()
            .filter(|i| (i.duration() as f64 - median).abs() <= tol)
            .collect();
        let rejected = before - kept.len();
        return (kept, rejected + rejected_cluster);
    }
    let before = all.len();
    let kept: Vec<RegionInstance> = all
        .into_iter()
        .filter(|i| (i.duration() as f64 - median).abs() <= filter.mad_k * mad)
        .collect();
    let rejected = before - kept.len();
    (kept, rejected + rejected_cluster)
}

fn median_of(v: &mut [f64]) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN durations"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::{Tracer, TracerConfig};

    fn trace_with_durations(durations: &[u64]) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let c = CounterSnapshot::default();
        let mut now = 0;
        for &d in durations {
            t.enter(0, "R", c, now);
            t.exit(0, "R", c, now + d);
            now += d + 10;
        }
        t.finish("test")
    }

    #[test]
    fn collects_all_without_filter() {
        let tr = trace_with_durations(&[100, 100, 100]);
        let id = tr.region_id("R").unwrap();
        let (kept, rej) = collect_instances(
            &tr,
            id,
            InstanceFilter { mad_k: f64::INFINITY, ..InstanceFilter::default() },
        );
        assert_eq!(kept.len(), 3);
        assert_eq!(rej, 0);
    }

    #[test]
    fn rejects_duration_outlier() {
        let tr = trace_with_durations(&[100, 101, 99, 102, 98, 5000]);
        let id = tr.region_id("R").unwrap();
        let (kept, rej) = collect_instances(&tr, id, InstanceFilter::default());
        assert_eq!(kept.len(), 5);
        assert_eq!(rej, 1);
        assert!(kept.iter().all(|i| i.duration() < 200));
    }

    #[test]
    fn identical_durations_all_kept() {
        let tr = trace_with_durations(&[100; 8]);
        let id = tr.region_id("R").unwrap();
        let (kept, rej) = collect_instances(&tr, id, InstanceFilter::default());
        assert_eq!(kept.len(), 8);
        assert_eq!(rej, 0);
    }

    #[test]
    fn zero_mad_with_outlier_keeps_majority() {
        let tr = trace_with_durations(&[100, 100, 100, 100, 100, 9999]);
        let id = tr.region_id("R").unwrap();
        let (kept, rej) = collect_instances(&tr, id, InstanceFilter::default());
        assert_eq!(kept.len(), 5);
        assert_eq!(rej, 1);
    }

    #[test]
    fn normalize_maps_to_unit_interval() {
        let i = RegionInstance {
            core: 0,
            start_cycles: 100,
            end_cycles: 300,
            counters_in: CounterSnapshot::default(),
            counters_out: CounterSnapshot::default(),
        };
        assert_eq!(i.normalize(100), 0.0);
        assert_eq!(i.normalize(200), 0.5);
        assert_eq!(i.normalize(300), 1.0);
        assert!(i.contains(150));
        assert!(!i.contains(301));
    }

    #[test]
    fn multi_core_instances_collected() {
        let mut t = Tracer::new(TracerConfig::default(), 2);
        let c = CounterSnapshot::default();
        t.enter(0, "R", c, 0);
        t.exit(0, "R", c, 100);
        t.enter(1, "R", c, 5);
        t.exit(1, "R", c, 105);
        let tr = t.finish("test");
        let id = tr.region_id("R").unwrap();
        let (kept, _) = collect_instances(&tr, id, InstanceFilter::default());
        assert_eq!(kept.len(), 2);
        assert_eq!(kept.iter().map(|i| i.core).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn empty_region_yields_nothing() {
        let tr = trace_with_durations(&[100]);
        // Region id 0 is "R"; a bogus id produces nothing rather than
        // panicking.
        let (kept, rej) =
            collect_instances(&tr, mempersp_extrae::events::RegionId(7), InstanceFilter::default());
        assert!(kept.is_empty());
        assert_eq!(rej, 0);
    }
}
