//! The top-level folding pipeline and the folded-region report.

use crate::curve::MonotoneCurve;
use crate::engine::{fold_regions, fold_regions_source, RegionRequest};
use crate::instances::InstanceFilter;
use crate::pool::PooledSamples;
use mempersp_extrae::trace_source::{ScanStats, TraceSource};
use mempersp_extrae::Trace;
use mempersp_pebs::EventKind;
use serde::{Deserialize, Serialize};

/// How the pooled counter cloud is turned into a progress curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitModel {
    /// Binned means projected onto the monotone cone with PAVA (the
    /// default; matches the folding literature's monotone models).
    Isotonic,
    /// Raw binned means, clamped monotone only by the curve
    /// construction (an ablation: noisier slopes, occasional flats).
    BinnedMean,
}

/// Folding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FoldingConfig {
    /// Number of bins used to summarize the pooled point cloud before
    /// the isotonic fit.
    pub bins: usize,
    /// Instance outlier filter.
    pub filter: InstanceFilter,
    /// Minimum kept instances required to fold.
    pub min_instances: usize,
    /// Counter-curve fit model.
    pub fit: FitModel,
}

impl Default for FoldingConfig {
    fn default() -> Self {
        Self {
            bins: 32,
            filter: InstanceFilter::default(),
            min_instances: 1,
            fit: FitModel::Isotonic,
        }
    }
}

/// Errors of the folding pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoldError {
    /// The trace has no region with that name.
    UnknownRegion(String),
    /// Fewer kept instances than `min_instances`.
    TooFewInstances { found: usize, need: usize },
    /// Reading from the trace source failed (message of the I/O error).
    Io(String),
}

impl std::fmt::Display for FoldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoldError::UnknownRegion(r) => write!(f, "region {r:?} not present in trace"),
            FoldError::TooFewInstances { found, need } => {
                write!(f, "only {found} instance(s) kept, need {need}")
            }
            FoldError::Io(msg) => write!(f, "trace source error: {msg}"),
        }
    }
}

impl std::error::Error for FoldError {}

/// The folded model of one hardware counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldedCounter {
    pub kind: EventKind,
    /// Normalized cumulative progress curve.
    pub curve: MonotoneCurve,
    /// Mean per-instance total of this counter.
    pub avg_total: f64,
    /// Pooled points behind the fit.
    pub points: usize,
}

impl FoldedCounter {
    /// Instantaneous event rate at folded time `x`, in events per unit
    /// of normalized time.
    pub fn rate_at(&self, x: f64) -> f64 {
        self.curve.slope(x) * self.avg_total
    }

    /// Cumulative events by folded time `x`.
    pub fn cumulative_at(&self, x: f64) -> f64 {
        self.curve.eval(x) * self.avg_total
    }
}

/// One point of the folded performance panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfPoint {
    /// Normalized folded time.
    pub x: f64,
    /// Folded wall-clock time in milliseconds (x × mean duration).
    pub t_ms: f64,
    /// Instantaneous MIPS at nominal frequency.
    pub mips: f64,
    /// Instantaneous IPC (instructions per cycle, nominal).
    pub ipc: f64,
    /// Counter-per-instruction ratios, indexed by [`EventKind::index`].
    pub per_instruction: [f64; EventKind::ALL.len()],
}

/// The complete folded view of a region — the data behind Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldedRegion {
    pub region: String,
    pub instances_used: usize,
    pub instances_rejected: usize,
    pub avg_duration_cycles: f64,
    pub freq_mhz: u32,
    /// One folded model per counter, indexed by [`EventKind::index`].
    pub counters: Vec<FoldedCounter>,
    /// The pooled raw samples (address + line panels).
    pub pooled: PooledSamples,
}

impl FoldedRegion {
    /// The folded model of one counter.
    pub fn counter(&self, kind: EventKind) -> &FoldedCounter {
        &self.counters[kind.index()]
    }

    /// Mean instance duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.avg_duration_cycles / (self.freq_mhz as f64 * 1000.0)
    }

    /// Mean instance duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.avg_duration_cycles / (self.freq_mhz as f64 * 1e6)
    }

    /// Instantaneous MIPS at folded time `x` (instructions per second
    /// at the nominal frequency, divided by 10⁶ — the paper's bottom
    /// panel right axis).
    pub fn mips_at(&self, x: f64) -> f64 {
        let inst_rate = self.counter(EventKind::Instructions).rate_at(x);
        let dur_s = self.duration_s();
        if dur_s <= 0.0 {
            0.0
        } else {
            inst_rate / dur_s / 1e6
        }
    }

    /// Instantaneous IPC at folded time `x`, using the nominal
    /// frequency (as the paper does: "an IPC of 0.6 considering the
    /// nominal frequency").
    pub fn ipc_at(&self, x: f64) -> f64 {
        let mips = self.mips_at(x);
        mips / self.freq_mhz as f64 * 1000.0
    }

    /// Events of `kind` per instruction at folded time `x` (the
    /// paper's bottom-panel left axis).
    pub fn per_instruction_at(&self, kind: EventKind, x: f64) -> f64 {
        let inst = self.counter(EventKind::Instructions).rate_at(x);
        if inst <= 0.0 {
            0.0
        } else {
            self.counter(kind).rate_at(x) / inst
        }
    }

    /// Sample the full performance panel at `n` uniformly-spaced
    /// folded times.
    pub fn performance_series(&self, n: usize) -> Vec<PerfPoint> {
        assert!(n >= 2);
        let dur_ms = self.duration_ms();
        (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                let mut per_instruction = [0.0; EventKind::ALL.len()];
                for kind in EventKind::ALL {
                    per_instruction[kind.index()] = self.per_instruction_at(kind, x);
                }
                PerfPoint {
                    x,
                    t_ms: x * dur_ms,
                    mips: self.mips_at(x),
                    ipc: self.ipc_at(x),
                    per_instruction,
                }
            })
            .collect()
    }

    /// Root-mean-square residual of one counter's fitted progress
    /// curve against its pooled points (in normalized-progress units,
    /// so 0.01 ≈ "the fit is within 1 % of an instance total").
    /// `None` when the counter has no pooled points.
    pub fn fit_rmse(&self, kind: EventKind) -> Option<f64> {
        let (xs, ys) = self.pooled.counter_xy(kind);
        if xs.is_empty() {
            return None;
        }
        let curve = &self.counter(kind).curve;
        let sse: f64 = xs.iter().zip(ys).map(|(&x, &y)| (curve.eval(x) - y).powi(2)).sum();
        Some((sse / xs.len() as f64).sqrt())
    }

    /// Aggregate MIPS over the whole folded instance (total
    /// instructions / duration).
    pub fn mean_mips(&self) -> f64 {
        let dur_s = self.duration_s();
        if dur_s <= 0.0 {
            0.0
        } else {
            self.counter(EventKind::Instructions).avg_total / dur_s / 1e6
        }
    }
}

/// Run the folding pipeline for `region` over the whole trace.
///
/// ```
/// use mempersp_extrae::{Tracer, TracerConfig};
/// use mempersp_folding::{fold_region, FoldingConfig};
/// use mempersp_pebs::{CounterSnapshot, EventKind};
///
/// let mut t = Tracer::new(TracerConfig::default(), 1);
/// let ip = t.location("kernel.c", 10, "kernel");
/// let snap = |inst: u64| {
///     let mut v = [0u64; EventKind::ALL.len()];
///     v[EventKind::Instructions.index()] = inst;
///     CounterSnapshot::from_values(v)
/// };
/// // Three instances of a region, sampled once in the middle.
/// for k in 0..3u64 {
///     t.enter(0, "R", snap(k * 1000), k * 100);
///     t.record_counter_sample(0, ip, snap(k * 1000 + 500), k * 100 + 50);
///     t.exit(0, "R", snap(k * 1000 + 1000), k * 100 + 100);
/// }
/// let trace = t.finish("doc");
/// let folded = fold_region(&trace, "R", &FoldingConfig::default()).unwrap();
/// assert_eq!(folded.instances_used, 3);
/// // Half the instructions retire by the folded midpoint.
/// let mid = folded.counter(EventKind::Instructions).cumulative_at(0.5);
/// assert!((mid - 500.0).abs() < 50.0);
/// ```
pub fn fold_region(trace: &Trace, region: &str, cfg: &FoldingConfig) -> Result<FoldedRegion, FoldError> {
    fold_regions(trace, &[RegionRequest::with_cfg(region, *cfg)], 1)
        .pop()
        .expect("one result per request")
}

/// [`fold_region`] over any [`TraceSource`]. Only the event kinds
/// folding consumes — region enter/exit, counter samples and PEBS
/// samples — are pulled from the source, so an indexed `.mps` store
/// skips chunks of pure allocation or mux traffic without decoding
/// them. Returns the fold together with the scan's cost accounting.
pub fn fold_region_source(
    source: &mut dyn TraceSource,
    region: &str,
    cfg: &FoldingConfig,
) -> Result<(FoldedRegion, ScanStats), FoldError> {
    let (mut results, stats) =
        fold_regions_source(source, &[RegionRequest::with_cfg(region, *cfg)], 1)?;
    results
        .pop()
        .expect("one result per request")
        .map(|folded| (folded, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    /// Build a trace where R executes `n` times; within each instance,
    /// instructions accrue *non-uniformly*: the first half of the time
    /// retires 25 % of the instructions, the second half 75 %.
    fn skewed_trace(n: usize, samples_per_instance: usize) -> Trace {
        let mut t = Tracer::new(TracerConfig { freq_mhz: 1000, ..Default::default() }, 1);
        let ip = t.location("k.cpp", 10, "k");
        let total = 1_000_000u64;
        let dur = 10_000u64;
        let mut now = 0u64;
        let mut base = 0u64;
        for _ in 0..n {
            let mk = |inst: u64, cyc: u64| {
                let mut v = [0u64; EventKind::ALL.len()];
                v[EventKind::Instructions.index()] = inst;
                v[EventKind::Cycles.index()] = cyc;
                v[EventKind::Branches.index()] = inst / 10;
                CounterSnapshot::from_values(v)
            };
            t.enter(0, "R", mk(base, now), now);
            for s in 1..=samples_per_instance {
                let x = s as f64 / (samples_per_instance + 1) as f64;
                let progress = if x < 0.5 { 0.5 * x } else { 1.5 * x - 0.5 };
                let cycles_at = now + (x * dur as f64) as u64;
                t.record_counter_sample(
                    0,
                    ip,
                    mk(base + (progress * total as f64) as u64, cycles_at),
                    cycles_at,
                );
            }
            t.exit(0, "R", mk(base + total, now + dur), now + dur);
            base += total;
            now += dur + 100;
        }
        t.finish("skewed")
    }

    #[test]
    fn unknown_region_errors() {
        let tr = skewed_trace(2, 3);
        let e = fold_region(&tr, "NOPE", &FoldingConfig::default()).unwrap_err();
        assert!(matches!(e, FoldError::UnknownRegion(_)));
    }

    #[test]
    fn too_few_instances_errors() {
        let tr = skewed_trace(2, 3);
        let cfg = FoldingConfig { min_instances: 5, ..Default::default() };
        let e = fold_region(&tr, "R", &cfg).unwrap_err();
        assert_eq!(e, FoldError::TooFewInstances { found: 2, need: 5 });
    }

    #[test]
    fn folded_curve_recovers_the_skew() {
        let tr = skewed_trace(50, 7);
        let f = fold_region(&tr, "R", &FoldingConfig::default()).unwrap();
        assert_eq!(f.instances_used, 50);
        let c = f.counter(EventKind::Instructions);
        // At x=0.5 true progress is 0.25.
        let got = c.curve.eval(0.5);
        assert!((got - 0.25).abs() < 0.06, "eval(0.5) = {got}, want ≈0.25");
        // Slope in the second half (1.5) is about 3× the first (0.5).
        let ratio = c.curve.slope(0.8) / c.curve.slope(0.2);
        assert!(ratio > 2.0 && ratio < 4.5, "slope ratio {ratio}, want ≈3");
    }

    #[test]
    fn rate_and_cumulative_are_consistent() {
        let tr = skewed_trace(30, 5);
        let f = fold_region(&tr, "R", &FoldingConfig::default()).unwrap();
        let c = f.counter(EventKind::Instructions);
        assert!((c.cumulative_at(1.0) - c.avg_total).abs() < 1e-6);
        assert_eq!(c.cumulative_at(0.0), 0.0);
        // Integrate the rate: ∫₀¹ rate dx == avg_total.
        let n = 1000;
        let integral: f64 = (0..n)
            .map(|i| c.rate_at((i as f64 + 0.5) / n as f64) / n as f64)
            .sum();
        // Midpoint quadrature of a piecewise-constant slope is exact
        // except near knot boundaries: allow O(knots/n) error.
        assert!(
            (integral - c.avg_total).abs() / c.avg_total < 0.05,
            "integral {integral} vs total {}",
            c.avg_total
        );
    }

    #[test]
    fn mips_matches_hand_computation() {
        // 1e6 instructions in 10_000 cycles at 1000 MHz:
        // duration = 10 µs, MIPS = 1e6 / 10e-6 / 1e6 = 1e5.
        let tr = skewed_trace(10, 5);
        let f = fold_region(&tr, "R", &FoldingConfig::default()).unwrap();
        assert!((f.mean_mips() - 1e5).abs() / 1e5 < 1e-9);
        // Instantaneous MIPS in the fast half is ≈1.5× the mean.
        let fast = f.mips_at(0.8);
        assert!(fast > f.mean_mips() * 1.2, "fast-half MIPS {fast}");
        // IPC consistency: IPC = MIPS / freq(MHz) * 1000... at 1000 MHz
        // mean IPC = 1e6 inst / 10_000 cycles = 100 (synthetic counters).
        let ipc = f.ipc_at(0.2) / f.ipc_at(0.2);
        assert!((ipc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_instruction_ratio_recovers_branch_density() {
        let tr = skewed_trace(20, 7);
        let f = fold_region(&tr, "R", &FoldingConfig::default()).unwrap();
        // Branches are exactly inst/10 everywhere.
        for x in [0.1, 0.5, 0.9] {
            let r = f.per_instruction_at(EventKind::Branches, x);
            assert!((r - 0.1).abs() < 0.05, "branches/inst at {x} = {r}");
        }
    }

    #[test]
    fn performance_series_shape() {
        let tr = skewed_trace(10, 5);
        let f = fold_region(&tr, "R", &FoldingConfig::default()).unwrap();
        let s = f.performance_series(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].x, 0.0);
        assert_eq!(s[10].x, 1.0);
        assert!((s[10].t_ms - f.duration_ms()).abs() < 1e-12);
        assert!(s.iter().all(|p| p.mips >= 0.0));
    }

    #[test]
    fn counters_without_samples_use_identity_curve() {
        let tr = skewed_trace(5, 3);
        let f = fold_region(&tr, "R", &FoldingConfig::default()).unwrap();
        // L3Miss never advanced and has no points: identity curve and
        // zero avg_total → zero rate.
        let c = f.counter(EventKind::L3Miss);
        assert_eq!(c.points, 0);
        assert_eq!(c.rate_at(0.5), 0.0);
    }

    #[test]
    fn fit_rmse_reflects_quality() {
        let tr = skewed_trace(50, 7);
        let f = fold_region(&tr, "R", &FoldingConfig::default()).unwrap();
        let rmse = f.fit_rmse(EventKind::Instructions).expect("points exist");
        assert!(rmse < 0.05, "clean synthetic data fits tightly: {rmse}");
        assert!(f.fit_rmse(EventKind::L3Miss).is_none(), "no points, no rmse");
    }

    #[test]
    fn binned_mean_fit_still_recovers_shape() {
        let tr = skewed_trace(50, 7);
        let cfg = FoldingConfig { fit: FitModel::BinnedMean, ..Default::default() };
        let f = fold_region(&tr, "R", &cfg).unwrap();
        let c = f.counter(EventKind::Instructions);
        // Shape recovered within a looser tolerance than the isotonic
        // fit (this is the ablation's point).
        assert!((c.curve.eval(0.5) - 0.25).abs() < 0.1);
        // Curve is still monotone (guaranteed by the construction).
        let s = c.curve.sample(50);
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
    }

    #[test]
    fn duration_conversions() {
        let tr = skewed_trace(5, 3);
        let f = fold_region(&tr, "R", &FoldingConfig::default()).unwrap();
        // 10_000 cycles at 1000 MHz = 10 µs = 0.01 ms.
        assert!((f.duration_ms() - 0.01).abs() < 1e-12);
        assert!((f.duration_s() - 1e-5).abs() < 1e-18);
    }
}
