//! Stable digests over fold requests, for result memoization.
//!
//! The analysis service caches fold results keyed by *(trace
//! identity, region set, fold config)*: the engine is deterministic —
//! byte-identical output at any thread count — so two requests with
//! equal digests are guaranteed equal answers, and the thread count is
//! deliberately **excluded** from the key. The digest is FNV-1a over a
//! canonical byte encoding of every field that can change the result,
//! each value prefixed so permuted field values cannot collide by
//! concatenation.

use crate::engine::RegionRequest;
use crate::fold::{FitModel, FoldingConfig};

/// Incremental FNV-1a (64-bit).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Length-prefixed, so `"ab" + "c"` and `"a" + "bc"` differ.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Bit pattern, with every NaN canonicalized to one encoding.
    pub fn write_f64(&mut self, v: f64) {
        let bits = if v.is_nan() { f64::NAN.to_bits() } else { v.to_bits() };
        self.write_u64(bits);
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn write_config(h: &mut Fnv64, cfg: &FoldingConfig) {
    h.write_u64(cfg.bins as u64);
    h.write_f64(cfg.filter.mad_k);
    h.write_f64(cfg.filter.min_fraction_of_max);
    h.write_u64(cfg.min_instances as u64);
    h.write_u64(match cfg.fit {
        FitModel::Isotonic => 0,
        FitModel::BinnedMean => 1,
    });
}

/// Digest of one [`FoldingConfig`] alone.
pub fn config_digest(cfg: &FoldingConfig) -> u64 {
    let mut h = Fnv64::new();
    write_config(&mut h, cfg);
    h.finish()
}

/// Digest of a full fold request: an opaque trace identity (the caller
/// encodes path/name, event count and format version) plus every
/// region request **in order** — per-region results come back in
/// request order, so order is part of the answer's identity.
pub fn fold_request_digest(trace_identity: &str, requests: &[RegionRequest]) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(trace_identity);
    h.write_u64(requests.len() as u64);
    for r in requests {
        h.write_str(&r.region);
        write_config(&mut h, &r.cfg);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::InstanceFilter;

    fn reqs() -> Vec<RegionRequest> {
        vec![RegionRequest::new("CG_ITERATION"), RegionRequest::new("SYMGS")]
    }

    #[test]
    fn digest_is_stable_for_equal_requests() {
        assert_eq!(
            fold_request_digest("t:100:3", &reqs()),
            fold_request_digest("t:100:3", &reqs())
        );
    }

    #[test]
    fn every_config_field_perturbs_the_digest() {
        let base = FoldingConfig::default();
        let base_d = config_digest(&base);
        let variants = [
            FoldingConfig { bins: base.bins + 1, ..base },
            FoldingConfig { min_instances: base.min_instances + 1, ..base },
            FoldingConfig { fit: FitModel::BinnedMean, ..base },
            FoldingConfig {
                filter: InstanceFilter { mad_k: 3.0, ..base.filter },
                ..base
            },
            FoldingConfig {
                filter: InstanceFilter { min_fraction_of_max: 0.5, ..base.filter },
                ..base
            },
        ];
        for v in variants {
            assert_ne!(config_digest(&v), base_d, "{v:?}");
        }
    }

    #[test]
    fn trace_identity_region_set_and_order_matter() {
        let d = fold_request_digest("a", &reqs());
        assert_ne!(d, fold_request_digest("b", &reqs()));
        assert_ne!(d, fold_request_digest("a", &reqs()[..1]));
        let mut rev = reqs();
        rev.reverse();
        assert_ne!(d, fold_request_digest("a", &rev));
    }

    #[test]
    fn concatenation_cannot_collide() {
        // "ab" + "c" vs "a" + "bc" as region names.
        let left = vec![RegionRequest::new("ab"), RegionRequest::new("c")];
        let right = vec![RegionRequest::new("a"), RegionRequest::new("bc")];
        assert_ne!(fold_request_digest("t", &left), fold_request_digest("t", &right));
    }

    #[test]
    fn infinity_and_nan_are_handled() {
        let inf = FoldingConfig {
            filter: InstanceFilter { mad_k: f64::INFINITY, min_fraction_of_max: 0.0 },
            ..FoldingConfig::default()
        };
        assert_ne!(config_digest(&inf), config_digest(&FoldingConfig::default()));
        assert_eq!(config_digest(&inf), config_digest(&inf));
    }
}
