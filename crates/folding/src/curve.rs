//! The fitted monotone piecewise-linear progress curve.
//!
//! A [`MonotoneCurve`] maps normalized time x ∈ [0, 1] to normalized
//! cumulative counter progress y ∈ [0, 1]; its derivative is the
//! instantaneous event rate in "fraction of the instance total per
//! unit of normalized time".

use serde::{Deserialize, Serialize};

/// Piecewise-linear non-decreasing curve through `(xs[i], ys[i])`,
/// anchored at (0, 0) and (1, 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonotoneCurve {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl MonotoneCurve {
    /// Build from interior knots; endpoints (0,0)/(1,1) are added and
    /// values are clamped into [0, 1] and made non-decreasing.
    /// `knots` must be strictly increasing in x within (0, 1).
    pub fn from_knots(knots: &[(f64, f64)]) -> Self {
        let mut xs = Vec::with_capacity(knots.len() + 2);
        let mut ys = Vec::with_capacity(knots.len() + 2);
        xs.push(0.0);
        ys.push(0.0);
        for &(x, y) in knots {
            assert!(x > 0.0 && x < 1.0, "interior knot x={x} out of (0,1)");
            assert!(
                *xs.last().unwrap() < x,
                "knot x values must be strictly increasing"
            );
            xs.push(x);
            let prev = *ys.last().unwrap();
            ys.push(y.clamp(prev, 1.0));
        }
        xs.push(1.0);
        ys.push(1.0);
        Self { xs, ys }
    }

    /// The identity curve (uniform progress).
    pub fn identity() -> Self {
        Self::from_knots(&[])
    }

    /// Evaluate y(x); x is clamped into [0, 1]. NaN input evaluates to
    /// 0.0 (clamp passes NaN through, which would otherwise panic in
    /// the knot search below).
    pub fn eval(&self, x: f64) -> f64 {
        if x.is_nan() {
            return 0.0;
        }
        let x = x.clamp(0.0, 1.0);
        match self.xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(i) => self.ys[i],
            Err(i) => {
                // x strictly between xs[i-1] and xs[i].
                let (x0, x1) = (self.xs[i - 1], self.xs[i]);
                let (y0, y1) = (self.ys[i - 1], self.ys[i]);
                y0 + (y1 - y0) * (x - x0) / (x1 - x0)
            }
        }
    }

    /// Instantaneous slope dy/dx at x (right-continuous; at x = 1 the
    /// last segment's slope). NaN input yields 0.0, like [`eval`].
    ///
    /// [`eval`]: MonotoneCurve::eval
    pub fn slope(&self, x: f64) -> f64 {
        if x.is_nan() {
            return 0.0;
        }
        let x = x.clamp(0.0, 1.0);
        let i = match self.xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(i) => i.min(self.xs.len() - 2),
            Err(i) => i - 1,
        };
        let dx = self.xs[i + 1] - self.xs[i];
        let dy = self.ys[i + 1] - self.ys[i];
        if dx <= 0.0 {
            0.0
        } else {
            dy / dx
        }
    }

    /// Sample the curve and its slope at `n` uniformly-spaced points,
    /// returning `(x, y, slope)` triples — the plotting payload.
    pub fn sample(&self, n: usize) -> Vec<(f64, f64, f64)> {
        assert!(n >= 2);
        (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                (x, self.eval(x), self.slope(x))
            })
            .collect()
    }

    /// The knot vectors (including anchors).
    pub fn knots(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_curve() {
        let c = MonotoneCurve::identity();
        assert_eq!(c.eval(0.0), 0.0);
        assert_eq!(c.eval(0.5), 0.5);
        assert_eq!(c.eval(1.0), 1.0);
        assert_eq!(c.slope(0.3), 1.0);
    }

    #[test]
    fn eval_interpolates_knots() {
        let c = MonotoneCurve::from_knots(&[(0.5, 0.8)]);
        assert!((c.eval(0.25) - 0.4).abs() < 1e-12);
        assert!((c.eval(0.5) - 0.8).abs() < 1e-12);
        assert!((c.eval(0.75) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn slope_is_piecewise_constant() {
        let c = MonotoneCurve::from_knots(&[(0.5, 0.8)]);
        assert!((c.slope(0.2) - 1.6).abs() < 1e-12);
        assert!((c.slope(0.9) - 0.4).abs() < 1e-12);
        assert!((c.slope(1.0) - 0.4).abs() < 1e-12, "right endpoint uses last segment");
    }

    #[test]
    fn eval_clamps_out_of_range() {
        let c = MonotoneCurve::identity();
        assert_eq!(c.eval(-3.0), 0.0);
        assert_eq!(c.eval(7.0), 1.0);
        assert_eq!(c.eval(f64::NEG_INFINITY), 0.0);
        assert_eq!(c.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn nan_input_is_defined_not_a_panic() {
        let c = MonotoneCurve::from_knots(&[(0.5, 0.8)]);
        assert_eq!(c.eval(f64::NAN), 0.0);
        assert_eq!(c.slope(f64::NAN), 0.0);
    }

    #[test]
    fn non_monotone_knots_are_clamped() {
        let c = MonotoneCurve::from_knots(&[(0.3, 0.6), (0.6, 0.4)]);
        let (_, ys) = c.knots();
        assert!(ys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(c.eval(0.6), 0.6, "second knot clamped up to the first");
    }

    #[test]
    fn sample_covers_unit_interval() {
        let c = MonotoneCurve::from_knots(&[(0.5, 0.2)]);
        let s = c.sample(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[10].0, 1.0);
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12), "y non-decreasing");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn duplicate_knot_x_panics() {
        let _ = MonotoneCurve::from_knots(&[(0.5, 0.2), (0.5, 0.3)]);
    }

    #[test]
    #[should_panic(expected = "out of (0,1)")]
    fn boundary_knot_panics() {
        let _ = MonotoneCurve::from_knots(&[(0.0, 0.2)]);
    }
}
