//! The single-pass, multi-region parallel folding engine.
//!
//! [`fold_regions`] folds **all requested regions from one walk of the
//! trace**: instance collection runs once for every region
//! ([`collect_instances_multi`]), pooling dispatches each sample into
//! every containing region ([`pool_all`]), and the per-(region,
//! counter) curve fits plus the per-region address/line panel sorts
//! become independent **work items** executed on a deterministic
//! worker pool.
//!
//! Determinism: every work item owns its input buffers, is internally
//! sequential, and writes only its own output slot; the thread count
//! decides *which worker* runs an item, never the item's inputs or its
//! floating-point summation order (counter points are sorted by (x, y)
//! before binning in every path). Output is therefore byte-identical
//! at any `--threads N` — the same replay discipline as the memory
//! simulator's epoch pipeline.

use crate::curve::MonotoneCurve;
use crate::fold::{FitModel, FoldError, FoldedCounter, FoldedRegion, FoldingConfig};
use crate::instances::{collect_instances_multi, RegionInstance};
use crate::pava::pava_nondecreasing;
use crate::pool::{pool_all, sort_pairs_with, AddrPoint, LinePoint};
use mempersp_extrae::query::{EventClass, Query};
use mempersp_extrae::trace_source::{ScanStats, TraceSource};
use mempersp_extrae::Trace;
use mempersp_pebs::EventKind;

const NKINDS: usize = EventKind::ALL.len();

/// The event classes folding consumes; everything else (allocations,
/// mux switches, user events) can stay undecoded in an indexed store.
pub const FOLD_KINDS: [EventClass; 4] = [
    EventClass::RegionEnter,
    EventClass::RegionExit,
    EventClass::CounterSample,
    EventClass::Pebs,
];

/// One region to fold, with its folding parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionRequest {
    pub region: String,
    pub cfg: FoldingConfig,
}

impl RegionRequest {
    /// Fold `region` with the default configuration.
    pub fn new(region: impl Into<String>) -> Self {
        Self { region: region.into(), cfg: FoldingConfig::default() }
    }

    /// Fold `region` with an explicit configuration.
    pub fn with_cfg(region: impl Into<String>, cfg: FoldingConfig) -> Self {
        Self { region: region.into(), cfg }
    }
}

/// Reusable scratch buffers for sorting and fitting one counter:
/// amortizes the sort permutation, bin assignment and bin accumulator
/// allocations across every (region, counter) work item a worker runs.
#[derive(Debug, Default)]
pub struct FitScratch {
    order: Vec<u32>,
    tmp: Vec<f64>,
    bin_of: Vec<u32>,
    sums_x: Vec<f64>,
    sums_y: Vec<f64>,
    counts: Vec<f64>,
    knot_xs: Vec<f64>,
    means: Vec<f64>,
    weights: Vec<f64>,
}

/// Fit one counter's pooled (and already sorted) points with the
/// configured model. Bin assignment is precomputed for all samples in
/// one flat pass over the SoA x buffer before the accumulation loop.
fn fit_sorted(xs: &[f64], ys: &[f64], bins: usize, fit: FitModel, s: &mut FitScratch) -> MonotoneCurve {
    if xs.is_empty() {
        return MonotoneCurve::identity();
    }
    s.bin_of.clear();
    s.bin_of
        .extend(xs.iter().map(|&x| ((x * bins as f64) as usize).min(bins - 1) as u32));
    s.sums_x.clear();
    s.sums_x.resize(bins, 0.0);
    s.sums_y.clear();
    s.sums_y.resize(bins, 0.0);
    s.counts.clear();
    s.counts.resize(bins, 0.0);
    for (i, &b) in s.bin_of.iter().enumerate() {
        let b = b as usize;
        s.sums_x[b] += xs[i];
        s.sums_y[b] += ys[i];
        s.counts[b] += 1.0;
    }
    // Each populated bin contributes one knot at the *mean sample
    // position* (not the bin centre — anchoring the knot where the
    // samples actually sit keeps slopes undistorted when sampling is
    // sparse relative to the bin count), clamped into the open
    // interval the curve requires.
    s.knot_xs.clear();
    s.means.clear();
    s.weights.clear();
    for b in 0..bins {
        if s.counts[b] > 0.0 {
            s.knot_xs.push((s.sums_x[b] / s.counts[b]).clamp(1e-9, 1.0 - 1e-9));
            s.means.push(s.sums_y[b] / s.counts[b]);
            s.weights.push(s.counts[b]);
        }
    }
    let fitted = match fit {
        FitModel::Isotonic => pava_nondecreasing(&s.means, &s.weights),
        FitModel::BinnedMean => s.means.clone(),
    };
    let knots: Vec<(f64, f64)> = s.knot_xs.iter().copied().zip(fitted).collect();
    MonotoneCurve::from_knots(&knots)
}

/// One independent unit of fold work. Items own their inputs (taken
/// out of the pooled buffers) and carry their outputs back, so workers
/// never share mutable state.
enum Job {
    /// Sort + bin + fit one (region, counter) point cloud.
    Counter {
        slot: usize,
        kind: EventKind,
        bins: usize,
        fit: FitModel,
        avg_total: f64,
        xs: Vec<f64>,
        ys: Vec<f64>,
        out: Option<FoldedCounter>,
    },
    /// Deterministic sort of one region's address panel.
    Addr { slot: usize, pts: Vec<AddrPoint> },
    /// Deterministic sort of one region's code-line panel.
    Line { slot: usize, pts: Vec<LinePoint> },
}

impl Job {
    fn run(&mut self, scratch: &mut FitScratch) {
        match self {
            Job::Counter { kind, bins, fit, avg_total, xs, ys, out, .. } => {
                sort_pairs_with(xs, ys, &mut scratch.order, &mut scratch.tmp);
                let curve = fit_sorted(xs, ys, *bins, *fit, scratch);
                *out = Some(FoldedCounter {
                    kind: *kind,
                    curve,
                    avg_total: *avg_total,
                    points: xs.len(),
                });
            }
            Job::Addr { pts, .. } => {
                pts.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("no NaN coordinates"));
            }
            Job::Line { pts, .. } => {
                pts.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("no NaN coordinates"));
            }
        }
    }
}

/// Execute the work items on up to `threads` workers. Items are
/// statically partitioned into contiguous chunks; each worker runs its
/// chunk sequentially with one scratch buffer, so scheduling affects
/// only *where* an item runs, never its result.
fn run_jobs(jobs: &mut [Job], threads: usize) {
    if threads <= 1 || jobs.len() <= 1 {
        let mut scratch = FitScratch::default();
        for j in jobs.iter_mut() {
            j.run(&mut scratch);
        }
        return;
    }
    let chunk = jobs.len().div_ceil(threads);
    std::thread::scope(|s| {
        for part in jobs.chunks_mut(chunk) {
            s.spawn(move || {
                let mut scratch = FitScratch::default();
                for j in part {
                    j.run(&mut scratch);
                }
            });
        }
    });
}

fn average_total(instances: &[RegionInstance], kind: EventKind) -> f64 {
    instances
        .iter()
        .map(|i| i.counters_out.get(kind).saturating_sub(i.counters_in.get(kind)) as f64)
        .sum::<f64>()
        / instances.len() as f64
}

/// Per-request instance collection, shared by the in-memory and
/// source-backed entry points: resolved + gated instances per
/// surviving slot, plus the already-failed slots' errors.
struct Prepared {
    results: Vec<Option<Result<FoldedRegion, FoldError>>>,
    kept: Vec<(usize, Vec<RegionInstance>, usize)>,
}

/// Resolve region names, collect every region's instances in one event
/// pass, and apply the per-request gates. `trace` only needs the
/// header plus the region enter/exit events — instances derive from
/// the boundary events alone (their counter snapshots included).
fn prepare(trace: &Trace, requests: &[RegionRequest]) -> Prepared {
    let n = requests.len();
    let mut results: Vec<Option<Result<FoldedRegion, FoldError>>> = (0..n).map(|_| None).collect();

    // Resolve names; unknown regions fail their slot immediately.
    let mut ids = Vec::with_capacity(n);
    let mut filters = Vec::with_capacity(n);
    let mut ok_slots: Vec<usize> = Vec::with_capacity(n);
    for (i, req) in requests.iter().enumerate() {
        match trace.region_id(&req.region) {
            Some(id) => {
                ok_slots.push(i);
                ids.push(id);
                filters.push(req.cfg.filter);
            }
            None => results[i] = Some(Err(FoldError::UnknownRegion(req.region.clone()))),
        }
    }

    // One event pass collects every region's instances.
    let collected = collect_instances_multi(trace, &ids, &filters);
    let mut kept: Vec<(usize, Vec<RegionInstance>, usize)> = Vec::new();
    for (k, (instances, rejected)) in collected.into_iter().enumerate() {
        let slot = ok_slots[k];
        let need = requests[slot].cfg.min_instances.max(1);
        if instances.len() < need {
            results[slot] =
                Some(Err(FoldError::TooFewInstances { found: instances.len(), need }));
        } else {
            kept.push((slot, instances, rejected));
        }
    }
    Prepared { results, kept }
}

/// Pool + fit the surviving slots and assemble the request-ordered
/// result vector. `sample_trace` provides the counter/PEBS events (and
/// the source map for line resolution); it may be the full trace or a
/// pre-filtered sample-only view — pooling drops out-of-instance
/// samples either way, so both yield byte-identical folds.
fn fold_kept(
    sample_trace: &Trace,
    requests: &[RegionRequest],
    prepared: Prepared,
    threads: usize,
) -> Vec<Result<FoldedRegion, FoldError>> {
    let Prepared { mut results, kept } = prepared;
    let trace = sample_trace;

    // One event pass pools samples for every surviving region.
    let slices: Vec<&[RegionInstance]> = kept.iter().map(|(_, v, _)| v.as_slice()).collect();
    let mut pooled = pool_all(trace, &slices);

    // Fan the fold out into independent work items: one per (region,
    // counter) plus one per address/line panel, each owning its input
    // buffers (taken from the pooled SoA storage, returned below).
    let mut jobs: Vec<Job> = Vec::with_capacity(kept.len() * (NKINDS + 2));
    for (k, (slot, instances, _)) in kept.iter().enumerate() {
        let cfg = &requests[*slot].cfg;
        let p = &mut pooled[k];
        for kind in EventKind::ALL {
            jobs.push(Job::Counter {
                slot: k,
                kind,
                bins: cfg.bins,
                fit: cfg.fit,
                avg_total: average_total(instances, kind),
                xs: std::mem::take(&mut p.counter_xs[kind.index()]),
                ys: std::mem::take(&mut p.counter_ys[kind.index()]),
                out: None,
            });
        }
        jobs.push(Job::Addr { slot: k, pts: std::mem::take(&mut p.addr_points) });
        jobs.push(Job::Line { slot: k, pts: std::mem::take(&mut p.line_points) });
    }

    run_jobs(&mut jobs, threads);

    // Reassemble: return the (now sorted) buffers to their pooled
    // slots and gather the fitted counters in kind order.
    let mut counters: Vec<Vec<Option<FoldedCounter>>> =
        kept.iter().map(|_| (0..NKINDS).map(|_| None).collect()).collect();
    for job in jobs {
        match job {
            Job::Counter { slot, kind, xs, ys, out, .. } => {
                pooled[slot].counter_xs[kind.index()] = xs;
                pooled[slot].counter_ys[kind.index()] = ys;
                counters[slot][kind.index()] = out;
            }
            Job::Addr { slot, pts } => pooled[slot].addr_points = pts,
            Job::Line { slot, pts } => pooled[slot].line_points = pts,
        }
    }

    for (((slot, instances, rejected), pooled), counters) in
        kept.into_iter().zip(pooled).zip(counters)
    {
        let avg_duration =
            instances.iter().map(|i| i.duration() as f64).sum::<f64>() / instances.len() as f64;
        results[slot] = Some(Ok(FoldedRegion {
            region: requests[slot].region.clone(),
            instances_used: instances.len(),
            instances_rejected: rejected,
            avg_duration_cycles: avg_duration,
            freq_mhz: trace.meta.freq_mhz,
            counters: counters.into_iter().map(|c| c.expect("counter job ran")).collect(),
            pooled,
        }));
    }

    results
        .into_iter()
        .map(|r| r.expect("every slot resolved"))
        .collect()
}

/// Fold every requested region from **one pass** over the trace, with
/// the per-(region, counter, panel) fold work spread over `threads`
/// deterministic workers. The result vector keeps request order; a
/// failing region (unknown name, too few instances) fails only its own
/// slot.
pub fn fold_regions(
    trace: &Trace,
    requests: &[RegionRequest],
    threads: usize,
) -> Vec<Result<FoldedRegion, FoldError>> {
    let prepared = prepare(trace, requests);
    fold_kept(trace, requests, prepared, threads)
}

/// [`fold_regions`] over any [`TraceSource`], as a two-phase pruned
/// scan. Phase 1 pulls only the region **boundary** events (a union
/// [`Query`] across the requests) — on an indexed `.mps` store every
/// sample-only chunk is skipped outright — and collects each region's
/// instances from them. Phase 2 pulls only the **sample** events,
/// time-bounded to the hull of the kept instances, so chunks wholly
/// outside any folded region (setup, teardown) and chunks with no
/// samples are never decoded. The two filtered views feed the same
/// [`fold_regions`] pipeline, so the result is byte-identical to
/// folding the materialized trace; the returned [`ScanStats`] is the
/// sum of both phases.
pub fn fold_regions_source(
    source: &mut dyn TraceSource,
    requests: &[RegionRequest],
    threads: usize,
) -> Result<(Vec<Result<FoldedRegion, FoldError>>, ScanStats), FoldError> {
    let io_err = |e: std::io::Error| FoldError::Io(e.to_string());

    // Phase 1: region boundaries. Instances (including their counter
    // snapshots) derive entirely from enter/exit events.
    let boundary_queries: Vec<Query> = requests
        .iter()
        .map(|_| Query::all().with_kinds(&[EventClass::RegionEnter, EventClass::RegionExit]))
        .collect();
    let q1 = Query::union_of(&boundary_queries);
    let (boundary, mut stats) = source.filtered(&q1).map_err(io_err)?;
    let prepared = prepare(&boundary, requests);

    // Phase 2: samples, bounded to the kept instances' time hull. With
    // nothing kept every slot already holds its error — skip the scan.
    if prepared.kept.is_empty() {
        return Ok((fold_kept(&boundary, requests, prepared, threads), stats));
    }
    let instances = prepared.kept.iter().flat_map(|(_, v, _)| v.iter());
    let lo = instances.clone().map(|i| i.start_cycles).min().expect("kept is non-empty");
    let hi = instances.map(|i| i.end_cycles).max().expect("kept is non-empty");
    let q2 = Query::all()
        .with_kinds(&[EventClass::CounterSample, EventClass::Pebs])
        .in_time(lo, hi);
    let (samples, s2) = source.filtered(&q2).map_err(io_err)?;
    stats.events_matched += s2.events_matched;
    stats.events_scanned += s2.events_scanned;
    stats.chunks_decoded += s2.chunks_decoded;
    stats.chunks_skipped += s2.chunks_skipped;
    stats.chunks_cached += s2.chunks_cached;
    stats.payload_bytes_decoded += s2.payload_bytes_decoded;

    Ok((fold_kept(&samples, requests, prepared, threads), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold_region;
    use mempersp_extrae::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn snap(inst: u64) -> CounterSnapshot {
        let mut v = [0u64; NKINDS];
        v[EventKind::Instructions.index()] = inst;
        v[EventKind::Cycles.index()] = inst * 2;
        v[EventKind::L1dMiss.index()] = inst / 7;
        CounterSnapshot::from_values(v)
    }

    /// Two nested regions over two cores with counter + user traffic.
    fn two_region_trace() -> Trace {
        let mut t = Tracer::new(TracerConfig { freq_mhz: 1000, ..Default::default() }, 2);
        let ip = t.location("a.cpp", 3, "a");
        let mut now = 0u64;
        let mut base = 0u64;
        for _ in 0..6 {
            for core in 0..2usize {
                t.enter(core, "outer", snap(base), now);
                t.enter(core, "inner", snap(base + 100), now + 10);
                t.record_counter_sample(core, ip, snap(base + 300), now + 25);
                t.exit(core, "inner", snap(base + 500), now + 50);
                t.record_counter_sample(core, ip, snap(base + 800), now + 75);
                t.exit(core, "outer", snap(base + 1000), now + 100);
            }
            now += 150;
            base += 1000;
        }
        t.finish("engine test")
    }

    #[test]
    fn multi_region_fold_matches_sequential_single_folds() {
        let tr = two_region_trace();
        let cfg = FoldingConfig::default();
        let seq: Vec<String> = ["outer", "inner"]
            .iter()
            .map(|r| format!("{:?}", fold_region(&tr, r, &cfg).unwrap()))
            .collect();
        for threads in [1, 2, 4] {
            let multi = fold_regions(
                &tr,
                &[RegionRequest::new("outer"), RegionRequest::new("inner")],
                threads,
            );
            for (got, want) in multi.iter().zip(&seq) {
                assert_eq!(
                    &format!("{:?}", got.as_ref().unwrap()),
                    want,
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn failing_slots_do_not_poison_others() {
        let tr = two_region_trace();
        let out = fold_regions(
            &tr,
            &[
                RegionRequest::new("outer"),
                RegionRequest::new("no-such-region"),
                RegionRequest::with_cfg(
                    "inner",
                    FoldingConfig { min_instances: 999, ..Default::default() },
                ),
            ],
            2,
        );
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(FoldError::UnknownRegion(_))));
        assert!(matches!(out[2], Err(FoldError::TooFewInstances { .. })));
    }

    #[test]
    fn empty_request_list_is_fine() {
        let tr = two_region_trace();
        assert!(fold_regions(&tr, &[], 4).is_empty());
    }
}
