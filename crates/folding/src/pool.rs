//! Cross-instance sample pooling.
//!
//! Every sample taken inside a kept instance is mapped to the folded
//! coordinate system: normalized time for all samples, plus normalized
//! counter progress for counter samples. PEBS samples contribute to
//! the *address* panel and (through their instruction pointer) to the
//! *source-line* panel; timer samples contribute to the source-line
//! and *performance* panels.
//!
//! Pooling is **single-pass and multi-region**: [`pool_all`] walks the
//! trace once and dispatches every sample into the accumulators of all
//! regions whose instances contain it. Counter points are stored as
//! structure-of-arrays (`counter_xs` / `counter_ys`) so the binning
//! pass in the fold engine streams two flat `f64` buffers, and source
//! files are interned into a per-region string table ([`FileId`]) so a
//! dense code-line panel costs 4 bytes per sample instead of a cloned
//! `String`.

use crate::instances::RegionInstance;
use mempersp_extrae::events::EventPayload;
use mempersp_extrae::{ObjectId, Trace};
use mempersp_memsim::MemLevel;
use mempersp_pebs::EventKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

const NKINDS: usize = EventKind::ALL.len();

/// One folded memory-access sample (middle panel of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AddrPoint {
    /// Normalized time within the folded instance.
    pub x: f64,
    pub addr: u64,
    /// Instruction pointer of the sampled access (resolvable through
    /// the trace's source map).
    pub ip: u64,
    pub is_store: bool,
    pub latency: u32,
    pub source: MemLevel,
    pub object: Option<ObjectId>,
    /// Index of the instance the sample came from.
    pub instance: usize,
}

/// Index into the interned source-file table of a [`PooledSamples`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// One folded code-line sample (top panel of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinePoint {
    pub x: f64,
    pub ip: u64,
    /// Resolved source file, interned in the owning
    /// [`PooledSamples::files`] table (None for unknown ips).
    pub file: Option<FileId>,
    pub line: Option<u32>,
}

impl LinePoint {
    /// The resolved source-file name, looked up in the string table of
    /// the [`PooledSamples`] this point belongs to.
    pub fn file_name<'a>(&self, pooled: &'a PooledSamples) -> Option<&'a str> {
        self.file.map(|id| pooled.file_name(id))
    }
}

/// All pooled samples of one folded region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PooledSamples {
    /// Per counter kind (indexed by [`EventKind::index`]): normalized
    /// sample times. `counter_xs[k][i]` pairs with `counter_ys[k][i]`.
    pub(crate) counter_xs: Vec<Vec<f64>>,
    /// Normalized counter progress, parallel to `counter_xs`.
    pub(crate) counter_ys: Vec<Vec<f64>>,
    pub addr_points: Vec<AddrPoint>,
    pub line_points: Vec<LinePoint>,
    /// Interned source-file names referenced by [`LinePoint::file`].
    pub(crate) files: Vec<Arc<str>>,
}

impl Default for PooledSamples {
    fn default() -> Self {
        Self {
            counter_xs: vec![Vec::new(); NKINDS],
            counter_ys: vec![Vec::new(); NKINDS],
            addr_points: Vec::new(),
            line_points: Vec::new(),
            files: Vec::new(),
        }
    }
}

impl PooledSamples {
    /// The (times, progress) SoA buffers pooled for one counter.
    pub fn counter_xy(&self, kind: EventKind) -> (&[f64], &[f64]) {
        (&self.counter_xs[kind.index()], &self.counter_ys[kind.index()])
    }

    /// Iterate one counter's pooled points as (time, progress) pairs.
    pub fn counter_points(&self, kind: EventKind) -> impl Iterator<Item = (f64, f64)> + '_ {
        let (xs, ys) = self.counter_xy(kind);
        xs.iter().copied().zip(ys.iter().copied())
    }

    /// Number of points pooled for one counter.
    pub fn counter_len(&self, kind: EventKind) -> usize {
        self.counter_xs[kind.index()].len()
    }

    /// Append one counter point.
    pub(crate) fn push_counter(&mut self, kind: EventKind, x: f64, y: f64) {
        self.counter_xs[kind.index()].push(x);
        self.counter_ys[kind.index()].push(y);
    }

    /// Intern a source-file name, returning its id (existing entries
    /// are reused; the table is small — one entry per distinct file).
    pub fn intern_file(&mut self, name: &str) -> FileId {
        if let Some(i) = self.files.iter().position(|f| &**f == name) {
            return FileId(i as u32);
        }
        self.files.push(Arc::from(name));
        FileId((self.files.len() - 1) as u32)
    }

    /// Resolve an interned file id back to its name.
    pub fn file_name(&self, id: FileId) -> &str {
        &self.files[id.0 as usize]
    }

    /// The interned source-file table.
    pub fn files(&self) -> &[Arc<str>] {
        &self.files
    }

    /// Total pooled sample count (all panels).
    pub fn len(&self) -> usize {
        self.counter_xs.iter().map(Vec::len).sum::<usize>()
            + self.addr_points.len()
            + self.line_points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sort every panel into the deterministic order downstream
    /// consumers rely on: counter points by (x, y), address and line
    /// points by x (stable, preserving trace order among ties).
    pub fn sort_deterministic(&mut self) {
        let mut order = Vec::new();
        let mut tmp = Vec::new();
        for k in 0..NKINDS {
            sort_pairs_with(&mut self.counter_xs[k], &mut self.counter_ys[k], &mut order, &mut tmp);
        }
        self.addr_points
            .sort_by(|a, b| a.x.partial_cmp(&b.x).expect("no NaN coordinates"));
        self.line_points
            .sort_by(|a, b| a.x.partial_cmp(&b.x).expect("no NaN coordinates"));
    }
}

/// Stable-sort the parallel (xs, ys) buffers by (x, y), reusing the
/// caller's index/scratch buffers to avoid per-counter allocation.
pub(crate) fn sort_pairs_with(
    xs: &mut [f64],
    ys: &mut [f64],
    order: &mut Vec<u32>,
    tmp: &mut Vec<f64>,
) {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n <= 1 {
        return;
    }
    order.clear();
    order.extend(0..n as u32);
    order.sort_by(|&a, &b| {
        let ka = (xs[a as usize], ys[a as usize]);
        let kb = (xs[b as usize], ys[b as usize]);
        ka.partial_cmp(&kb).expect("no NaN coordinates")
    });
    tmp.clear();
    tmp.extend(order.iter().map(|&i| xs[i as usize]));
    xs.copy_from_slice(tmp);
    tmp.clear();
    tmp.extend(order.iter().map(|&i| ys[i as usize]));
    ys.copy_from_slice(tmp);
}

/// Per-core interval index over one region's kept instances; replaces
/// the per-sample linear scan with a binary search.
struct InstanceIndex {
    /// Per core: (start, end, index into the instances slice), sorted
    /// by start. Top-level instances never overlap on one core.
    per_core: Vec<Vec<(u64, u64, u32)>>,
}

impl InstanceIndex {
    fn new(instances: &[RegionInstance], num_cores: usize) -> Self {
        let mut per_core = vec![Vec::new(); num_cores];
        for (i, inst) in instances.iter().enumerate() {
            if inst.core < num_cores {
                per_core[inst.core].push((inst.start_cycles, inst.end_cycles, i as u32));
            }
        }
        for v in &mut per_core {
            v.sort_by_key(|&(s, e, _)| (s, e));
        }
        Self { per_core }
    }

    /// First instance containing (core, cycles). On a shared boundary
    /// (one instance ends where the next starts) the earlier instance
    /// wins, matching the legacy first-containing linear scan.
    fn find(&self, core: usize, cycles: u64) -> Option<usize> {
        let v = self.per_core.get(core)?;
        let i = v.partition_point(|&(_, e, _)| e < cycles);
        let &(s, _, idx) = v.get(i)?;
        (s <= cycles).then_some(idx as usize)
    }
}

type LineMemo = HashMap<u64, (Option<FileId>, Option<u32>)>;

/// Resolve an ip to interned source coordinates, memoized per region
/// (each region owns its string table, so ids are region-local).
fn resolve_line(
    trace: &Trace,
    memo: &mut LineMemo,
    samples: &mut PooledSamples,
    ip: u64,
) -> (Option<FileId>, Option<u32>) {
    if let Some(&r) = memo.get(&ip) {
        return r;
    }
    let r = match trace.source.resolve(mempersp_extrae::Ip(ip)) {
        Some(loc) => (Some(samples.intern_file(&loc.file)), Some(loc.line)),
        None => (None, None),
    };
    memo.insert(ip, r);
    r
}

/// Pool every in-instance sample of the trace into folded coordinates
/// for **all** regions in one pass over the events. `kept[s]` holds
/// region `s`'s kept instances; a sample contributes to every region
/// whose instance contains it (nested regions pool concurrently).
///
/// The returned panels are **unsorted** (trace order); callers sort
/// via [`PooledSamples::sort_deterministic`] or the fold engine's
/// per-panel work items.
pub fn pool_all(trace: &Trace, kept: &[&[RegionInstance]]) -> Vec<PooledSamples> {
    let nslots = kept.len();
    let mut out: Vec<PooledSamples> = (0..nslots).map(|_| PooledSamples::default()).collect();
    if nslots == 0 {
        return out;
    }
    let indices: Vec<InstanceIndex> = kept
        .iter()
        .map(|k| InstanceIndex::new(k, trace.meta.num_cores))
        .collect();
    let mut memos: Vec<LineMemo> = vec![LineMemo::new(); nslots];

    for e in &trace.events {
        match &e.payload {
            EventPayload::CounterSample { ip, counters, .. } => {
                for slot in 0..nslots {
                    let Some(idx) = indices[slot].find(e.core, e.cycles) else {
                        continue;
                    };
                    let inst = &kept[slot][idx];
                    let x = inst.normalize(e.cycles);
                    for kind in EventKind::ALL {
                        let c0 = inst.counters_in.get(kind);
                        let c1 = inst.counters_out.get(kind);
                        if c1 <= c0 {
                            continue; // counter did not advance in this instance
                        }
                        let c = counters.get(kind).clamp(c0, c1);
                        let y = (c - c0) as f64 / (c1 - c0) as f64;
                        out[slot].push_counter(kind, x, y);
                    }
                    let (file, line) = resolve_line(trace, &mut memos[slot], &mut out[slot], ip.0);
                    out[slot].line_points.push(LinePoint { x, ip: ip.0, file, line });
                }
            }
            EventPayload::Pebs { sample, object } => {
                for slot in 0..nslots {
                    let Some(idx) = indices[slot].find(sample.core, sample.timestamp) else {
                        continue;
                    };
                    let inst = &kept[slot][idx];
                    let x = inst.normalize(sample.timestamp);
                    out[slot].addr_points.push(AddrPoint {
                        x,
                        addr: sample.addr,
                        ip: sample.ip,
                        is_store: sample.is_store,
                        latency: sample.latency,
                        source: sample.source,
                        object: *object,
                        instance: idx,
                    });
                    let (file, line) =
                        resolve_line(trace, &mut memos[slot], &mut out[slot], sample.ip);
                    out[slot].line_points.push(LinePoint { x, ip: sample.ip, file, line });
                }
            }
            _ => {}
        }
    }
    out
}

/// Pool every in-instance sample of the trace into folded coordinates
/// for one region, deterministically sorted.
pub fn pool_samples(trace: &Trace, instances: &[RegionInstance]) -> PooledSamples {
    let mut out = pool_all(trace, &[instances]).pop().expect("one slot");
    out.sort_deterministic();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::{Tracer, TracerConfig};
    use mempersp_pebs::{CounterSnapshot, PebsSample};

    fn ctr(inst: u64) -> CounterSnapshot {
        let mut v = [0u64; EventKind::ALL.len()];
        v[EventKind::Instructions.index()] = inst;
        v[EventKind::Cycles.index()] = inst * 2;
        CounterSnapshot::from_values(v)
    }

    fn make_trace() -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let ip = t.location("k.cpp", 42, "k");
        // Two instances of R: [0,100] and [200,300], counters advance
        // by 1000 instructions each.
        t.enter(0, "R", ctr(0), 0);
        t.record_counter_sample(0, ip, ctr(250), 25);
        t.record_pebs(PebsSample {
            timestamp: 50,
            core: 0,
            ip: ip.0,
            addr: 0xAAAA,
            size: 8,
            is_store: true,
            latency: 12,
            source: MemLevel::L2,
            tlb_miss: false,
        });
        t.exit(0, "R", ctr(1000), 100);
        // A sample outside any instance must be dropped.
        t.record_counter_sample(0, ip, ctr(1100), 150);
        t.enter(0, "R", ctr(2000), 200);
        t.record_counter_sample(0, ip, ctr(2750), 275);
        t.exit(0, "R", ctr(3000), 300);
        t.finish("pool test")
    }

    fn kept(trace: &Trace) -> Vec<RegionInstance> {
        let id = trace.region_id("R").unwrap();
        crate::instances::collect_instances(trace, id, crate::instances::InstanceFilter::default()).0
    }

    #[test]
    fn normalizes_time_and_progress() {
        let tr = make_trace();
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        let pts: Vec<(f64, f64)> = p.counter_points(EventKind::Instructions).collect();
        assert_eq!(pts.len(), 2);
        // First instance: t=25 -> x=0.25, counters 250/1000.
        assert!((pts[0].0 - 0.25).abs() < 1e-12);
        assert!((pts[0].1 - 0.25).abs() < 1e-12);
        // Second: t=275 -> x=0.75, progress (2750-2000)/1000.
        assert!((pts[1].0 - 0.75).abs() < 1e-12);
        assert!((pts[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn out_of_instance_samples_dropped() {
        let tr = make_trace();
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        // 2 counter samples inside instances (the t=150 one dropped).
        assert_eq!(p.counter_len(EventKind::Instructions), 2);
        // line points: 2 counter samples + 1 pebs = 3.
        assert_eq!(p.line_points.len(), 3);
    }

    #[test]
    fn pebs_points_carry_payload_and_instance() {
        let tr = make_trace();
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        assert_eq!(p.addr_points.len(), 1);
        let a = p.addr_points[0];
        assert_eq!(a.addr, 0xAAAA);
        assert!(a.is_store);
        assert_eq!(a.source, MemLevel::L2);
        assert_eq!(a.instance, 0);
        assert!((a.x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn line_points_resolve_source() {
        let tr = make_trace();
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        let lp = p.line_points[0];
        assert_eq!(lp.file_name(&p), Some("k.cpp"));
        assert_eq!(lp.line, Some(42));
        assert_eq!(p.files().len(), 1, "one distinct file interned once");
    }

    #[test]
    fn stalled_counter_contributes_no_points() {
        let tr = make_trace();
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        // Branches never advance in the synthetic trace.
        assert_eq!(p.counter_len(EventKind::Branches), 0);
        assert!(!p.is_empty());
    }

    #[test]
    fn counter_values_clamped_to_instance_bounds() {
        // A sample whose counter exceeds the exit snapshot (possible
        // with multiplexed reads in real tools) is clamped, not > 1.
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let ip = t.location("k.cpp", 1, "k");
        t.enter(0, "R", ctr(0), 0);
        t.record_counter_sample(0, ip, ctr(5000), 50);
        t.exit(0, "R", ctr(1000), 100);
        let tr = t.finish("clamp");
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        let pts: Vec<(f64, f64)> = p.counter_points(EventKind::Instructions).collect();
        assert_eq!(pts.len(), 1);
        assert!(pts[0].1 <= 1.0);
    }

    #[test]
    fn pool_all_nested_regions_share_one_pass() {
        // inner nests inside outer; the one sample lands in both.
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let ip = t.location("k.cpp", 7, "k");
        t.enter(0, "outer", ctr(0), 0);
        t.enter(0, "inner", ctr(100), 40);
        t.record_counter_sample(0, ip, ctr(150), 50);
        t.exit(0, "inner", ctr(200), 60);
        t.exit(0, "outer", ctr(1000), 100);
        let tr = t.finish("nested");
        let get = |name: &str| {
            let id = tr.region_id(name).unwrap();
            crate::instances::collect_instances(
                &tr,
                id,
                crate::instances::InstanceFilter::default(),
            )
            .0
        };
        let outer = get("outer");
        let inner = get("inner");
        let pooled = pool_all(&tr, &[&outer, &inner]);
        assert_eq!(pooled.len(), 2);
        assert_eq!(pooled[0].counter_len(EventKind::Instructions), 1);
        assert_eq!(pooled[1].counter_len(EventKind::Instructions), 1);
        // outer: x = 50/100; inner: x = (50-40)/20.
        let (oxs, _) = pooled[0].counter_xy(EventKind::Instructions);
        let (ixs, _) = pooled[1].counter_xy(EventKind::Instructions);
        assert!((oxs[0] - 0.5).abs() < 1e-12);
        assert!((ixs[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pool_all_matches_per_region_pooling() {
        let tr = make_trace();
        let inst = kept(&tr);
        let mut multi = pool_all(&tr, &[&inst, &inst]).swap_remove(1);
        multi.sort_deterministic();
        let single = pool_samples(&tr, &inst);
        assert_eq!(format!("{multi:?}"), format!("{single:?}"));
    }
}
