//! Cross-instance sample pooling.
//!
//! Every sample taken inside a kept instance is mapped to the folded
//! coordinate system: normalized time for all samples, plus normalized
//! counter progress for counter samples. PEBS samples contribute to
//! the *address* panel and (through their instruction pointer) to the
//! *source-line* panel; timer samples contribute to the source-line
//! and *performance* panels.

use crate::instances::RegionInstance;
use mempersp_extrae::events::EventPayload;
use mempersp_extrae::{ObjectId, Trace};
use mempersp_memsim::MemLevel;
use mempersp_pebs::EventKind;
use serde::{Deserialize, Serialize};

/// One folded memory-access sample (middle panel of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AddrPoint {
    /// Normalized time within the folded instance.
    pub x: f64,
    pub addr: u64,
    /// Instruction pointer of the sampled access (resolvable through
    /// the trace's source map).
    pub ip: u64,
    pub is_store: bool,
    pub latency: u32,
    pub source: MemLevel,
    pub object: Option<ObjectId>,
    /// Index of the instance the sample came from.
    pub instance: usize,
}

/// One folded code-line sample (top panel of Fig. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinePoint {
    pub x: f64,
    pub ip: u64,
    /// Resolved source coordinates (None for unknown ips).
    pub file: Option<String>,
    pub line: Option<u32>,
}

/// All pooled samples of one folded region.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PooledSamples {
    /// Per counter kind (indexed by [`EventKind::index`]): normalized
    /// (time, progress) points.
    pub counter_points: Vec<Vec<(f64, f64)>>,
    pub addr_points: Vec<AddrPoint>,
    pub line_points: Vec<LinePoint>,
}

impl PooledSamples {
    /// Points pooled for one counter.
    pub fn counter(&self, kind: EventKind) -> &[(f64, f64)] {
        &self.counter_points[kind.index()]
    }

    /// Total pooled sample count (all panels).
    pub fn len(&self) -> usize {
        self.counter_points.iter().map(Vec::len).sum::<usize>()
            + self.addr_points.len()
            + self.line_points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Locate the kept instance containing a (core, cycles) point.
fn find_instance(instances: &[RegionInstance], core: usize, cycles: u64) -> Option<usize> {
    // Instances are few (hundreds); a linear scan keeps this simple
    // and cache-friendly. Instances never overlap on one core.
    instances
        .iter()
        .position(|i| i.core == core && i.contains(cycles))
}

/// Pool every in-instance sample of the trace into folded coordinates.
pub fn pool_samples(trace: &Trace, instances: &[RegionInstance]) -> PooledSamples {
    let mut out = PooledSamples {
        counter_points: vec![Vec::new(); EventKind::ALL.len()],
        addr_points: Vec::new(),
        line_points: Vec::new(),
    };

    let resolve_line = |ip: u64| -> (Option<String>, Option<u32>) {
        match trace.source.resolve(mempersp_extrae::Ip(ip)) {
            Some(loc) => (Some(loc.file.clone()), Some(loc.line)),
            None => (None, None),
        }
    };

    for e in &trace.events {
        match &e.payload {
            EventPayload::CounterSample { ip, counters, .. } => {
                let Some(idx) = find_instance(instances, e.core, e.cycles) else {
                    continue;
                };
                let inst = &instances[idx];
                let x = inst.normalize(e.cycles);
                for kind in EventKind::ALL {
                    let c0 = inst.counters_in.get(kind);
                    let c1 = inst.counters_out.get(kind);
                    if c1 <= c0 {
                        continue; // counter did not advance in this instance
                    }
                    let c = counters.get(kind).clamp(c0, c1);
                    let y = (c - c0) as f64 / (c1 - c0) as f64;
                    out.counter_points[kind.index()].push((x, y));
                }
                let (file, line) = resolve_line(ip.0);
                out.line_points.push(LinePoint { x, ip: ip.0, file, line });
            }
            EventPayload::Pebs { sample, object } => {
                let Some(idx) = find_instance(instances, sample.core, sample.timestamp) else {
                    continue;
                };
                let inst = &instances[idx];
                let x = inst.normalize(sample.timestamp);
                out.addr_points.push(AddrPoint {
                    x,
                    addr: sample.addr,
                    ip: sample.ip,
                    is_store: sample.is_store,
                    latency: sample.latency,
                    source: sample.source,
                    object: *object,
                    instance: idx,
                });
                let (file, line) = resolve_line(sample.ip);
                out.line_points.push(LinePoint { x, ip: sample.ip, file, line });
            }
            _ => {}
        }
    }
    // Deterministic ordering for downstream consumers.
    for pts in &mut out.counter_points {
        pts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN coordinates"));
    }
    out.addr_points
        .sort_by(|a, b| a.x.partial_cmp(&b.x).expect("no NaN coordinates"));
    out.line_points
        .sort_by(|a, b| a.x.partial_cmp(&b.x).expect("no NaN coordinates"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::{Tracer, TracerConfig};
    use mempersp_pebs::{CounterSnapshot, PebsSample};

    fn ctr(inst: u64) -> CounterSnapshot {
        let mut v = [0u64; EventKind::ALL.len()];
        v[EventKind::Instructions.index()] = inst;
        v[EventKind::Cycles.index()] = inst * 2;
        CounterSnapshot::from_values(v)
    }

    fn make_trace() -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let ip = t.location("k.cpp", 42, "k");
        // Two instances of R: [0,100] and [200,300], counters advance
        // by 1000 instructions each.
        t.enter(0, "R", ctr(0), 0);
        t.record_counter_sample(0, ip, ctr(250), 25);
        t.record_pebs(PebsSample {
            timestamp: 50,
            core: 0,
            ip: ip.0,
            addr: 0xAAAA,
            size: 8,
            is_store: true,
            latency: 12,
            source: MemLevel::L2,
            tlb_miss: false,
        });
        t.exit(0, "R", ctr(1000), 100);
        // A sample outside any instance must be dropped.
        t.record_counter_sample(0, ip, ctr(1100), 150);
        t.enter(0, "R", ctr(2000), 200);
        t.record_counter_sample(0, ip, ctr(2750), 275);
        t.exit(0, "R", ctr(3000), 300);
        t.finish("pool test")
    }

    fn kept(trace: &Trace) -> Vec<RegionInstance> {
        let id = trace.region_id("R").unwrap();
        crate::instances::collect_instances(trace, id, crate::instances::InstanceFilter::default()).0
    }

    #[test]
    fn normalizes_time_and_progress() {
        let tr = make_trace();
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        let pts = p.counter(EventKind::Instructions);
        assert_eq!(pts.len(), 2);
        // First instance: t=25 -> x=0.25, counters 250/1000.
        assert!((pts[0].0 - 0.25).abs() < 1e-12);
        assert!((pts[0].1 - 0.25).abs() < 1e-12);
        // Second: t=275 -> x=0.75, progress (2750-2000)/1000.
        assert!((pts[1].0 - 0.75).abs() < 1e-12);
        assert!((pts[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn out_of_instance_samples_dropped() {
        let tr = make_trace();
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        // 2 counter samples inside instances (the t=150 one dropped).
        assert_eq!(p.counter(EventKind::Instructions).len(), 2);
        // line points: 2 counter samples + 1 pebs = 3.
        assert_eq!(p.line_points.len(), 3);
    }

    #[test]
    fn pebs_points_carry_payload_and_instance() {
        let tr = make_trace();
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        assert_eq!(p.addr_points.len(), 1);
        let a = p.addr_points[0];
        assert_eq!(a.addr, 0xAAAA);
        assert!(a.is_store);
        assert_eq!(a.source, MemLevel::L2);
        assert_eq!(a.instance, 0);
        assert!((a.x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn line_points_resolve_source() {
        let tr = make_trace();
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        let lp = &p.line_points[0];
        assert_eq!(lp.file.as_deref(), Some("k.cpp"));
        assert_eq!(lp.line, Some(42));
    }

    #[test]
    fn stalled_counter_contributes_no_points() {
        let tr = make_trace();
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        // Branches never advance in the synthetic trace.
        assert!(p.counter(EventKind::Branches).is_empty());
        assert!(!p.is_empty());
    }

    #[test]
    fn counter_values_clamped_to_instance_bounds() {
        // A sample whose counter exceeds the exit snapshot (possible
        // with multiplexed reads in real tools) is clamped, not > 1.
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let ip = t.location("k.cpp", 1, "k");
        t.enter(0, "R", ctr(0), 0);
        t.record_counter_sample(0, ip, ctr(5000), 50);
        t.exit(0, "R", ctr(1000), 100);
        let tr = t.finish("clamp");
        let inst = kept(&tr);
        let p = pool_samples(&tr, &inst);
        let pts = p.counter(EventKind::Instructions);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].1 <= 1.0);
    }
}
