//! Property-based tests for the monitoring runtime.

use mempersp_extrae::trace_format::{parse_trace, write_trace};
use mempersp_extrae::{CodeLocation, SimAllocator, Tracer, TracerConfig};
use mempersp_memsim::MemLevel;
use mempersp_pebs::{CounterSnapshot, PebsSample};
use proptest::prelude::*;

fn arb_level() -> impl Strategy<Value = MemLevel> {
    prop_oneof![
        Just(MemLevel::L1),
        Just(MemLevel::L2),
        Just(MemLevel::L3),
        Just(MemLevel::Dram)
    ]
}

proptest! {
    /// Live allocations never overlap, whatever the malloc/free mix.
    #[test]
    fn allocations_never_overlap(
        ops in prop::collection::vec((1u64..1 << 21, any::<bool>()), 1..200),
        seed in any::<u64>(),
    ) {
        let mut a = SimAllocator::new(seed);
        let mut live: Vec<u64> = Vec::new();
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                let base = live.swap_remove(0);
                prop_assert!(a.free(base).is_some());
            } else {
                live.push(a.malloc(size));
            }
            let allocs: Vec<_> = a.iter_live().collect();
            for w in allocs.windows(2) {
                prop_assert!(
                    w[0].base + w[0].size <= w[1].base,
                    "overlap: {:?} vs {:?}", w[0], w[1]
                );
            }
        }
        prop_assert_eq!(a.live_count(), live.len());
    }

    /// Every interior address of a live allocation resolves to it, and
    /// `containing` never returns a freed block.
    #[test]
    fn containing_is_exact(sizes in prop::collection::vec(1u64..4096, 1..50)) {
        let mut a = SimAllocator::new(99);
        let bases: Vec<(u64, u64)> = sizes.iter().map(|&s| (a.malloc(s), s)).collect();
        for &(b, s) in &bases {
            prop_assert_eq!(a.containing(b).unwrap().base, b);
            prop_assert_eq!(a.containing(b + s - 1).unwrap().base, b);
        }
        // Free every other block and re-check.
        for (i, &(b, _)) in bases.iter().enumerate() {
            if i % 2 == 0 {
                a.free(b);
            }
        }
        for (i, &(b, _)) in bases.iter().enumerate() {
            let hit = a.containing(b).map(|x| x.base);
            if i % 2 == 0 {
                prop_assert_ne!(hit, Some(b));
            } else {
                prop_assert_eq!(hit, Some(b));
            }
        }
    }

    /// The trace text format round-trips arbitrary event mixes.
    #[test]
    fn trace_format_round_trips(
        events in prop::collection::vec(
            (0u64..1 << 40, 0usize..4, 0u32..1000, any::<bool>(), arb_level(), 1u32..512),
            0..100,
        ),
        descr in "[ -~]{0,40}",
        threshold in 1u64..10_000,
    ) {
        let mut t = Tracer::new(
            TracerConfig { alloc_threshold: threshold, aslr_seed: 7, freq_mhz: 2500 },
            4,
        );
        let ip = t.location("kernel.rs", 1, "kernel");
        let c = CounterSnapshot::from_values([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        let big = t.malloc(1 << 20, &CodeLocation::new("alloc.rs", 10, "setup"), 0);
        for (i, (ts, core, lat, is_store, source, size)) in events.iter().enumerate() {
            match i % 3 {
                0 => t.record_pebs(PebsSample {
                    timestamp: *ts,
                    core: *core,
                    ip: ip.0,
                    addr: big + (i as u64 * 64) % (1 << 20),
                    size: *size,
                    is_store: *is_store,
                    latency: *lat,
                    source: *source,
                    tlb_miss: i % 5 == 0,
                }),
                1 => t.record_counter_sample(*core, ip, c, *ts),
                _ => t.user_event(*core, i as u32, *ts, *ts),
            }
        }
        let trace = t.finish(&descr);
        let text = write_trace(&trace);
        let back = parse_trace(&text).expect("parse back");
        prop_assert_eq!(&back.meta, &trace.meta);
        prop_assert_eq!(&back.events, &trace.events);
        prop_assert_eq!(&back.resolution, &trace.resolution);
        // Re-serialization is byte-stable.
        prop_assert_eq!(write_trace(&back), text);
    }

    /// Allocation grouping always covers exactly its members: group
    /// range = [min base, max end] and allocated = sum of sizes.
    #[test]
    fn group_covers_members(sizes in prop::collection::vec(1u64..500, 1..100)) {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        t.begin_alloc_group("g");
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut sum = 0u64;
        for &s in &sizes {
            let b = t.malloc(s, &CodeLocation::new("x.rs", 1, "x"), 0);
            lo = lo.min(b);
            hi = hi.max(b + s);
            sum += s;
        }
        let id = t.end_alloc_group().unwrap();
        let o = t.objects().get(id).unwrap();
        prop_assert_eq!(o.base, lo);
        prop_assert_eq!(o.end(), hi);
        prop_assert_eq!(o.allocated_bytes, sum);
        // Every member's first byte resolves to the group.
        prop_assert!(t.objects().resolve(lo).is_some());
        prop_assert!(t.objects().resolve(hi - 1).is_some());
    }

    /// The parser never panics, whatever bytes it is fed — it returns
    /// a structured error instead.
    #[test]
    fn parser_never_panics_on_garbage(text in "[ -~\\n]{0,500}") {
        let _ = parse_trace(&text);
    }

    /// Nor on a valid trace with random single-character corruption.
    #[test]
    fn parser_never_panics_on_corruption(pos in 0usize..4096, ch_off in 0u8..94) {
        let ch = (b' ' + ch_off) as char;
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let ip = t.location("kernel.rs", 1, "kernel");
        let c = CounterSnapshot::default();
        t.enter(0, "R", c, 0);
        t.record_counter_sample(0, ip, c, 5);
        t.exit(0, "R", c, 10);
        let mut text = write_trace(&t.finish("fuzz"));
        if !text.is_empty() {
            let pos = pos % text.len();
            // Replace one byte at a char boundary (ASCII format).
            if text.is_char_boundary(pos) && text.is_char_boundary(pos + 1) {
                text.replace_range(pos..pos + 1, &ch.to_string());
            }
        }
        let _ = parse_trace(&text);
    }

    /// Threshold semantics: a sample inside an allocation resolves iff
    /// the allocation met the threshold.
    #[test]
    fn threshold_controls_resolution(size in 1u64..10_000, threshold in 1u64..10_000) {
        let mut t = Tracer::new(
            TracerConfig { alloc_threshold: threshold, ..Default::default() },
            1,
        );
        let b = t.malloc(size, &CodeLocation::new("x.rs", 2, "x"), 0);
        t.record_pebs(PebsSample {
            timestamp: 1,
            core: 0,
            ip: 0,
            addr: b,
            size: 1,
            is_store: false,
            latency: 1,
            source: MemLevel::L1,
            tlb_miss: false,
        });
        let r = t.resolution();
        if size >= threshold {
            prop_assert_eq!((r.resolved, r.unresolved), (1, 0));
        } else {
            prop_assert_eq!((r.resolved, r.unresolved), (0, 1));
        }
    }
}
