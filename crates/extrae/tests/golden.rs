//! Golden-file compatibility test: `tests/fixtures/golden.prv` is a
//! checked-in trace covering every record type. If the parser or the
//! format ever changes incompatibly, this test fails — bump the format
//! version and migrate deliberately instead.

use mempersp_extrae::events::{EventPayload, RegionId};
use mempersp_extrae::trace_format::{parse_trace, write_trace};
use mempersp_extrae::{Ip, ObjectKind};
use mempersp_memsim::MemLevel;
use mempersp_pebs::EventKind;

const GOLDEN: &str = include_str!("fixtures/golden.prv");

#[test]
fn golden_trace_parses_with_expected_content() {
    let t = parse_trace(GOLDEN).expect("golden fixture must stay parseable");

    assert_eq!(t.meta.freq_mhz, 2500);
    assert_eq!(t.meta.num_cores, 2);
    assert_eq!(t.meta.aslr_slide, 0x0123_4567_89AB_CDEF);
    assert_eq!(t.meta.description, "golden fixture: HPCG-like mini trace");
    assert_eq!(t.resolution.resolved, 3);
    assert_eq!(t.resolution.unresolved, 1);

    assert_eq!(t.region_names, vec!["ComputeSPMV_ref", "CG_iteration"]);
    assert_eq!(
        t.source.resolve(Ip(4194304)).unwrap().file_line(),
        "ComputeSPMV_ref.cpp:62"
    );

    let objs = t.objects.all();
    assert_eq!(objs.len(), 3);
    assert_eq!(objs[0].kind, ObjectKind::Group);
    assert_eq!(objs[0].figure_label(), "124_GenerateProblem_ref.cpp|617 MB");
    assert_eq!(objs[2].kind, ObjectKind::Static);

    assert_eq!(t.num_events(), 11);
    // Region instance reconstruction.
    let iter = t.region_id("CG_iteration").unwrap();
    assert_eq!(t.region_instances(iter, 0), vec![(100, 300)]);

    // Sample stack parsed.
    let stacks: Vec<&Vec<RegionId>> = t
        .events
        .iter()
        .filter_map(|e| match &e.payload {
            EventPayload::CounterSample { stack, .. } => Some(stack),
            _ => None,
        })
        .collect();
    assert_eq!(stacks.len(), 2);
    assert_eq!(stacks[0], &vec![RegionId(1)]);
    assert!(stacks[1].is_empty());

    // PEBS records, including the unresolved one.
    let pebs: Vec<_> = t.pebs_events().collect();
    assert_eq!(pebs.len(), 3);
    assert_eq!(pebs[0].1.source, MemLevel::Dram);
    assert!(pebs[0].1.tlb_miss);
    assert!(pebs[0].2.is_some());
    assert!(pebs[1].1.is_store);
    assert_eq!(pebs[2].2, None, "object '-' = unresolved");

    // Counter snapshots carry all 12 counters.
    if let EventPayload::RegionExit { counters, .. } = &t.events.last().unwrap().payload {
        assert_eq!(counters.get(EventKind::Instructions), 20);
        assert_eq!(counters.get(EventKind::StallDram), 15);
    } else {
        panic!("last event must be the region exit");
    }

    // Round-trip stability: writing the parsed trace reproduces the
    // fixture byte-for-byte.
    assert_eq!(write_trace(&t), GOLDEN);
}
