//! Trace-event predicates.
//!
//! A [`Query`] selects a subset of a trace's events by time window,
//! core set, event kind and resolved data object. It is the unit of
//! *predicate pushdown*: an in-memory [`crate::Trace`] filters event by
//! event, while the chunked binary store (`mempersp-store`) uses the
//! same query to skip whole chunks whose footer index proves they
//! cannot match.

use crate::events::{EventPayload, TraceEvent};
use crate::objects::ObjectId;
use serde::{Deserialize, Serialize};

/// The eight event classes a [`TraceEvent`] payload can take, each
/// mapped to one bit of a [`KindMask`]. The discriminants are part of
/// the on-disk chunk-index format — append only, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum EventClass {
    RegionEnter = 0,
    RegionExit = 1,
    CounterSample = 2,
    Pebs = 3,
    Alloc = 4,
    Free = 5,
    MuxSwitch = 6,
    User = 7,
}

impl EventClass {
    pub const ALL: [EventClass; 8] = [
        EventClass::RegionEnter,
        EventClass::RegionExit,
        EventClass::CounterSample,
        EventClass::Pebs,
        EventClass::Alloc,
        EventClass::Free,
        EventClass::MuxSwitch,
        EventClass::User,
    ];

    /// The class of a payload.
    pub fn of(payload: &EventPayload) -> EventClass {
        match payload {
            EventPayload::RegionEnter { .. } => EventClass::RegionEnter,
            EventPayload::RegionExit { .. } => EventClass::RegionExit,
            EventPayload::CounterSample { .. } => EventClass::CounterSample,
            EventPayload::Pebs { .. } => EventClass::Pebs,
            EventPayload::Alloc { .. } => EventClass::Alloc,
            EventPayload::Free { .. } => EventClass::Free,
            EventPayload::MuxSwitch { .. } => EventClass::MuxSwitch,
            EventPayload::User { .. } => EventClass::User,
        }
    }

    /// Bit position inside a [`KindMask`].
    pub fn bit(self) -> u8 {
        1u8 << (self as u8)
    }

    /// The record mnemonic of the text format (`E <t> <core> <KIND> ...`).
    pub fn label(self) -> &'static str {
        match self {
            EventClass::RegionEnter => "ENTER",
            EventClass::RegionExit => "EXIT",
            EventClass::CounterSample => "SAMP",
            EventClass::Pebs => "PEBS",
            EventClass::Alloc => "ALLOC",
            EventClass::Free => "FREE",
            EventClass::MuxSwitch => "MUX",
            EventClass::User => "USER",
        }
    }

    /// Parse a mnemonic (case-insensitive), e.g. for CLI `--kind`.
    pub fn parse(s: &str) -> Option<EventClass> {
        let up = s.to_ascii_uppercase();
        EventClass::ALL.iter().copied().find(|k| k.label() == up)
    }
}

/// Bitmap over [`EventClass`] values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindMask(pub u8);

impl KindMask {
    /// Every kind.
    pub const ALL: KindMask = KindMask(0xFF);
    /// No kind (matches nothing).
    pub const NONE: KindMask = KindMask(0);

    /// A mask of exactly the given kinds.
    pub fn of(kinds: &[EventClass]) -> KindMask {
        KindMask(kinds.iter().fold(0, |m, k| m | k.bit()))
    }

    pub fn contains(self, k: EventClass) -> bool {
        self.0 & k.bit() != 0
    }

    pub fn insert(&mut self, k: EventClass) {
        self.0 |= k.bit();
    }

    /// Do two masks share any kind?
    pub fn intersects(self, other: KindMask) -> bool {
        self.0 & other.0 != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl Default for KindMask {
    fn default() -> Self {
        KindMask::ALL
    }
}

/// A predicate over trace events. Every field is a conjunct; `None`
/// (or [`KindMask::ALL`]) means "no constraint".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Inclusive cycle window `[lo, hi]`.
    pub time: Option<(u64, u64)>,
    /// Cores to keep (empty `Some` matches nothing).
    pub cores: Option<Vec<usize>>,
    /// Event kinds to keep.
    pub kinds: KindMask,
    /// Keep only PEBS samples resolved to this data object.
    pub object: Option<ObjectId>,
}

impl Default for Query {
    fn default() -> Self {
        Query::all()
    }
}

impl Query {
    /// The match-everything query (a full scan).
    pub fn all() -> Query {
        Query { time: None, cores: None, kinds: KindMask::ALL, object: None }
    }

    /// Restrict to an inclusive cycle window.
    pub fn in_time(mut self, lo: u64, hi: u64) -> Query {
        self.time = Some((lo, hi));
        self
    }

    /// Restrict to a set of cores.
    pub fn on_cores(mut self, cores: &[usize]) -> Query {
        self.cores = Some(cores.to_vec());
        self
    }

    /// Restrict to a set of event kinds.
    pub fn with_kinds(mut self, kinds: &[EventClass]) -> Query {
        self.kinds = KindMask::of(kinds);
        self
    }

    /// Restrict to PEBS samples touching one data object. Implies the
    /// PEBS kind: no other payload carries an object resolution.
    pub fn touching_object(mut self, id: ObjectId) -> Query {
        self.object = Some(id);
        self.kinds = KindMask::of(&[EventClass::Pebs]);
        self
    }

    /// The least-upper-bound of several queries: a single predicate
    /// that matches (at least) everything any input matches, so one
    /// scan can serve many consumers. Conjuncts widen independently —
    /// the time window becomes the hull, core sets union, kind masks
    /// OR together, and the object constraint survives only when every
    /// input agrees on it. An empty input yields a match-nothing query.
    pub fn union_of(queries: &[Query]) -> Query {
        let Some((first, rest)) = queries.split_first() else {
            return Query { time: None, cores: None, kinds: KindMask::NONE, object: None };
        };
        let mut u = first.clone();
        for q in rest {
            u.time = match (u.time, q.time) {
                (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
                _ => None,
            };
            u.cores = match (u.cores.take(), &q.cores) {
                (Some(mut a), Some(b)) => {
                    a.extend_from_slice(b);
                    a.sort_unstable();
                    a.dedup();
                    Some(a)
                }
                _ => None,
            };
            u.kinds = KindMask(u.kinds.0 | q.kinds.0);
            if u.object != q.object {
                u.object = None;
            }
        }
        u
    }

    /// Is this the unconstrained full-scan query?
    pub fn is_full_scan(&self) -> bool {
        self.time.is_none()
            && self.cores.is_none()
            && self.kinds == KindMask::ALL
            && self.object.is_none()
    }

    /// Does one event satisfy every conjunct?
    pub fn matches(&self, e: &TraceEvent) -> bool {
        if let Some((lo, hi)) = self.time {
            if e.cycles < lo || e.cycles > hi {
                return false;
            }
        }
        if let Some(cores) = &self.cores {
            if !cores.contains(&e.core) {
                return false;
            }
        }
        if !self.kinds.contains(EventClass::of(&e.payload)) {
            return false;
        }
        if let Some(want) = self.object {
            match &e.payload {
                EventPayload::Pebs { object: Some(o), .. } if *o == want => {}
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RegionId;
    use mempersp_pebs::{CounterSnapshot, PebsSample};

    fn enter(cycles: u64, core: usize) -> TraceEvent {
        TraceEvent {
            cycles,
            core,
            payload: EventPayload::RegionEnter {
                region: RegionId(0),
                counters: CounterSnapshot::default(),
            },
        }
    }

    fn pebs(cycles: u64, core: usize, object: Option<ObjectId>) -> TraceEvent {
        TraceEvent {
            cycles,
            core,
            payload: EventPayload::Pebs {
                sample: PebsSample {
                    timestamp: cycles,
                    core,
                    ip: 0x400000,
                    addr: 0x1000,
                    size: 8,
                    is_store: false,
                    latency: 10,
                    source: mempersp_memsim::MemLevel::L2,
                    tlb_miss: false,
                },
                object,
            },
        }
    }

    #[test]
    fn full_scan_matches_everything() {
        let q = Query::all();
        assert!(q.is_full_scan());
        assert!(q.matches(&enter(0, 0)));
        assert!(q.matches(&pebs(u64::MAX, 7, None)));
    }

    #[test]
    fn time_window_is_inclusive() {
        let q = Query::all().in_time(10, 20);
        assert!(!q.matches(&enter(9, 0)));
        assert!(q.matches(&enter(10, 0)));
        assert!(q.matches(&enter(20, 0)));
        assert!(!q.matches(&enter(21, 0)));
    }

    #[test]
    fn core_and_kind_filters() {
        let q = Query::all().on_cores(&[1, 3]).with_kinds(&[EventClass::Pebs]);
        assert!(!q.matches(&pebs(5, 0, None)), "wrong core");
        assert!(!q.matches(&enter(5, 1)), "wrong kind");
        assert!(q.matches(&pebs(5, 3, None)));
    }

    #[test]
    fn object_filter_implies_pebs() {
        let q = Query::all().touching_object(ObjectId(2));
        assert!(!q.matches(&enter(5, 0)));
        assert!(!q.matches(&pebs(5, 0, None)), "unresolved sample");
        assert!(!q.matches(&pebs(5, 0, Some(ObjectId(1)))));
        assert!(q.matches(&pebs(5, 0, Some(ObjectId(2)))));
    }

    #[test]
    fn union_is_a_superset_of_every_input() {
        let qs = [
            Query::all().in_time(10, 20).on_cores(&[0]).with_kinds(&[EventClass::Pebs]),
            Query::all().in_time(50, 90).on_cores(&[2]).with_kinds(&[EventClass::RegionEnter]),
        ];
        let u = Query::union_of(&qs);
        assert_eq!(u.time, Some((10, 90)));
        assert_eq!(u.cores, Some(vec![0, 2]));
        assert!(u.kinds.contains(EventClass::Pebs));
        assert!(u.kinds.contains(EventClass::RegionEnter));
        // Everything either input matches, the union matches.
        for e in [pebs(15, 0, None), enter(55, 2)] {
            assert!(qs.iter().any(|q| q.matches(&e)));
            assert!(u.matches(&e));
        }
    }

    #[test]
    fn union_drops_unshared_conjuncts() {
        let qs = [
            Query::all().in_time(10, 20),
            Query::all(), // unconstrained time: the hull must widen to None
        ];
        let u = Query::union_of(&qs);
        assert_eq!(u.time, None);
        assert_eq!(u.cores, None);
        assert_eq!(u.kinds, KindMask::ALL);
        // Disagreeing object constraints are dropped...
        let a = Query::all().touching_object(ObjectId(1));
        let b = Query::all().touching_object(ObjectId(2));
        assert_eq!(Query::union_of(&[a.clone(), b]).object, None);
        // ...but a shared one survives.
        assert_eq!(Query::union_of(&[a.clone(), a]).object, Some(ObjectId(1)));
    }

    #[test]
    fn union_of_nothing_matches_nothing() {
        let u = Query::union_of(&[]);
        assert!(u.kinds.is_empty());
        assert!(!u.matches(&enter(0, 0)));
    }

    #[test]
    fn kind_mask_bits_are_stable() {
        // On-disk format: these numbers are frozen.
        assert_eq!(EventClass::RegionEnter as u8, 0);
        assert_eq!(EventClass::User as u8, 7);
        let m = KindMask::of(&[EventClass::RegionEnter, EventClass::Pebs]);
        assert_eq!(m.0, 0b0000_1001);
        assert!(m.intersects(KindMask::of(&[EventClass::Pebs])));
        assert!(!m.intersects(KindMask::of(&[EventClass::Free])));
    }

    #[test]
    fn class_labels_parse_back() {
        for k in EventClass::ALL {
            assert_eq!(EventClass::parse(k.label()), Some(k));
            assert_eq!(EventClass::parse(&k.label().to_ascii_lowercase()), Some(k));
        }
        assert_eq!(EventClass::parse("bogus"), None);
    }
}
