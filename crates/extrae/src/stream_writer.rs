//! Streaming trace emission.
//!
//! Real Extrae does not hold the whole trace in memory: each thread
//! appends records to a buffer that a flusher empties to per-process
//! intermediate files, and a post-mortem merger (`mpi2prv`) combines
//! them with the symbol information into the final `.prv`. This
//! module reproduces that pipeline:
//!
//! * [`StreamWriter`] owns a background thread fed through a bounded
//!   crossbeam channel; event lines are appended to an intermediate
//!   file as the run progresses (bounded memory, like the real tool);
//! * [`StreamWriter::finalize`] plays the merger: it prepends the
//!   header sections (which are only complete at the end of the run —
//!   symbols, objects, region names) to the streamed event body,
//!   producing a file that [`crate::trace_format::parse_trace`]
//!   accepts, then removes the intermediate body file;
//! * an optional [`EventSink`] receives every event in parallel with
//!   the text body — this is how a run streams a binary `.mps` store
//!   (crate `mempersp-store`) alongside the `.prv` without a second
//!   pass over the data.

use crate::events::TraceEvent;
use crate::tracer::Trace;
use crossbeam::channel::{bounded, Sender};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

/// A secondary consumer of the streamed events, driven from the
/// writer's background thread. Implemented by the binary trace store's
/// writer so a monitored run can emit `.prv` and `.mps` in one pass.
pub trait EventSink: Send {
    /// Consume one event, in stream order.
    fn append_event(&mut self, event: &TraceEvent) -> std::io::Result<()>;

    /// The run is over and the header information (symbols, objects,
    /// region names) is finally complete; seal the container.
    fn finish(&mut self, trace_for_header: &Trace) -> std::io::Result<()>;
}

enum Msg {
    Event(TraceEvent),
    Flush,
    Done,
}

struct WorkerResult {
    lines: u64,
    sink: Option<Box<dyn EventSink>>,
}

/// Background streaming writer of trace event records.
pub struct StreamWriter {
    tx: Sender<Msg>,
    worker: Option<JoinHandle<std::io::Result<WorkerResult>>>,
    body_path: PathBuf,
}

impl StreamWriter {
    /// Start the writer; event records stream into `body_path`
    /// (an intermediate file, analogous to Extrae's `.mpit`).
    ///
    /// Errors if `body_path` already exists: an intermediate file is
    /// owned by exactly one run, and clobbering a previous run's body
    /// (or, worse, a file the user cares about) would corrupt it
    /// silently.
    pub fn create(body_path: &Path, queue_depth: usize) -> std::io::Result<Self> {
        Self::create_with_sink(body_path, queue_depth, None)
    }

    /// Like [`StreamWriter::create`], additionally teeing every event
    /// into `sink` from the background thread.
    pub fn create_with_sink(
        body_path: &Path,
        queue_depth: usize,
        mut sink: Option<Box<dyn EventSink>>,
    ) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(body_path)
            .map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("intermediate trace body {}: {e}", body_path.display()),
                )
            })?;
        let mut out = std::io::BufWriter::new(file);
        let (tx, rx) = bounded::<Msg>(queue_depth.max(1));
        let worker = std::thread::spawn(move || -> std::io::Result<WorkerResult> {
            let mut lines = 0u64;
            for msg in rx {
                match msg {
                    Msg::Event(e) => {
                        out.write_all(crate::trace_format::event_record(&e).as_bytes())?;
                        if let Some(s) = sink.as_mut() {
                            s.append_event(&e)?;
                        }
                        lines += 1;
                    }
                    Msg::Flush => out.flush()?,
                    Msg::Done => break,
                }
            }
            out.flush()?;
            Ok(WorkerResult { lines, sink })
        });
        Ok(Self { tx, worker: Some(worker), body_path: body_path.to_path_buf() })
    }

    /// Append one event (serialized in the `E ...` record format).
    /// Blocks when the queue is full — the monitored application
    /// experiences back-pressure exactly like a real flush stall.
    pub fn append(&self, event: &TraceEvent) {
        self.tx.send(Msg::Event(event.clone())).expect("writer thread alive");
    }

    /// Ask the worker to flush its file buffer.
    pub fn flush(&self) {
        self.tx.send(Msg::Flush).expect("writer thread alive");
    }

    /// Stop the worker and merge header + streamed body into
    /// `final_path`; the intermediate body file is removed afterwards.
    /// The `trace` provides the header sections (its own event list is
    /// ignored — the streamed body is the record of truth). If a sink
    /// was attached, it is sealed with the same header information.
    /// Returns the number of streamed event records.
    pub fn finalize(mut self, trace_for_header: &Trace, final_path: &Path) -> std::io::Result<u64> {
        self.tx.send(Msg::Done).expect("writer thread alive");
        let WorkerResult { lines, mut sink } = self
            .worker
            .take()
            .expect("finalize called once")
            .join()
            .expect("writer thread must not panic")?;

        let header = crate::trace_format::header_sections(trace_for_header);
        let body = std::fs::read_to_string(&self.body_path)?;
        let mut out = std::fs::File::create(final_path)?;
        out.write_all(header.as_bytes())?;
        out.write_all(body.as_bytes())?;
        drop(out);
        if let Some(s) = sink.as_mut() {
            s.finish(trace_for_header)?;
        }
        // The merger consumed the intermediate file; leaving it behind
        // doubles the disk footprint of every run.
        std::fs::remove_file(&self.body_path)?;
        Ok(lines)
    }
}

/// [`StreamWriter`] adapted to the [`EventSink`] interface: events
/// stream into an intermediate body file next to `final_path`, and
/// sealing merges header + body into `final_path` — so a monitored
/// run can target a text `.prv` through the same sink plumbing the
/// binary store uses. An optional tee sink (typically the store
/// writer) receives every event from the background thread in the
/// same order, letting one pass emit `.prv` and `.mps` together.
pub struct PrvSink {
    writer: Option<StreamWriter>,
    final_path: PathBuf,
    lines: u64,
}

impl PrvSink {
    /// Default bound of the writer's event queue.
    pub const DEFAULT_QUEUE_DEPTH: usize = 4096;

    /// Stream toward `final_path`; the intermediate body is
    /// `<final_path>.mpit` and must not already exist.
    pub fn create(final_path: &Path) -> std::io::Result<PrvSink> {
        Self::with_tee(final_path, Self::DEFAULT_QUEUE_DEPTH, None)
    }

    /// [`PrvSink::create`] with an explicit queue depth and an
    /// optional secondary sink fed from the writer thread.
    pub fn with_tee(
        final_path: &Path,
        queue_depth: usize,
        tee: Option<Box<dyn EventSink>>,
    ) -> std::io::Result<PrvSink> {
        let mut body = final_path.as_os_str().to_os_string();
        body.push(".mpit");
        let writer = StreamWriter::create_with_sink(Path::new(&body), queue_depth, tee)?;
        Ok(PrvSink { writer: Some(writer), final_path: final_path.to_path_buf(), lines: 0 })
    }

    /// Event records merged into the final trace (valid after
    /// [`EventSink::finish`]).
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl EventSink for PrvSink {
    fn append_event(&mut self, event: &TraceEvent) -> std::io::Result<()> {
        self.writer.as_ref().expect("append after finish").append(event);
        Ok(())
    }

    fn finish(&mut self, trace_for_header: &Trace) -> std::io::Result<()> {
        let writer = self.writer.take().expect("finish called once");
        self.lines = writer.finalize(trace_for_header, &self.final_path)?;
        Ok(())
    }
}

impl Drop for StreamWriter {
    fn drop(&mut self) {
        // Unblock the worker if finalize was never called.
        let _ = self.tx.send(Msg::Done);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    #[test]
    fn streamed_trace_parses_back_and_body_is_removed() {
        let dir = std::env::temp_dir().join(format!("mempersp_stream_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let body = dir.join("body.mpit");
        let final_prv = dir.join("final.prv");

        // Build a run, streaming every event as it happens.
        let writer = StreamWriter::create(&body, 64).unwrap();
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let c = CounterSnapshot::default();
        let before = t.num_events();
        for i in 0..500u64 {
            t.enter(0, "R", c, i * 10);
            t.exit(0, "R", c, i * 10 + 5);
        }
        assert_eq!(t.num_events() - before, 1000);
        let trace = t.finish("streamed");
        for e in &trace.events {
            writer.append(e);
        }
        writer.flush();
        let lines = writer.finalize(&trace, &final_prv).unwrap();
        assert_eq!(lines, 1000);

        let loaded = crate::trace_format::load_trace(&final_prv).unwrap();
        assert_eq!(loaded.events, trace.events);
        assert_eq!(loaded.region_names, trace.region_names);
        assert!(!body.exists(), "intermediate body removed after merge");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn existing_body_file_is_not_clobbered() {
        let dir = std::env::temp_dir().join(format!("mempersp_stream3_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let body = dir.join("body.mpit");
        std::fs::write(&body, "precious bytes").unwrap();
        let err = match StreamWriter::create(&body, 4) {
            Ok(_) => panic!("create must refuse an existing body file"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("body.mpit"), "error names the file: {err}");
        assert_eq!(std::fs::read_to_string(&body).unwrap(), "precious bytes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_without_finalize_does_not_hang() {
        let dir = std::env::temp_dir().join(format!("mempersp_stream2_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let body = dir.join("body.mpit");
        {
            let writer = StreamWriter::create(&body, 4).unwrap();
            let t = Tracer::new(TracerConfig::default(), 1);
            let trace = t.finish("empty");
            let _ = &trace;
            writer.flush();
            // dropped here
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A sink that counts events and records sealing.
    struct CountingSink {
        count: std::sync::Arc<std::sync::atomic::AtomicU64>,
        finished: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl EventSink for CountingSink {
        fn append_event(&mut self, _event: &TraceEvent) -> std::io::Result<()> {
            self.count.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        }

        fn finish(&mut self, trace_for_header: &Trace) -> std::io::Result<()> {
            assert!(!trace_for_header.region_names.is_empty());
            self.finished.store(true, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        }
    }

    #[test]
    fn sink_sees_every_event_and_is_sealed() {
        let dir = std::env::temp_dir().join(format!("mempersp_stream4_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let body = dir.join("body.mpit");
        let final_prv = dir.join("final.prv");
        let count = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let finished = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sink = CountingSink { count: count.clone(), finished: finished.clone() };

        let writer = StreamWriter::create_with_sink(&body, 16, Some(Box::new(sink))).unwrap();
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let c = CounterSnapshot::default();
        for i in 0..100u64 {
            t.enter(0, "R", c, i * 10);
            t.exit(0, "R", c, i * 10 + 5);
        }
        let trace = t.finish("teed");
        for e in &trace.events {
            writer.append(e);
        }
        let lines = writer.finalize(&trace, &final_prv).unwrap();
        assert_eq!(lines, 200);
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 200);
        assert!(finished.load(std::sync::atomic::Ordering::SeqCst));
        std::fs::remove_dir_all(&dir).ok();
    }
}
