//! Streaming trace emission.
//!
//! Real Extrae does not hold the whole trace in memory: each thread
//! appends records to a buffer that a flusher empties to per-process
//! intermediate files, and a post-mortem merger (`mpi2prv`) combines
//! them with the symbol information into the final `.prv`. This
//! module reproduces that pipeline:
//!
//! * [`StreamWriter`] owns a background thread fed through a bounded
//!   crossbeam channel; event lines are appended to an intermediate
//!   file as the run progresses (bounded memory, like the real tool);
//! * [`StreamWriter::finalize`] plays the merger: it prepends the
//!   header sections (which are only complete at the end of the run —
//!   symbols, objects, region names) to the streamed event body,
//!   producing a file that [`crate::trace_format::parse_trace`]
//!   accepts.

use crate::events::TraceEvent;
use crate::tracer::Trace;
use crossbeam::channel::{bounded, Sender};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

enum Msg {
    Line(String),
    Flush,
    Done,
}

/// Background streaming writer of trace event records.
pub struct StreamWriter {
    tx: Sender<Msg>,
    worker: Option<JoinHandle<std::io::Result<u64>>>,
    body_path: PathBuf,
}

impl StreamWriter {
    /// Start the writer; event records stream into `body_path`
    /// (an intermediate file, analogous to Extrae's `.mpit`).
    pub fn create(body_path: &Path, queue_depth: usize) -> std::io::Result<Self> {
        let file = std::fs::File::create(body_path)?;
        let mut out = std::io::BufWriter::new(file);
        let (tx, rx) = bounded::<Msg>(queue_depth.max(1));
        let worker = std::thread::spawn(move || -> std::io::Result<u64> {
            let mut lines = 0u64;
            for msg in rx {
                match msg {
                    Msg::Line(l) => {
                        out.write_all(l.as_bytes())?;
                        lines += 1;
                    }
                    Msg::Flush => out.flush()?,
                    Msg::Done => break,
                }
            }
            out.flush()?;
            Ok(lines)
        });
        Ok(Self { tx, worker: Some(worker), body_path: body_path.to_path_buf() })
    }

    /// Append one event (serialized in the `E ...` record format).
    /// Blocks when the queue is full — the monitored application
    /// experiences back-pressure exactly like a real flush stall.
    pub fn append(&self, event: &TraceEvent) {
        let line = crate::trace_format::event_record(event);
        self.tx.send(Msg::Line(line)).expect("writer thread alive");
    }

    /// Ask the worker to flush its file buffer.
    pub fn flush(&self) {
        self.tx.send(Msg::Flush).expect("writer thread alive");
    }

    /// Stop the worker and merge header + streamed body into
    /// `final_path`. The `trace` provides the header sections (its
    /// own event list is ignored — the streamed body is the record of
    /// truth). Returns the number of streamed event records.
    pub fn finalize(mut self, trace_for_header: &Trace, final_path: &Path) -> std::io::Result<u64> {
        self.tx.send(Msg::Done).expect("writer thread alive");
        let lines = self
            .worker
            .take()
            .expect("finalize called once")
            .join()
            .expect("writer thread must not panic")?;

        let header = crate::trace_format::header_sections(trace_for_header);
        let body = std::fs::read_to_string(&self.body_path)?;
        let mut out = std::fs::File::create(final_path)?;
        out.write_all(header.as_bytes())?;
        out.write_all(body.as_bytes())?;
        Ok(lines)
    }
}

impl Drop for StreamWriter {
    fn drop(&mut self) {
        // Unblock the worker if finalize was never called.
        let _ = self.tx.send(Msg::Done);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    #[test]
    fn streamed_trace_parses_back() {
        let dir = std::env::temp_dir().join(format!("mempersp_stream_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let body = dir.join("body.mpit");
        let final_prv = dir.join("final.prv");

        // Build a run, streaming every event as it happens.
        let writer = StreamWriter::create(&body, 64).unwrap();
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let c = CounterSnapshot::default();
        let before = t.num_events();
        for i in 0..500u64 {
            t.enter(0, "R", c, i * 10);
            t.exit(0, "R", c, i * 10 + 5);
        }
        assert_eq!(t.num_events() - before, 1000);
        let trace = t.finish("streamed");
        for e in &trace.events {
            writer.append(e);
        }
        writer.flush();
        let lines = writer.finalize(&trace, &final_prv).unwrap();
        assert_eq!(lines, 1000);

        let loaded = crate::trace_format::load_trace(&final_prv).unwrap();
        assert_eq!(loaded.events, trace.events);
        assert_eq!(loaded.region_names, trace.region_names);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_without_finalize_does_not_hang() {
        let dir = std::env::temp_dir().join(format!("mempersp_stream2_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let body = dir.join("body.mpit");
        {
            let writer = StreamWriter::create(&body, 4).unwrap();
            let t = Tracer::new(TracerConfig::default(), 1);
            let trace = t.finish("empty");
            let _ = &trace;
            writer.flush();
            // dropped here
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
