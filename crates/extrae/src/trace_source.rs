//! Format-independent access to a stored trace.
//!
//! The suite has two trace containers: the line-oriented text format
//! (`.prv`, [`crate::trace_format`]) which must be parsed in full, and
//! the chunked binary store (`.mps`, crate `mempersp-store`) which
//! supports out-of-core, index-pruned scans. [`TraceSource`] is the
//! seam the consumers (folding, the analyses, the CLI) program
//! against so they accept either.
//!
//! A source separates the *header* — metadata, region names, symbol
//! map, object registry, resolution counters; small, always resident —
//! from the *event stream*, which may be orders of magnitude larger
//! and is only touched through [`TraceSource::scan`] with a [`Query`].

use crate::query::Query;
use crate::tracer::Trace;
use std::io;

/// Cost accounting of one [`TraceSource::scan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Events that matched the query and were delivered to the sink.
    pub events_matched: u64,
    /// Events the scan had to inspect (decoded or iterated).
    pub events_scanned: u64,
    /// Chunks whose payload was decoded for this scan (0 for
    /// in-memory sources; cache hits do not count as decodes).
    pub chunks_decoded: u64,
    /// Chunks the footer index proved could not match — skipped
    /// without touching their bytes.
    pub chunks_skipped: u64,
    /// Chunks served from the block cache without decoding.
    pub chunks_cached: u64,
    /// Chunks skipped because they were damaged (checksum mismatch,
    /// truncation, decode failure) — nonzero only for salvage-mode
    /// scans over a corrupted store.
    pub chunks_damaged: u64,
    /// Payload-section bytes the decoder actually read (0 for
    /// in-memory sources). For a late-materializing scan (store v4)
    /// this is strictly less than a full materialization whenever the
    /// query's pushed-down predicates deselect whole columns.
    pub payload_bytes_decoded: u64,
}

/// A trace opened for reading, independent of its container format.
pub trait TraceSource {
    /// The header as a [`Trace`] with an **empty** event list: meta,
    /// region names, source map, object registry and resolution stats
    /// are populated; `events` is empty.
    fn header(&mut self) -> io::Result<Trace>;

    /// Stream every event matching `query`, in trace order, into
    /// `sink`. Returns what the scan cost.
    fn scan(
        &mut self,
        query: &Query,
        sink: &mut dyn FnMut(crate::events::TraceEvent),
    ) -> io::Result<ScanStats>;

    /// A human-readable name of the backing container ("prv", "mps").
    fn format_name(&self) -> &'static str;

    /// Materialize the whole trace in memory: header + full scan.
    fn materialize(&mut self) -> io::Result<Trace> {
        let (trace, _) = self.filtered(&Query::all())?;
        Ok(trace)
    }

    /// Materialize a query-filtered trace: the full header plus only
    /// the matching events. This is the bridge that lets event-list
    /// consumers (folding, analyses) run out-of-core sources without
    /// paying for the events they would ignore.
    fn filtered(&mut self, query: &Query) -> io::Result<(Trace, ScanStats)> {
        let mut trace = self.header()?;
        let mut events = Vec::new();
        let stats = self.scan(query, &mut |e| events.push(e))?;
        trace.events = events;
        Ok((trace, stats))
    }
}

/// A fully-parsed in-memory trace acting as a source (the `.prv`
/// path, and the natural wrapper for a trace produced by a live run).
pub struct MaterializedSource {
    trace: Trace,
    format: &'static str,
}

impl MaterializedSource {
    pub fn new(trace: Trace) -> Self {
        Self { trace, format: "prv" }
    }

    /// Same, but reporting a different container name.
    pub fn with_format(trace: Trace, format: &'static str) -> Self {
        Self { trace, format }
    }

    /// Parse a `.prv` text trace from disk.
    pub fn open(path: &std::path::Path) -> io::Result<Self> {
        Ok(Self::new(crate::trace_format::load_trace(path)?))
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Unwrap.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl TraceSource for MaterializedSource {
    fn header(&mut self) -> io::Result<Trace> {
        let mut t = self.trace.clone();
        t.events = Vec::new();
        Ok(t)
    }

    fn scan(
        &mut self,
        query: &Query,
        sink: &mut dyn FnMut(crate::events::TraceEvent),
    ) -> io::Result<ScanStats> {
        let mut stats = ScanStats { events_scanned: self.trace.events.len() as u64, ..Default::default() };
        for e in &self.trace.events {
            if query.matches(e) {
                stats.events_matched += 1;
                sink(e.clone());
            }
        }
        Ok(stats)
    }

    fn format_name(&self) -> &'static str {
        self.format
    }

    fn materialize(&mut self) -> io::Result<Trace> {
        Ok(self.trace.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::EventClass;
    use crate::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn trace() -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 2);
        let c = CounterSnapshot::default();
        for i in 0..10u64 {
            t.enter(0, "R", c, i * 100);
            t.user_event(1, 1, i, i * 100 + 10);
            t.exit(0, "R", c, i * 100 + 50);
        }
        t.finish("source test")
    }

    #[test]
    fn header_carries_no_events() {
        let mut s = MaterializedSource::new(trace());
        let h = s.header().unwrap();
        assert!(h.events.is_empty());
        assert_eq!(h.region_names, vec!["R"]);
        assert_eq!(h.meta.num_cores, 2);
    }

    #[test]
    fn materialize_round_trips() {
        let t = trace();
        let mut s = MaterializedSource::new(t.clone());
        let m = s.materialize().unwrap();
        assert_eq!(m.events, t.events);
        assert_eq!(m.region_names, t.region_names);
    }

    #[test]
    fn filtered_keeps_only_matches() {
        let mut s = MaterializedSource::new(trace());
        let q = Query::all().with_kinds(&[EventClass::User]).in_time(0, 550);
        let (t, stats) = s.filtered(&q).unwrap();
        assert_eq!(t.events.len(), 6, "user events at 10,110,...,510");
        assert_eq!(stats.events_matched, 6);
        assert_eq!(stats.events_scanned, 30);
        assert_eq!(stats.chunks_decoded, 0, "in-memory source decodes nothing");
        assert!(t.events.iter().all(|e| e.core == 1));
    }

    #[test]
    fn format_name_reported() {
        let s = MaterializedSource::new(trace());
        assert_eq!(s.format_name(), "prv");
    }
}
