//! Trace event model.
//!
//! A monitored run produces an ordered sequence of [`TraceEvent`]s.
//! Timestamps are core cycles (converted to nanoseconds for reports
//! via the trace's nominal frequency, as the real tools do).

use crate::source::Ip;
use mempersp_pebs::{CounterSnapshot, PebsSample};
use serde::{Deserialize, Serialize};

/// Interned region (instrumented routine) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventPayload {
    /// Instrumented routine entry, with the counters at that instant.
    RegionEnter { region: RegionId, counters: CounterSnapshot },
    /// Instrumented routine exit, with the counters at that instant.
    RegionExit { region: RegionId, counters: CounterSnapshot },
    /// Timer-driven sample: program counter + counters + the stack of
    /// open instrumented regions at capture time (outermost first) —
    /// real Extrae unwinds the call stack at each sample.
    CounterSample { ip: Ip, counters: CounterSnapshot, stack: Vec<RegionId> },
    /// A PEBS memory sample, with the data object the address resolved
    /// to (if any).
    Pebs { sample: PebsSample, object: Option<crate::objects::ObjectId> },
    /// A tracked dynamic allocation.
    Alloc { base: u64, size: u64, callsite: Ip },
    /// A free of a tracked allocation.
    Free { base: u64 },
    /// The PEBS multiplexer rotated to another event.
    MuxSwitch { event_index: usize, label: String },
    /// Free-form point event (Extrae "user event").
    User { kind: u32, value: u64 },
}

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Timestamp in core cycles.
    pub cycles: u64,
    /// Core the event belongs to.
    pub core: usize,
    pub payload: EventPayload,
}

impl TraceEvent {
    /// Is this a region boundary event?
    pub fn is_region_boundary(&self) -> bool {
        matches!(
            self.payload,
            EventPayload::RegionEnter { .. } | EventPayload::RegionExit { .. }
        )
    }

    /// The PEBS sample carried, if any.
    pub fn pebs(&self) -> Option<&PebsSample> {
        match &self.payload {
            EventPayload::Pebs { sample, .. } => Some(sample),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_detection() {
        let e = TraceEvent {
            cycles: 0,
            core: 0,
            payload: EventPayload::RegionEnter {
                region: RegionId(0),
                counters: CounterSnapshot::default(),
            },
        };
        assert!(e.is_region_boundary());
        let u = TraceEvent { cycles: 0, core: 0, payload: EventPayload::User { kind: 1, value: 2 } };
        assert!(!u.is_region_boundary());
        assert!(u.pebs().is_none());
    }
}
