//! The simulated dynamic allocator.
//!
//! Workloads compute on ordinary Rust values; what flows through the
//! hierarchy simulator are *simulated virtual addresses*. This bump
//! allocator hands out those addresses with glibc-like behaviour:
//!
//! * small requests come from a contiguous "heap arena" (sbrk-style),
//!   so consecutive small allocations are adjacent — the property that
//!   makes HPCG's per-row allocations form one dense region;
//! * requests at or above `mmap_threshold` are placed in a separate,
//!   page-aligned "mmap zone" higher in the address space, mirroring
//!   glibc's `M_MMAP_THRESHOLD`;
//! * the whole layout is shifted by a seeded **ASLR slide**, so two
//!   allocators with different seeds produce disjoint address spaces
//!   for the same allocation sequence — the reason the paper needs
//!   load/store multiplexing within a single run.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default glibc mmap threshold (128 KiB).
pub const DEFAULT_MMAP_THRESHOLD: u64 = 128 * 1024;

/// Nominal (un-slid) base of the heap arena.
pub const HEAP_BASE: u64 = 0x2AD0_0000_0000;
/// Nominal (un-slid) base of the mmap zone.
pub const MMAP_BASE: u64 = 0x2B50_0000_0000;
/// Alignment of every returned address.
pub const ALIGNMENT: u64 = 16;

/// A live or freed allocation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    pub base: u64,
    pub size: u64,
    /// Whether it came from the mmap zone.
    pub mmapped: bool,
}

/// Deterministic simulated allocator with ASLR.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimAllocator {
    slide: u64,
    heap_next: u64,
    mmap_next: u64,
    mmap_threshold: u64,
    /// Live allocations by base address.
    live: BTreeMap<u64, Allocation>,
    /// Total bytes ever allocated / freed.
    allocated_bytes: u64,
    freed_bytes: u64,
}

impl SimAllocator {
    /// Create an allocator whose layout is slid by a value derived
    /// from `aslr_seed` (same seed ⇒ same addresses).
    pub fn new(aslr_seed: u64) -> Self {
        // splitmix64 of the seed, page-aligned, bounded to 1 TiB so the
        // zones never collide.
        let mut z = aslr_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let slide = (z % (1 << 28)) << 12; // up to ~1 TiB, page aligned
        Self {
            slide,
            heap_next: HEAP_BASE + slide,
            mmap_next: MMAP_BASE + slide,
            mmap_threshold: DEFAULT_MMAP_THRESHOLD,
            live: BTreeMap::new(),
            allocated_bytes: 0,
            freed_bytes: 0,
        }
    }

    /// Change the mmap threshold (tests and ablations).
    pub fn set_mmap_threshold(&mut self, t: u64) {
        self.mmap_threshold = t;
    }

    /// The ASLR slide applied to this address space.
    pub fn slide(&self) -> u64 {
        self.slide
    }

    /// Allocate `size` bytes; returns the simulated base address.
    pub fn malloc(&mut self, size: u64) -> u64 {
        let rounded = round_up(size.max(1), ALIGNMENT);
        let (base, mmapped) = if size >= self.mmap_threshold {
            let b = round_up(self.mmap_next, 4096);
            self.mmap_next = b + round_up(rounded, 4096);
            (b, true)
        } else {
            let b = self.heap_next;
            self.heap_next += rounded;
            (b, false)
        };
        self.live.insert(base, Allocation { base, size, mmapped });
        self.allocated_bytes += size;
        base
    }

    /// Free a previous allocation. Returns the record, or `None` for
    /// an unknown base (double free / wild pointer).
    pub fn free(&mut self, base: u64) -> Option<Allocation> {
        let a = self.live.remove(&base);
        if let Some(a) = a {
            self.freed_bytes += a.size;
        }
        a
    }

    /// Reallocate: new block + implicit free, like glibc when growth
    /// in place is impossible (the conservative model).
    pub fn realloc(&mut self, base: u64, new_size: u64) -> Option<u64> {
        self.free(base)?;
        Some(self.malloc(new_size))
    }

    /// The allocation containing `addr`, if any.
    pub fn containing(&self, addr: u64) -> Option<&Allocation> {
        self.live
            .range(..=addr)
            .next_back()
            .map(|(_, a)| a)
            .filter(|a| addr < a.base + a.size)
    }

    /// Live allocation count.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Live bytes (allocated − freed).
    pub fn live_bytes(&self) -> u64 {
        self.allocated_bytes - self.freed_bytes
    }

    /// Iterate live allocations in address order.
    pub fn iter_live(&self) -> impl Iterator<Item = &Allocation> {
        self.live.values()
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_allocations_are_adjacent() {
        let mut a = SimAllocator::new(1);
        // HPCG-style: 27 doubles per row = 216 bytes each.
        let p1 = a.malloc(216);
        let p2 = a.malloc(216);
        let p3 = a.malloc(216);
        assert_eq!(p2 - p1, 224, "216 rounded to 16-byte alignment");
        assert_eq!(p3 - p2, 224);
        assert!(!a.containing(p1).unwrap().mmapped);
    }

    #[test]
    fn large_allocations_go_to_mmap_zone() {
        let mut a = SimAllocator::new(1);
        let small = a.malloc(100);
        let big = a.malloc(1 << 20);
        assert!(a.containing(big).unwrap().mmapped);
        assert!(big > small + (1 << 38), "mmap zone far above heap");
        assert_eq!(big % 4096, 0, "mmap allocations page aligned");
    }

    #[test]
    fn aslr_slides_differ_per_seed() {
        let a = SimAllocator::new(1);
        let b = SimAllocator::new(2);
        assert_ne!(a.slide(), b.slide());
        let mut a = a;
        let mut b = b;
        assert_ne!(a.malloc(64), b.malloc(64), "same program, different addresses");
    }

    #[test]
    fn aslr_is_deterministic_per_seed() {
        let mut a = SimAllocator::new(7);
        let mut b = SimAllocator::new(7);
        for _ in 0..10 {
            assert_eq!(a.malloc(48), b.malloc(48));
        }
    }

    #[test]
    fn containing_finds_interior_addresses() {
        let mut a = SimAllocator::new(3);
        let base = a.malloc(1000);
        assert_eq!(a.containing(base).unwrap().base, base);
        assert_eq!(a.containing(base + 999).unwrap().base, base);
        assert!(a.containing(base + 1000).is_none());
        assert!(a.containing(base.wrapping_sub(1)).is_none());
    }

    #[test]
    fn free_then_containing_misses() {
        let mut a = SimAllocator::new(3);
        let base = a.malloc(128);
        assert!(a.free(base).is_some());
        assert!(a.containing(base).is_none());
        assert!(a.free(base).is_none(), "double free detected");
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn realloc_moves_and_preserves_accounting() {
        let mut a = SimAllocator::new(3);
        let p = a.malloc(100);
        let q = a.realloc(p, 200).unwrap();
        assert_ne!(p, q);
        assert!(a.containing(p).is_none());
        assert_eq!(a.containing(q).unwrap().size, 200);
        assert_eq!(a.live_bytes(), 200);
        assert!(a.realloc(0xdead, 10).is_none());
    }

    #[test]
    fn zero_size_malloc_returns_unique_addresses() {
        let mut a = SimAllocator::new(5);
        let p = a.malloc(0);
        let q = a.malloc(0);
        assert_ne!(p, q);
    }

    #[test]
    fn mmap_threshold_is_configurable() {
        let mut a = SimAllocator::new(1);
        a.set_mmap_threshold(64);
        let p = a.malloc(64);
        assert!(a.containing(p).unwrap().mmapped);
        let q = a.malloc(63);
        assert!(!a.containing(q).unwrap().mmapped);
    }
}
