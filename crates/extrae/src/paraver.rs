//! Export to the BSC Paraver trace format.
//!
//! Real Extrae writes three files that Paraver (and the Folding tool)
//! consume:
//!
//! * `.prv` — the trace body: header plus one record per line;
//!   state records (`1:`), event records (`2:`) and communication
//!   records (unused here);
//! * `.pcf` — the configuration: event-type and value labels;
//! * `.row` — object (thread) names.
//!
//! This module emits that format from a [`Trace`]. The mapping:
//!
//! * region enter/exit → event type 60000019 ("Executing function")
//!   with the region id + 1 as value, 0 on exit — the convention
//!   Extrae uses for user functions;
//! * hardware counters → one event type per counter
//!   (42000050 + index), emitted at enter/exit/sample records;
//! * PEBS samples → the event types the paper's extension added:
//!   address (32000000), latency (32000001), memory level (32000002),
//!   load/store (32000003), plus the resolved object id (32000004);
//! * the sampled instruction pointer → 30000000 with the synthetic ip.
//!
//! Timestamps are nanoseconds, as Paraver expects.

use crate::events::EventPayload;
use crate::tracer::Trace;
use mempersp_pebs::EventKind;
use std::fmt::Write as _;

/// Event-type bases (mirroring Extrae's numbering style).
pub const TYPE_FUNCTION: u64 = 60000019;
pub const TYPE_COUNTER_BASE: u64 = 42000050;
pub const TYPE_SAMPLED_IP: u64 = 30000000;
pub const TYPE_PEBS_ADDR: u64 = 32000000;
pub const TYPE_PEBS_LATENCY: u64 = 32000001;
pub const TYPE_PEBS_LEVEL: u64 = 32000002;
pub const TYPE_PEBS_KIND: u64 = 32000003;
pub const TYPE_PEBS_OBJECT: u64 = 32000004;

fn ns(trace: &Trace, cycles: u64) -> u64 {
    trace.cycles_to_ns(cycles).round() as u64
}

/// Render the `.prv` body.
pub fn to_prv(trace: &Trace) -> String {
    let end_ns = trace
        .events
        .iter()
        .map(|e| ns(trace, e.cycles))
        .max()
        .unwrap_or(0);
    let ncores = trace.meta.num_cores;
    let mut out = String::new();
    // Header: #Paraver (date):duration_ns:nodes(cpus):n_appl:appl_1(tasks)
    let _ = writeln!(
        out,
        "#Paraver (01/01/2017 at 00:00):{end_ns}_ns:1({ncores}):1:1({ncores}:1)"
    );

    // Record emitter: 2:cpu:appl:task:thread:time:type:value[:type:value...]
    let mut emit = |core: usize, t: u64, pairs: &[(u64, u64)]| {
        let _ = write!(out, "2:{}:1:1:{}:{}", core + 1, core + 1, t);
        for (ty, v) in pairs {
            let _ = write!(out, ":{ty}:{v}");
        }
        out.push('\n');
    };

    for e in &trace.events {
        let t = ns(trace, e.cycles);
        match &e.payload {
            EventPayload::RegionEnter { region, counters } => {
                let mut pairs = vec![(TYPE_FUNCTION, region.0 as u64 + 1)];
                for kind in EventKind::ALL {
                    pairs.push((TYPE_COUNTER_BASE + kind.index() as u64, counters.get(kind)));
                }
                emit(e.core, t, &pairs);
            }
            EventPayload::RegionExit { counters, .. } => {
                let mut pairs = vec![(TYPE_FUNCTION, 0)];
                for kind in EventKind::ALL {
                    pairs.push((TYPE_COUNTER_BASE + kind.index() as u64, counters.get(kind)));
                }
                emit(e.core, t, &pairs);
            }
            EventPayload::CounterSample { ip, counters, .. } => {
                let mut pairs = vec![(TYPE_SAMPLED_IP, ip.0)];
                for kind in EventKind::ALL {
                    pairs.push((TYPE_COUNTER_BASE + kind.index() as u64, counters.get(kind)));
                }
                emit(e.core, t, &pairs);
            }
            EventPayload::Pebs { sample, object } => {
                emit(
                    e.core,
                    t,
                    &[
                        (TYPE_SAMPLED_IP, sample.ip),
                        (TYPE_PEBS_ADDR, sample.addr),
                        (TYPE_PEBS_LATENCY, sample.latency as u64),
                        (
                            TYPE_PEBS_LEVEL,
                            match sample.source {
                                mempersp_memsim::MemLevel::L1 => 1,
                                mempersp_memsim::MemLevel::L2 => 2,
                                mempersp_memsim::MemLevel::L3 => 3,
                                mempersp_memsim::MemLevel::Dram => 4,
                            },
                        ),
                        (TYPE_PEBS_KIND, u64::from(sample.is_store)),
                        (
                            TYPE_PEBS_OBJECT,
                            object.map(|o| o.0 as u64 + 1).unwrap_or(0),
                        ),
                    ],
                );
            }
            // Allocation bookkeeping and mux rotations are represented
            // as user events so nothing is lost.
            EventPayload::Alloc { base, size, .. } => {
                emit(e.core, t, &[(32000010, *base), (32000011, *size)]);
            }
            EventPayload::Free { base } => {
                emit(e.core, t, &[(32000012, *base)]);
            }
            EventPayload::MuxSwitch { event_index, .. } => {
                emit(e.core, t, &[(32000013, *event_index as u64)]);
            }
            EventPayload::User { kind, value } => {
                emit(e.core, t, &[(33000000 + *kind as u64, *value)]);
            }
        }
    }
    out
}

/// Render the `.pcf` (labels) file.
pub fn to_pcf(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("DEFAULT_OPTIONS\n\nLEVEL\tTHREAD\nUNITS\tNANOSEC\n\n");

    // Function (region) labels.
    let _ = writeln!(out, "EVENT_TYPE\n0\t{TYPE_FUNCTION}\tExecuting function");
    out.push_str("VALUES\n0\tEnd\n");
    for (i, name) in trace.region_names.iter().enumerate() {
        let _ = writeln!(out, "{}\t{}", i + 1, name);
    }
    out.push('\n');

    // Counter labels.
    for kind in EventKind::ALL {
        let _ = writeln!(
            out,
            "EVENT_TYPE\n7\t{}\t{}",
            TYPE_COUNTER_BASE + kind.index() as u64,
            kind.label()
        );
        out.push('\n');
    }

    // PEBS labels.
    let _ = writeln!(out, "EVENT_TYPE\n0\t{TYPE_SAMPLED_IP}\tSampled instruction pointer\n");
    let _ = writeln!(out, "EVENT_TYPE\n0\t{TYPE_PEBS_ADDR}\tSampled address");
    let _ = writeln!(out, "EVENT_TYPE\n0\t{TYPE_PEBS_LATENCY}\tSampled access cost (cycles)");
    let _ = writeln!(out, "EVENT_TYPE\n0\t{TYPE_PEBS_LEVEL}\tSampled memory level");
    out.push_str("VALUES\n1\tL1\n2\tL2\n3\tL3\n4\tDRAM\n\n");
    let _ = writeln!(out, "EVENT_TYPE\n0\t{TYPE_PEBS_KIND}\tSampled operation");
    out.push_str("VALUES\n0\tload\n1\tstore\n\n");
    let _ = writeln!(out, "EVENT_TYPE\n0\t{TYPE_PEBS_OBJECT}\tSampled data object");
    out.push_str("VALUES\n0\tUnresolved\n");
    for o in trace.objects.all() {
        let _ = writeln!(out, "{}\t{}", o.id.0 + 1, o.figure_label());
    }
    out.push('\n');
    out
}

/// Render the `.row` (object names) file.
pub fn to_row(trace: &Trace) -> String {
    let n = trace.meta.num_cores;
    let mut out = String::new();
    let _ = writeln!(out, "LEVEL CPU SIZE {n}");
    for c in 0..n {
        let _ = writeln!(out, "{}.core", c + 1);
    }
    let _ = writeln!(out, "\nLEVEL THREAD SIZE {n}");
    for c in 0..n {
        let _ = writeln!(out, "THREAD 1.1.{}", c + 1);
    }
    out
}

/// `std::fs::write` with the destination path folded into the error,
/// so a failed export names the file instead of a bare "permission
/// denied".
fn write_named(path: &std::path::Path, contents: String) -> std::io::Result<()> {
    std::fs::write(path, contents)
        .map_err(|e| std::io::Error::new(e.kind(), format!("writing {}: {e}", path.display())))
}

/// Write the three Paraver files with a common `prefix`
/// (`prefix.prv`, `prefix.pcf`, `prefix.row`).
pub fn export_paraver(dir: &std::path::Path, prefix: &str, trace: &Trace) -> std::io::Result<[std::path::PathBuf; 3]> {
    std::fs::create_dir_all(dir)
        .map_err(|e| std::io::Error::new(e.kind(), format!("creating {}: {e}", dir.display())))?;
    let prv = dir.join(format!("{prefix}.prv"));
    let pcf = dir.join(format!("{prefix}.pcf"));
    let row = dir.join(format!("{prefix}.row"));
    write_named(&prv, to_prv(trace))?;
    write_named(&pcf, to_pcf(trace))?;
    write_named(&row, to_row(trace))?;
    Ok([prv, pcf, row])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CodeLocation;
    use crate::tracer::{Tracer, TracerConfig};
    use mempersp_memsim::MemLevel;
    use mempersp_pebs::{CounterSnapshot, PebsSample};

    fn sample_trace() -> Trace {
        let mut t = Tracer::new(TracerConfig { freq_mhz: 1000, ..Default::default() }, 2);
        let c = CounterSnapshot::from_values([10, 20, 1, 2, 3, 4, 5, 6, 0, 0, 0, 0]);
        let big = t.malloc(1 << 20, &CodeLocation::new("gen.cpp", 110, "g"), 0);
        t.enter(0, "ComputeSPMV_ref", c, 1000);
        t.record_pebs(PebsSample {
            timestamp: 1500,
            core: 0,
            ip: 0x400010,
            addr: big + 64,
            size: 8,
            is_store: false,
            latency: 36,
            source: MemLevel::L3,
            tlb_miss: false,
        });
        t.exit(0, "ComputeSPMV_ref", c, 2000);
        t.finish("paraver test")
    }

    #[test]
    fn prv_header_and_records() {
        let tr = sample_trace();
        let prv = to_prv(&tr);
        let mut lines = prv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("#Paraver"), "{header}");
        assert!(header.contains(":1(2):1:1(2:1)"), "2 cores: {header}");
        // All records are type-2 (event) lines with ns timestamps
        // (1000 cycles @1 GHz = 1000 ns).
        let records: Vec<&str> = lines.collect();
        assert!(records.iter().all(|r| r.starts_with("2:")));
        assert!(records.iter().any(|r| r.contains(":1000:")), "enter at t=1000 ns");
        // Function-entry value is region id + 1 (the first record is
        // the allocation at t=0, then the region enter).
        assert!(records.iter().any(|r| r.contains(&format!(":{TYPE_FUNCTION}:1"))));
        // Exit carries value 0.
        assert!(records.last().unwrap().contains(&format!(":{TYPE_FUNCTION}:0")));
        // PEBS record carries address + latency + level(3=L3) + kind 0.
        let pebs = records.iter().find(|r| r.contains(&TYPE_PEBS_ADDR.to_string())).unwrap();
        assert!(pebs.contains(&format!(":{TYPE_PEBS_LATENCY}:36")));
        assert!(pebs.contains(&format!(":{TYPE_PEBS_LEVEL}:3")));
        assert!(pebs.contains(&format!(":{TYPE_PEBS_KIND}:0")));
        assert!(pebs.contains(&format!(":{TYPE_PEBS_OBJECT}:1")), "resolved object id 0 -> value 1");
    }

    #[test]
    fn pcf_labels_regions_counters_objects() {
        let tr = sample_trace();
        let pcf = to_pcf(&tr);
        assert!(pcf.contains("Executing function"));
        assert!(pcf.contains("ComputeSPMV_ref"));
        assert!(pcf.contains("L1D miss"));
        assert!(pcf.contains("Sampled address"));
        assert!(pcf.contains("gen.cpp:110"), "object labels present");
        assert!(pcf.contains("UNITS\tNANOSEC"));
    }

    #[test]
    fn row_lists_cores() {
        let tr = sample_trace();
        let row = to_row(&tr);
        assert!(row.contains("LEVEL CPU SIZE 2"));
        assert!(row.contains("THREAD 1.1.2"));
    }

    #[test]
    fn export_writes_three_files() {
        let tr = sample_trace();
        let dir = std::env::temp_dir().join("mempersp_paraver_test");
        let files = export_paraver(&dir, "t", &tr).unwrap();
        for f in &files {
            assert!(f.exists());
            assert!(std::fs::metadata(f).unwrap().len() > 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_export_names_the_offending_path() {
        let tr = sample_trace();
        // A directory that cannot be created: a path through a file.
        let dir = std::env::temp_dir().join(format!("mempersp_paraver_block_{}", std::process::id()));
        std::fs::write(&dir, "i am a file").unwrap();
        let err = export_paraver(&dir.join("sub"), "t", &tr).unwrap_err();
        assert!(
            err.to_string().contains("sub"),
            "error should name the path: {err}"
        );
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn timestamps_monotone_in_prv() {
        let tr = sample_trace();
        let prv = to_prv(&tr);
        let times: Vec<u64> = prv
            .lines()
            .skip(1)
            .map(|l| l.split(':').nth(5).unwrap().parse().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
