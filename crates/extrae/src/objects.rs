//! The data-object registry: the map from sampled addresses to the
//! program's data objects.
//!
//! Three kinds of objects exist, with this resolution precedence:
//!
//! 1. **groups** — manually declared address ranges that wrap many
//!    tiny allocations (the paper's HPCG work-around); they win over
//!    everything because they were declared deliberately;
//! 2. **dynamic** — individual allocations at or above the tracer's
//!    size threshold, identified by their allocation call-site
//!    (`file:line`), as real Extrae identifies them by call-stack;
//! 3. **static** — named objects from the binary image (our workloads
//!    register them explicitly).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stable object identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

/// How an object was registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectKind {
    /// From the binary's symbol table.
    Static,
    /// A single tracked dynamic allocation.
    Dynamic,
    /// A manually-wrapped group of allocations.
    Group,
}

/// One registered object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectDesc {
    pub id: ObjectId,
    /// Display name: symbol name (static), allocation site `file:line`
    /// (dynamic), or the user-given group name.
    pub name: String,
    pub kind: ObjectKind,
    pub base: u64,
    pub size: u64,
    /// Bytes actually allocated within the range (== `size` except for
    /// groups, whose range may include allocator padding).
    pub allocated_bytes: u64,
}

impl ObjectDesc {
    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// The label the paper's figure uses: `name|size`, e.g.
    /// `124_GenerateProblem_ref.cpp|617 MB`.
    pub fn figure_label(&self) -> String {
        format!("{}|{}", self.name, human_bytes(self.allocated_bytes))
    }
}

/// Result of resolving an address.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedObject {
    pub id: ObjectId,
    pub name: String,
    pub kind: ObjectKind,
    /// Offset of the address within the object.
    pub offset: u64,
}

/// Interval registry of all known data objects.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObjectRegistry {
    objects: Vec<ObjectDesc>,
    /// base → object index, per kind (distinct maps because precedence
    /// differs and ranges of different kinds may overlap).
    groups: BTreeMap<u64, u32>,
    dynamics: BTreeMap<u64, u32>,
    statics: BTreeMap<u64, u32>,
    /// Last successful resolution: `(base, end, object index)`.
    /// Consecutive PEBS samples overwhelmingly land in the same object,
    /// so this memo short-circuits the three-map lookup. Invalidated on
    /// any registry mutation (a later group registration outranks a
    /// memoized dynamic hit).
    memo: Option<(u64, u64, u32)>,
}

impl ObjectRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: String, kind: ObjectKind, base: u64, size: u64, allocated: u64) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(ObjectDesc { id, name, kind, base, size, allocated_bytes: allocated });
        let map = match kind {
            ObjectKind::Group => &mut self.groups,
            ObjectKind::Dynamic => &mut self.dynamics,
            ObjectKind::Static => &mut self.statics,
        };
        map.insert(base, id.0);
        self.memo = None;
        id
    }

    /// Register a static object by symbol name.
    pub fn register_static(&mut self, name: &str, base: u64, size: u64) -> ObjectId {
        self.push(name.to_string(), ObjectKind::Static, base, size, size)
    }

    /// Register a tracked dynamic allocation named after its call-site.
    pub fn register_dynamic(&mut self, callsite: &str, base: u64, size: u64) -> ObjectId {
        self.push(callsite.to_string(), ObjectKind::Dynamic, base, size, size)
    }

    /// Remove the dynamic object starting at `base` (freed).
    pub fn remove_dynamic(&mut self, base: u64) -> Option<ObjectId> {
        self.memo = None;
        self.dynamics.remove(&base).map(ObjectId)
    }

    /// Register a manually-wrapped group covering `[base, base+size)`.
    /// `allocated` is the sum of the member allocations' sizes.
    pub fn register_group(&mut self, name: &str, base: u64, size: u64, allocated: u64) -> ObjectId {
        self.push(name.to_string(), ObjectKind::Group, base, size, allocated)
    }

    fn lookup(map: &BTreeMap<u64, u32>, objects: &[ObjectDesc], addr: u64) -> Option<u32> {
        map.range(..=addr)
            .next_back()
            .map(|(_, &i)| i)
            .filter(|&i| addr < objects[i as usize].end())
    }

    fn lookup_any(&self, addr: u64) -> Option<u32> {
        Self::lookup(&self.groups, &self.objects, addr)
            .or_else(|| Self::lookup(&self.dynamics, &self.objects, addr))
            .or_else(|| Self::lookup(&self.statics, &self.objects, addr))
    }

    /// Resolve an address to `(object id, offset within it)` without
    /// touching the object's name — the allocation-free fast path the
    /// per-sample PEBS pipeline uses. Names are recovered lazily via
    /// [`get`](Self::get) at report time.
    pub fn resolve_id(&mut self, addr: u64) -> Option<(ObjectId, u64)> {
        if let Some((base, end, idx)) = self.memo {
            if addr >= base && addr < end {
                return Some((ObjectId(idx), addr - base));
            }
        }
        let idx = self.lookup_any(addr)?;
        let o = &self.objects[idx as usize];
        self.memo = Some((o.base, o.end(), idx));
        Some((o.id, addr - o.base))
    }

    /// Resolve an address to the covering object, if any. Clones the
    /// object's name; hot paths should prefer
    /// [`resolve_id`](Self::resolve_id).
    pub fn resolve(&self, addr: u64) -> Option<ResolvedObject> {
        let idx = self.lookup_any(addr)?;
        let o = &self.objects[idx as usize];
        Some(ResolvedObject { id: o.id, name: o.name.clone(), kind: o.kind, offset: addr - o.base })
    }

    /// Object descriptor by id.
    pub fn get(&self, id: ObjectId) -> Option<&ObjectDesc> {
        self.objects.get(id.0 as usize)
    }

    /// All registered objects (including freed dynamics, which stay in
    /// the table for post-mortem naming but are no longer resolvable).
    pub fn all(&self) -> &[ObjectDesc] {
        &self.objects
    }

    /// Count of currently resolvable objects.
    pub fn resolvable_count(&self) -> usize {
        self.groups.len() + self.dynamics.len() + self.statics.len()
    }

    /// Rebuild the interval maps after deserialization (the maps are
    /// serialized, so this is only needed for hand-built registries).
    pub fn rebuild(&mut self) {
        self.memo = None;
        self.groups.clear();
        self.dynamics.clear();
        self.statics.clear();
        for (i, o) in self.objects.iter().enumerate() {
            let map = match o.kind {
                ObjectKind::Group => &mut self.groups,
                ObjectKind::Dynamic => &mut self.dynamics,
                ObjectKind::Static => &mut self.statics,
            };
            map.insert(o.base, i as u32);
        }
    }
}

/// Format a byte count the way the paper's figure labels do
/// (e.g. "617 MB", using decimal megabytes).
pub fn human_bytes(bytes: u64) -> String {
    const KB: f64 = 1e3;
    const MB: f64 = 1e6;
    const GB: f64 = 1e9;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.1} GB", b / GB)
    } else if b >= MB {
        format!("{:.0} MB", b / MB)
    } else if b >= KB {
        format!("{:.0} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_static() {
        let mut r = ObjectRegistry::new();
        r.register_static("ghost", 0x1000, 0x100);
        let got = r.resolve(0x1080).unwrap();
        assert_eq!(got.name, "ghost");
        assert_eq!(got.kind, ObjectKind::Static);
        assert_eq!(got.offset, 0x80);
        assert!(r.resolve(0x1100).is_none(), "end is exclusive");
        assert!(r.resolve(0xFFF).is_none());
    }

    #[test]
    fn dynamic_objects_named_by_callsite() {
        let mut r = ObjectRegistry::new();
        r.register_dynamic("GenerateProblem_ref.cpp:110", 0x2000, 216);
        let got = r.resolve(0x2000).unwrap();
        assert_eq!(got.name, "GenerateProblem_ref.cpp:110");
        assert_eq!(got.kind, ObjectKind::Dynamic);
    }

    #[test]
    fn freed_dynamic_is_unresolvable_but_still_listed() {
        let mut r = ObjectRegistry::new();
        let id = r.register_dynamic("f.cpp:1", 0x3000, 64);
        assert_eq!(r.remove_dynamic(0x3000), Some(id));
        assert!(r.resolve(0x3020).is_none());
        assert_eq!(r.all().len(), 1, "descriptor kept for post-mortem naming");
        assert!(r.remove_dynamic(0x3000).is_none());
    }

    #[test]
    fn group_wins_over_members() {
        let mut r = ObjectRegistry::new();
        r.register_dynamic("gen.cpp:110", 0x1000, 216);
        r.register_dynamic("gen.cpp:110", 0x10e0, 216);
        r.register_group("124_GenerateProblem_ref.cpp", 0x1000, 0x2000, 432);
        let got = r.resolve(0x10f0).unwrap();
        assert_eq!(got.kind, ObjectKind::Group);
        assert_eq!(got.name, "124_GenerateProblem_ref.cpp");
    }

    #[test]
    fn adjacent_objects_resolve_correctly() {
        let mut r = ObjectRegistry::new();
        r.register_dynamic("a:1", 0x1000, 0x100);
        r.register_dynamic("b:2", 0x1100, 0x100);
        assert_eq!(r.resolve(0x10FF).unwrap().name, "a:1");
        assert_eq!(r.resolve(0x1100).unwrap().name, "b:2");
    }

    #[test]
    fn figure_label_matches_paper_style() {
        let mut r = ObjectRegistry::new();
        let id = r.register_group("124_GenerateProblem_ref.cpp", 0x0, 650_000_000, 617_000_000);
        assert_eq!(r.get(id).unwrap().figure_label(), "124_GenerateProblem_ref.cpp|617 MB");
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(999), "999 B");
        assert_eq!(human_bytes(89_000_000), "89 MB");
        assert_eq!(human_bytes(1_500_000_000), "1.5 GB");
        assert_eq!(human_bytes(2_000), "2 KB");
    }

    #[test]
    fn resolvable_count_tracks_kinds() {
        let mut r = ObjectRegistry::new();
        r.register_static("s", 0, 10);
        r.register_dynamic("d:1", 100, 10);
        r.register_group("g", 200, 10, 10);
        assert_eq!(r.resolvable_count(), 3);
        r.remove_dynamic(100);
        assert_eq!(r.resolvable_count(), 2);
    }

    #[test]
    fn resolve_id_matches_resolve() {
        let mut r = ObjectRegistry::new();
        r.register_static("s", 0x1000, 0x100);
        r.register_dynamic("d:1", 0x2000, 0x80);
        for addr in [0x1000u64, 0x10ff, 0x2000, 0x207f, 0x999, 0x2080] {
            let full = r.resolve(addr);
            let fast = r.resolve_id(addr);
            assert_eq!(full.as_ref().map(|o| (o.id, o.offset)), fast, "addr {addr:#x}");
        }
    }

    #[test]
    fn memo_repeated_hits_and_invalidation() {
        let mut r = ObjectRegistry::new();
        r.register_dynamic("d:1", 0x1000, 0x100);
        // Repeated hits exercise the memo path.
        assert_eq!(r.resolve_id(0x1010), Some((ObjectId(0), 0x10)));
        assert_eq!(r.resolve_id(0x1020), Some((ObjectId(0), 0x20)));
        // A group over the same range outranks the memoized dynamic.
        let gid = r.register_group("g", 0x1000, 0x100, 0x100);
        assert_eq!(r.resolve_id(0x1020), Some((gid, 0x20)));
        // Freeing kills the memo too.
        let mut r2 = ObjectRegistry::new();
        r2.register_dynamic("d:2", 0x4000, 0x40);
        assert!(r2.resolve_id(0x4000).is_some());
        r2.remove_dynamic(0x4000);
        assert_eq!(r2.resolve_id(0x4000), None);
    }

    #[test]
    fn rebuild_restores_maps() {
        let mut r = ObjectRegistry::new();
        r.register_static("s", 0x100, 0x10);
        let mut r2 = r.clone();
        r2.rebuild();
        assert_eq!(r2.resolve(0x105).unwrap().name, "s");
    }
}
