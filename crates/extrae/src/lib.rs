//! # mempersp-extrae — the monitoring runtime
//!
//! Models the Extrae extensions described in Section II of the paper:
//!
//! * **instrumentation** — region enter/exit events with hardware
//!   counter readings ([`Tracer::enter`], [`Tracer::exit`]);
//! * **coarse-grain sampling** — periodic captures of the program
//!   counter plus the performance counters
//!   ([`Tracer::record_counter_sample`]);
//! * **PEBS memory samples** — address / latency / data-source records
//!   forwarded from the PMU model ([`Tracer::record_pebs`]);
//! * **dynamic-allocation interposition** — `malloc`/`realloc`/`free`
//!   wrappers that register every allocation **at or above a size
//!   threshold** as a data object identified by its allocation
//!   call-site ([`Tracer::malloc`]);
//! * **static objects** — registered by name, mimicking the binary
//!   symbol-table scan ([`Tracer::register_static`]);
//! * **manual allocation grouping** — the work-around the authors
//!   applied to HPCG, wrapping runs of tiny allocations into one named
//!   object ([`Tracer::begin_alloc_group`] / [`Tracer::end_alloc_group`]);
//! * **address-space layout randomization** — each tracer applies a
//!   seeded slide to its simulated heap base, demonstrating why two
//!   separate runs cannot be overlaid ([`sim_alloc::SimAllocator`]);
//! * a **Paraver-like trace format** with writer and parser
//!   ([`trace_format`]).
//!
//! The output of a monitored run is a [`Trace`]: the ordered event
//! list plus the source map and the data-object registry — everything
//! the Folding crate needs.

pub mod events;
pub mod harness;
pub mod json;
pub mod objects;
pub mod paraver;
pub mod query;
pub mod sim_alloc;
pub mod source;
pub mod stream_writer;
pub mod trace_format;
pub mod trace_source;
pub mod tracer;

pub use events::{EventPayload, TraceEvent};
pub use harness::{AppContext, MemRequest, NullContext, Workload};
pub use objects::{ObjectId, ObjectKind, ObjectRegistry, ResolvedObject};
pub use query::{EventClass, KindMask, Query};
pub use sim_alloc::SimAllocator;
pub use source::{CodeLocation, Ip, SourceMap};
pub use stream_writer::{EventSink, PrvSink, StreamWriter};
pub use trace_source::{MaterializedSource, ScanStats, TraceSource};
pub use tracer::{Trace, TraceMeta, Tracer, TracerConfig};
