//! The application-side execution interface.
//!
//! Instrumented workloads (HPCG, STREAM, ...) are written against
//! [`AppContext`]: they allocate simulated memory, declare source
//! locations, mark regions, and issue loads/stores/compute batches.
//! The simulated machine (in `mempersp-core`) implements the trait,
//! routing accesses through the cache hierarchy, driving the PMU +
//! PEBS models and the tracer.
//!
//! Keeping the trait here (next to the tracer) lets workload crates
//! stay independent of the machine implementation, exactly as real
//! applications link against the Extrae runtime and not against the
//! CPU.

use crate::source::{CodeLocation, Ip};

/// One memory operation in a batched issue stream (see
/// [`AppContext::access_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Attributed instruction pointer.
    pub ip: Ip,
    pub addr: u64,
    /// Size in bytes.
    pub size: u32,
    /// `true` for a store, `false` for a load.
    pub store: bool,
}

impl MemRequest {
    pub fn load(ip: Ip, addr: u64, size: u32) -> Self {
        Self { ip, addr, size, store: false }
    }

    pub fn store(ip: Ip, addr: u64, size: u32) -> Self {
        Self { ip, addr, size, store: true }
    }
}

/// What an instrumented application can do.
///
/// `core` arguments select the simulated core issuing the action;
/// workloads performing domain decomposition interleave calls across
/// cores.
pub trait AppContext {
    /// Number of simulated cores available.
    fn core_count(&self) -> usize;

    /// Register an instrumented statement; returns its synthetic ip.
    fn location(&mut self, file: &str, line: u32, function: &str) -> Ip;

    /// Interposed `malloc` from `core` at the given call-site.
    fn malloc(&mut self, core: usize, size: u64, callsite: &CodeLocation) -> u64;

    /// Interposed `free`.
    fn free(&mut self, core: usize, addr: u64);

    /// Begin wrapping subsequent allocations into a named group (the
    /// paper's manual instrumentation work-around).
    fn begin_alloc_group(&mut self, name: &str);

    /// Close the open allocation group.
    fn end_alloc_group(&mut self);

    /// Register a static data object; the machine assigns its address
    /// in the simulated data segment.
    fn register_static(&mut self, name: &str, size: u64) -> u64;

    /// Enter an instrumented region on `core`.
    fn enter(&mut self, core: usize, region: &str);

    /// Exit an instrumented region on `core`.
    fn exit(&mut self, core: usize, region: &str);

    /// Retire one load of `size` bytes at `addr`, attributed to `ip`.
    fn load(&mut self, core: usize, ip: Ip, addr: u64, size: u32);

    /// Retire one store of `size` bytes at `addr`, attributed to `ip`.
    fn store(&mut self, core: usize, ip: Ip, addr: u64, size: u32);

    /// Retire a batch of memory operations from `core`, equivalent to
    /// calling [`load`](Self::load)/[`store`](Self::store) once per
    /// request in order. Hot kernels should prefer this: contexts that
    /// simulate the memory hierarchy override it to skip per-call
    /// dispatch and exploit same-line/same-page locality within the
    /// batch.
    fn access_batch(&mut self, core: usize, ops: &[MemRequest]) {
        for op in ops {
            if op.store {
                self.store(core, op.ip, op.addr, op.size);
            } else {
                self.load(core, op.ip, op.addr, op.size);
            }
        }
    }

    /// Retire a batch of non-memory work: `instructions` total, of
    /// which `branches` are branch instructions.
    fn compute(&mut self, core: usize, ip: Ip, instructions: u64, branches: u64);

    /// Declare the memory-level parallelism of the *upcoming* access
    /// pattern on `core`: how many outstanding misses the code can
    /// overlap (1 = fully serialized pointer chasing, ~6-10 = streaming
    /// gather). This stands in for the out-of-order window the
    /// simulator does not model cycle-accurately; dependent-access
    /// kernels (Gauss–Seidel) declare low values, independent-access
    /// kernels (SpMV over rows) higher ones.
    fn set_overlap(&mut self, core: usize, overlap: f64);

    /// Synchronize all core clocks to the latest one (an OpenMP-style
    /// barrier).
    fn barrier(&mut self);

    /// Current cycle of `core`'s clock.
    ///
    /// Takes `&mut self` because reading the clock is an observation
    /// point: contexts that buffer work (e.g. the epoch-pipelined
    /// machine) must retire everything issued so far before answering.
    fn now(&mut self, core: usize) -> u64;
}

/// An instrumented application runnable on any [`AppContext`].
pub trait Workload {
    /// Display name (used in trace descriptions and reports).
    fn name(&self) -> String;

    /// Execute the workload to completion.
    fn run(&mut self, ctx: &mut dyn AppContext);
}

/// A minimal, simulation-free context: it maintains per-core clocks
/// and counters with a trivial timing model (1 cycle per instruction,
/// 4 per memory access) and records everything in a [`crate::tracer::Tracer`], but
/// performs **no** cache simulation and captures **no** PEBS samples.
///
/// Useful for testing workload numerics and instrumentation balance
/// quickly; the full machine lives in `mempersp-core`.
pub struct NullContext {
    tracer: crate::tracer::Tracer,
    pmus: Vec<mempersp_pebs::Pmu>,
    clocks: Vec<u64>,
    static_next: u64,
    num_cores: usize,
}

impl NullContext {
    pub fn new(num_cores: usize) -> Self {
        Self {
            tracer: crate::tracer::Tracer::new(crate::tracer::TracerConfig::default(), num_cores),
            pmus: (0..num_cores).map(|_| mempersp_pebs::Pmu::new()).collect(),
            clocks: vec![0; num_cores],
            static_next: 0x0060_0000,
            num_cores,
        }
    }

    /// Finish and return the trace.
    pub fn finish(self, description: &str) -> crate::tracer::Trace {
        self.tracer.finish(description)
    }

    /// Read-only access to the tracer.
    pub fn tracer(&self) -> &crate::tracer::Tracer {
        &self.tracer
    }

    fn mem(&mut self, core: usize, is_store: bool) {
        use mempersp_pebs::EventKind;
        let pmu = &mut self.pmus[core];
        pmu.add(EventKind::Instructions, 1);
        pmu.add(if is_store { EventKind::Stores } else { EventKind::Loads }, 1);
        pmu.add(EventKind::Cycles, 4);
        self.clocks[core] += 4;
    }
}

impl AppContext for NullContext {
    fn core_count(&self) -> usize {
        self.num_cores
    }

    fn location(&mut self, file: &str, line: u32, function: &str) -> Ip {
        self.tracer.location(file, line, function)
    }

    fn malloc(&mut self, core: usize, size: u64, callsite: &CodeLocation) -> u64 {
        let now = self.clocks[core];
        self.tracer.malloc(size, callsite, now)
    }

    fn free(&mut self, core: usize, addr: u64) {
        let now = self.clocks[core];
        self.tracer.free(addr, now);
    }

    fn begin_alloc_group(&mut self, name: &str) {
        self.tracer.begin_alloc_group(name);
    }

    fn end_alloc_group(&mut self) {
        let _ = self.tracer.end_alloc_group();
    }

    fn register_static(&mut self, name: &str, size: u64) -> u64 {
        let base = self.static_next;
        self.static_next += (size + 63) & !63;
        self.tracer.register_static(name, base, size);
        base
    }

    fn enter(&mut self, core: usize, region: &str) {
        let snap = self.pmus[core].snapshot();
        let now = self.clocks[core];
        self.tracer.enter(core, region, snap, now);
    }

    fn exit(&mut self, core: usize, region: &str) {
        let snap = self.pmus[core].snapshot();
        let now = self.clocks[core];
        self.tracer.exit(core, region, snap, now);
    }

    fn load(&mut self, core: usize, _ip: Ip, _addr: u64, _size: u32) {
        self.mem(core, false);
    }

    fn store(&mut self, core: usize, _ip: Ip, _addr: u64, _size: u32) {
        self.mem(core, true);
    }

    fn access_batch(&mut self, core: usize, ops: &[MemRequest]) {
        use mempersp_pebs::EventKind;
        let stores = ops.iter().filter(|o| o.store).count() as u64;
        let loads = ops.len() as u64 - stores;
        let pmu = &mut self.pmus[core];
        pmu.add(EventKind::Instructions, ops.len() as u64);
        pmu.add(EventKind::Loads, loads);
        pmu.add(EventKind::Stores, stores);
        pmu.add(EventKind::Cycles, 4 * ops.len() as u64);
        self.clocks[core] += 4 * ops.len() as u64;
    }

    fn compute(&mut self, core: usize, _ip: Ip, instructions: u64, branches: u64) {
        use mempersp_pebs::EventKind;
        let pmu = &mut self.pmus[core];
        pmu.add(EventKind::Instructions, instructions);
        pmu.add(EventKind::Branches, branches);
        pmu.add(EventKind::Cycles, instructions);
        self.clocks[core] += instructions;
    }

    fn set_overlap(&mut self, _core: usize, _overlap: f64) {}

    fn barrier(&mut self) {
        let max = *self.clocks.iter().max().expect("at least one core");
        for (c, pmu) in self.clocks.iter_mut().zip(&mut self.pmus) {
            pmu.add(mempersp_pebs::EventKind::Cycles, max - *c);
            *c = max;
        }
    }

    fn now(&mut self, core: usize) -> u64 {
        self.clocks[core]
    }
}
