//! A Paraver-inspired, line-oriented trace file format.
//!
//! Real Extrae emits `.prv` files consumed by Paraver and the Folding
//! tool. This module provides an equivalent self-describing text
//! format with a writer ([`write_trace`]) and a strict parser
//! ([`parse_trace`]); `parse(write(t)) == t` up to interning details
//! (verified by tests).
//!
//! Layout (one record per line, space separated, `"`-quoted strings):
//!
//! ```text
//! #MEMPERSP-PRV 1
//! META <freq_mhz> <cores> <aslr_slide> "<description>"
//! RES <resolved> <unresolved>
//! REGION <id> "<name>"
//! SYM <ip> "<file>" <line> "<function>"
//! OBJ <id> <STATIC|DYNAMIC|GROUP> "<name>" <base> <size> <allocated>
//! E <cycles> <core> ENTER <region> <c0,...,c8>
//! E <cycles> <core> EXIT <region> <c0,...,c8>
//! E <cycles> <core> SAMP <ip> <c0,...,c8> <r0;r1;...|->
//! E <cycles> <core> PEBS <ip> <addr> <size> <L|S> <latency> <src> <tlb> <obj|->
//! E <cycles> <core> ALLOC <base> <size> <ip>
//! E <cycles> <core> FREE <base>
//! E <cycles> <core> MUX <index> "<label>"
//! E <cycles> <core> USER <kind> <value>
//! ```

use crate::events::{EventPayload, RegionId, TraceEvent};
use crate::objects::{ObjectDesc, ObjectId, ObjectKind, ObjectRegistry};
use crate::source::{CodeLocation, Ip, SourceMap};
use crate::tracer::{ResolutionStats, Trace, TraceMeta};
use mempersp_pebs::{CounterSnapshot, EventKind, PebsSample};
use mempersp_memsim::MemLevel;
use std::fmt::Write as _;

/// Errors produced by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn counters_field(c: &CounterSnapshot) -> String {
    c.values().iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
}

/// Serialize a trace to the text format.
pub fn write_trace(t: &Trace) -> String {
    let mut out = header_sections(t);
    for e in &t.events {
        out.push_str(&event_record(e));
    }
    out
}

/// The header sections (everything up to the first `E` record):
/// format magic, META, RES, REGION, SYM and OBJ declarations.
pub fn header_sections(t: &Trace) -> String {
    let mut out = String::new();
    out.push_str("#MEMPERSP-PRV 1\n");
    let _ = writeln!(
        out,
        "META {} {} {} {}",
        t.meta.freq_mhz,
        t.meta.num_cores,
        t.meta.aslr_slide,
        quote(&t.meta.description)
    );
    let _ = writeln!(out, "RES {} {}", t.resolution.resolved, t.resolution.unresolved);
    for (i, name) in t.region_names.iter().enumerate() {
        let _ = writeln!(out, "REGION {} {}", i, quote(name));
    }
    for (ip, loc) in t.source.iter() {
        let _ = writeln!(out, "SYM {} {} {} {}", ip.0, quote(&loc.file), loc.line, quote(&loc.function));
    }
    for o in t.objects.all() {
        let kind = match o.kind {
            ObjectKind::Static => "STATIC",
            ObjectKind::Dynamic => "DYNAMIC",
            ObjectKind::Group => "GROUP",
        };
        let _ = writeln!(
            out,
            "OBJ {} {} {} {} {} {}",
            o.id.0,
            kind,
            quote(&o.name),
            o.base,
            o.size,
            o.allocated_bytes
        );
    }
    out
}

/// Serialize one event as its `E ...` record line (newline included).
pub fn event_record(e: &TraceEvent) -> String {
    let mut out = String::new();
    {
        let _ = write!(out, "E {} {} ", e.cycles, e.core);
        match &e.payload {
            EventPayload::RegionEnter { region, counters } => {
                let _ = writeln!(out, "ENTER {} {}", region.0, counters_field(counters));
            }
            EventPayload::RegionExit { region, counters } => {
                let _ = writeln!(out, "EXIT {} {}", region.0, counters_field(counters));
            }
            EventPayload::CounterSample { ip, counters, stack } => {
                let stack_field = if stack.is_empty() {
                    "-".to_string()
                } else {
                    stack.iter().map(|r| r.0.to_string()).collect::<Vec<_>>().join(";")
                };
                let _ = writeln!(out, "SAMP {} {} {}", ip.0, counters_field(counters), stack_field);
            }
            EventPayload::Pebs { sample, object } => {
                let _ = writeln!(
                    out,
                    "PEBS {} {} {} {} {} {} {} {}",
                    sample.ip,
                    sample.addr,
                    sample.size,
                    if sample.is_store { "S" } else { "L" },
                    sample.latency,
                    sample.source.label(),
                    u8::from(sample.tlb_miss),
                    object.map(|o| o.0.to_string()).unwrap_or_else(|| "-".into()),
                );
            }
            EventPayload::Alloc { base, size, callsite } => {
                let _ = writeln!(out, "ALLOC {} {} {}", base, size, callsite.0);
            }
            EventPayload::Free { base } => {
                let _ = writeln!(out, "FREE {base}");
            }
            EventPayload::MuxSwitch { event_index, label } => {
                let _ = writeln!(out, "MUX {} {}", event_index, quote(label));
            }
            EventPayload::User { kind, value } => {
                let _ = writeln!(out, "USER {kind} {value}");
            }
        }
    }
    out
}

/// Write a trace to a file in the text format.
pub fn save_trace(path: &std::path::Path, trace: &Trace) -> std::io::Result<()> {
    std::fs::write(path, write_trace(trace))
}

/// Load a trace from a file written by [`save_trace`].
pub fn load_trace(path: &std::path::Path) -> std::io::Result<Trace> {
    let text = std::fs::read_to_string(path)?;
    parse_trace(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Tokenizer handling quoted strings.
fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('\\') => match chars.next() {
                        Some(e) => s.push(e),
                        None => return Err("dangling escape".into()),
                    },
                    Some('"') => break,
                    Some(ch) => s.push(ch),
                    None => return Err("unterminated string".into()),
                }
            }
            toks.push(s);
        } else {
            let mut s = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() {
                    break;
                }
                s.push(ch);
                chars.next();
            }
            toks.push(s);
        }
    }
    Ok(toks)
}

fn parse_counters(field: &str) -> Result<CounterSnapshot, String> {
    let parts: Vec<&str> = field.split(',').collect();
    if parts.len() != EventKind::ALL.len() {
        return Err(format!("expected {} counters, got {}", EventKind::ALL.len(), parts.len()));
    }
    let mut vals = [0u64; EventKind::ALL.len()];
    for (i, p) in parts.iter().enumerate() {
        vals[i] = p.parse().map_err(|_| format!("bad counter value {p:?}"))?;
    }
    Ok(CounterSnapshot::from_values(vals))
}

fn parse_level(s: &str) -> Result<MemLevel, String> {
    match s {
        "L1" => Ok(MemLevel::L1),
        "L2" => Ok(MemLevel::L2),
        "L3" => Ok(MemLevel::L3),
        "DRAM" => Ok(MemLevel::Dram),
        _ => Err(format!("unknown memory level {s:?}")),
    }
}

/// Parse the text format back into a [`Trace`].
pub fn parse_trace(text: &str) -> Result<Trace, ParseError> {
    let err = |line: usize, message: String| ParseError { line, message };
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| err(0, "empty trace".into()))?;
    if header.trim() != "#MEMPERSP-PRV 1" {
        return Err(err(1, format!("bad header {header:?}")));
    }

    let mut meta: Option<TraceMeta> = None;
    let mut resolution = ResolutionStats::default();
    let mut region_names: Vec<String> = Vec::new();
    let mut source = SourceMap::new();
    let mut objects = ObjectRegistry::new();
    let mut raw_objects: Vec<ObjectDesc> = Vec::new();
    let mut events: Vec<TraceEvent> = Vec::new();

    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks = tokenize(line).map_err(|m| err(lineno, m))?;
        let p = |i: usize| -> Result<&str, ParseError> {
            toks.get(i)
                .map(|s| s.as_str())
                .ok_or_else(|| err(lineno, format!("missing field {i}")))
        };
        let pu = |i: usize| -> Result<u64, ParseError> {
            p(i)?.parse::<u64>().map_err(|_| err(lineno, format!("bad number in field {i}")))
        };
        match p(0)? {
            "META" => {
                meta = Some(TraceMeta {
                    freq_mhz: pu(1)? as u32,
                    num_cores: pu(2)? as usize,
                    aslr_slide: pu(3)?,
                    description: p(4)?.to_string(),
                });
            }
            "RES" => {
                resolution = ResolutionStats { resolved: pu(1)?, unresolved: pu(2)? };
            }
            "REGION" => {
                let id = pu(1)? as usize;
                if id != region_names.len() {
                    return Err(err(lineno, "regions must be declared in id order".into()));
                }
                region_names.push(p(2)?.to_string());
            }
            "SYM" => {
                let ip = pu(1)?;
                let got = source.intern(CodeLocation::new(
                    p(2)?,
                    pu(3)? as u32,
                    p(4)?,
                ));
                if got.0 != ip {
                    return Err(err(lineno, format!("SYM ip mismatch: declared {ip}, interned {}", got.0)));
                }
            }
            "OBJ" => {
                let id = pu(1)? as u32;
                if id as usize != raw_objects.len() {
                    return Err(err(lineno, "objects must be declared in id order".into()));
                }
                let kind = match p(2)? {
                    "STATIC" => ObjectKind::Static,
                    "DYNAMIC" => ObjectKind::Dynamic,
                    "GROUP" => ObjectKind::Group,
                    other => return Err(err(lineno, format!("unknown object kind {other:?}"))),
                };
                raw_objects.push(ObjectDesc {
                    id: ObjectId(id),
                    name: p(3)?.to_string(),
                    kind,
                    base: pu(4)?,
                    size: pu(5)?,
                    allocated_bytes: pu(6)?,
                });
            }
            "E" => {
                let cycles = pu(1)?;
                let core = pu(2)? as usize;
                let payload = match p(3)? {
                    "ENTER" => EventPayload::RegionEnter {
                        region: RegionId(pu(4)? as u32),
                        counters: parse_counters(p(5)?).map_err(|m| err(lineno, m))?,
                    },
                    "EXIT" => EventPayload::RegionExit {
                        region: RegionId(pu(4)? as u32),
                        counters: parse_counters(p(5)?).map_err(|m| err(lineno, m))?,
                    },
                    "SAMP" => {
                        let stack = match p(6)? {
                            "-" => Vec::new(),
                            s => s
                                .split(';')
                                .map(|part| {
                                    part.parse::<u32>()
                                        .map(RegionId)
                                        .map_err(|_| err(lineno, format!("bad stack entry {part:?}")))
                                })
                                .collect::<Result<Vec<_>, _>>()?,
                        };
                        EventPayload::CounterSample {
                            ip: Ip(pu(4)?),
                            counters: parse_counters(p(5)?).map_err(|m| err(lineno, m))?,
                            stack,
                        }
                    }
                    "PEBS" => {
                        let object = match p(11)? {
                            "-" => None,
                            s => Some(ObjectId(
                                s.parse().map_err(|_| err(lineno, "bad object id".into()))?,
                            )),
                        };
                        EventPayload::Pebs {
                            sample: PebsSample {
                                timestamp: cycles,
                                core,
                                ip: pu(4)?,
                                addr: pu(5)?,
                                size: pu(6)? as u32,
                                is_store: match p(7)? {
                                    "S" => true,
                                    "L" => false,
                                    o => return Err(err(lineno, format!("bad kind {o:?}"))),
                                },
                                latency: pu(8)? as u32,
                                source: parse_level(p(9)?).map_err(|m| err(lineno, m))?,
                                tlb_miss: pu(10)? != 0,
                            },
                            object,
                        }
                    }
                    "ALLOC" => EventPayload::Alloc {
                        base: pu(4)?,
                        size: pu(5)?,
                        callsite: Ip(pu(6)?),
                    },
                    "FREE" => EventPayload::Free { base: pu(4)? },
                    "MUX" => EventPayload::MuxSwitch {
                        event_index: pu(4)? as usize,
                        label: p(5)?.to_string(),
                    },
                    "USER" => EventPayload::User { kind: pu(4)? as u32, value: pu(5)? },
                    other => return Err(err(lineno, format!("unknown event {other:?}"))),
                };
                events.push(TraceEvent { cycles, core, payload });
            }
            other => return Err(err(lineno, format!("unknown record {other:?}"))),
        }
    }

    // Rebuild the registry from raw descriptors, preserving ids. Freed
    // dynamics cannot be distinguished from live ones in the file;
    // re-registering everything is the documented round-trip caveat.
    for o in raw_objects {
        match o.kind {
            ObjectKind::Static => objects.register_static(&o.name, o.base, o.size),
            ObjectKind::Dynamic => objects.register_dynamic(&o.name, o.base, o.size),
            ObjectKind::Group => objects.register_group(&o.name, o.base, o.size, o.allocated_bytes),
        };
    }

    Ok(Trace {
        meta: meta.ok_or_else(|| err(0, "missing META record".into()))?,
        events,
        source,
        objects,
        region_names,
        resolution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Tracer, TracerConfig};

    fn sample_trace() -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 2);
        let ip = t.location("ComputeSPMV_ref.cpp", 72, "ComputeSPMV_ref");
        let c = CounterSnapshot::from_values([100, 200, 10, 5, 2, 1, 40, 20, 0, 30, 15, 8]);
        t.enter(0, "ComputeSPMV_ref", c, 0);
        t.record_counter_sample(0, ip, c, 10);
        let big = t.malloc(1 << 20, &CodeLocation::new("GenerateProblem_ref.cpp", 110, "gen"), 12);
        t.begin_alloc_group("g1");
        t.malloc(100, &CodeLocation::new("GenerateProblem_ref.cpp", 143, "gen"), 14);
        t.end_alloc_group();
        t.register_static("ghost", 0x100, 0x40);
        t.record_pebs(PebsSample {
            timestamp: 20,
            core: 1,
            ip: ip.0,
            addr: big + 64,
            size: 8,
            is_store: false,
            latency: 36,
            source: MemLevel::L3,
            tlb_miss: true,
        });
        t.record_pebs(PebsSample {
            timestamp: 25,
            core: 0,
            ip: ip.0,
            addr: 0x7777_7777,
            size: 4,
            is_store: true,
            latency: 4,
            source: MemLevel::L1,
            tlb_miss: false,
        });
        t.record_mux_switch(0, 1, "stores", 30);
        t.user_event(1, 9, 42, 35);
        t.free(big, 38);
        t.exit(0, "ComputeSPMV_ref", c, 40);
        t.finish("round trip \"test\" with quotes")
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_trace();
        let text = write_trace(&t);
        let back = parse_trace(&text).expect("parse");
        assert_eq!(back.meta, t.meta);
        assert_eq!(back.region_names, t.region_names);
        assert_eq!(back.events, t.events);
        assert_eq!(back.resolution, t.resolution);
        assert_eq!(back.objects.all().len(), t.objects.all().len());
        for (a, b) in back.objects.all().iter().zip(t.objects.all()) {
            assert_eq!(a, b);
        }
        assert_eq!(back.source.len(), t.source.len());
    }

    #[test]
    fn round_trip_is_stable() {
        let t = sample_trace();
        let once = write_trace(&t);
        let twice = write_trace(&parse_trace(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_trace("#WRONG 1\n").is_err());
        assert!(parse_trace("").is_err());
    }

    #[test]
    fn rejects_malformed_event() {
        let text = "#MEMPERSP-PRV 1\nMETA 2500 1 0 \"x\"\nE 10 0 ENTER notanumber 0,0,0,0,0,0,0,0,0\n";
        let e = parse_trace(text).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_wrong_counter_arity() {
        let text = "#MEMPERSP-PRV 1\nMETA 2500 1 0 \"x\"\nE 10 0 ENTER 0 1,2,3\n";
        let e = parse_trace(text).unwrap_err();
        assert!(e.message.contains("counters"));
    }

    #[test]
    fn missing_meta_is_an_error() {
        let e = parse_trace("#MEMPERSP-PRV 1\n").unwrap_err();
        assert!(e.message.contains("META"));
    }

    #[test]
    fn quoted_strings_with_escapes() {
        let toks = tokenize(r#"MUX 1 "a \"b\" c\\d""#).unwrap();
        assert_eq!(toks, vec!["MUX", "1", r#"a "b" c\d"#]);
        assert!(tokenize(r#""unterminated"#).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = sample_trace();
        let mut text = write_trace(&t);
        text.push_str("\n# trailing comment\n\n");
        assert!(parse_trace(&text).is_ok());
    }
}
