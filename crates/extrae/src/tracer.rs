//! The tracer façade: what an instrumented application links against.
//!
//! The [`Tracer`] collects instrumentation events, counter samples and
//! PEBS samples; interposes on dynamic allocation; and finally yields
//! a self-contained [`Trace`].
//!
//! Timestamps are supplied by the caller (the simulated machine's
//! cycle clock), keeping this crate clock-agnostic.

use crate::events::{EventPayload, RegionId, TraceEvent};
use crate::objects::{ObjectId, ObjectRegistry};
use crate::sim_alloc::SimAllocator;
use crate::source::{CodeLocation, Ip, SourceMap};
use mempersp_pebs::{CounterSnapshot, PebsSample};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tracer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracerConfig {
    /// Dynamic allocations smaller than this many bytes are *not*
    /// registered as data objects (real Extrae applies such a threshold
    /// to bound trace size; HPCG's per-row allocations fall below it,
    /// which is the paper's Section III observation).
    pub alloc_threshold: u64,
    /// Seed for the simulated ASLR slide.
    pub aslr_seed: u64,
    /// Nominal core frequency, for cycle → ns conversion.
    pub freq_mhz: u32,
}

impl Default for TracerConfig {
    fn default() -> Self {
        Self { alloc_threshold: 1024, aslr_seed: 0x5EED, freq_mhz: 2500 }
    }
}

/// Counters of address→object resolution, the paper's "preliminary
/// analysis" metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolutionStats {
    pub resolved: u64,
    pub unresolved: u64,
}

impl ResolutionStats {
    /// Fraction of PEBS samples that hit a known object (0 when no
    /// samples were taken).
    pub fn resolved_fraction(&self) -> f64 {
        let total = self.resolved + self.unresolved;
        if total == 0 {
            0.0
        } else {
            self.resolved as f64 / total as f64
        }
    }
}

/// Run-level metadata embedded in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    pub freq_mhz: u32,
    pub num_cores: usize,
    pub aslr_slide: u64,
    /// Free-form description (application, problem size, ...).
    pub description: String,
}

/// A completed monitoring run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    pub meta: TraceMeta,
    pub events: Vec<TraceEvent>,
    pub source: SourceMap,
    pub objects: ObjectRegistry,
    /// Region names indexed by `RegionId`.
    pub region_names: Vec<String>,
    pub resolution: ResolutionStats,
}

impl Trace {
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// The id of a region by name.
    pub fn region_id(&self, name: &str) -> Option<RegionId> {
        self.region_names
            .iter()
            .position(|n| n == name)
            .map(|i| RegionId(i as u32))
    }

    /// Name of a region id.
    pub fn region_name(&self, id: RegionId) -> &str {
        &self.region_names[id.0 as usize]
    }

    /// Convert a cycle timestamp to nanoseconds at the nominal
    /// frequency.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * 1000.0 / self.meta.freq_mhz as f64
    }

    /// All `(start_cycles, end_cycles)` instances of a region on a
    /// given core, from matching enter/exit pairs (nested instances of
    /// *other* regions are ignored; recursive instances of the same
    /// region are matched innermost-first and only top-level pairs are
    /// returned).
    pub fn region_instances(&self, region: RegionId, core: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut depth = 0u32;
        let mut start = 0u64;
        for e in &self.events {
            if e.core != core {
                continue;
            }
            match &e.payload {
                EventPayload::RegionEnter { region: r, .. } if *r == region => {
                    if depth == 0 {
                        start = e.cycles;
                    }
                    depth += 1;
                }
                EventPayload::RegionExit { region: r, .. } if *r == region
                    && depth > 0 => {
                        depth -= 1;
                        if depth == 0 {
                            out.push((start, e.cycles));
                        }
                    }
                _ => {}
            }
        }
        out
    }

    /// Iterate PEBS events with their resolved object ids.
    pub fn pebs_events(&self) -> impl Iterator<Item = (&TraceEvent, &PebsSample, Option<ObjectId>)> {
        self.events.iter().filter_map(|e| match &e.payload {
            EventPayload::Pebs { sample, object } => Some((e, sample, *object)),
            _ => None,
        })
    }
}

/// Capture state for a manual allocation group.
#[derive(Debug, Clone)]
struct GroupCapture {
    name: String,
    lo: u64,
    hi: u64,
    allocated: u64,
    members: u64,
}

/// The monitoring runtime.
#[derive(Debug)]
pub struct Tracer {
    cfg: TracerConfig,
    num_cores: usize,
    events: Vec<TraceEvent>,
    source: SourceMap,
    objects: ObjectRegistry,
    alloc: SimAllocator,
    region_names: Vec<String>,
    region_index: HashMap<String, RegionId>,
    /// Per-core stack of open regions.
    region_stacks: Vec<Vec<RegionId>>,
    group: Option<GroupCapture>,
    resolution: ResolutionStats,
    /// Call-site of each live tracked allocation (for realloc naming).
    alloc_sites: HashMap<u64, Ip>,
}

impl Tracer {
    pub fn new(cfg: TracerConfig, num_cores: usize) -> Self {
        assert!(num_cores >= 1);
        Self {
            alloc: SimAllocator::new(cfg.aslr_seed),
            cfg,
            num_cores,
            events: Vec::new(),
            source: SourceMap::new(),
            objects: ObjectRegistry::new(),
            region_names: Vec::new(),
            region_index: HashMap::new(),
            region_stacks: vec![Vec::new(); num_cores],
            group: None,
            resolution: ResolutionStats::default(),
            alloc_sites: HashMap::new(),
        }
    }

    /// The tracer's configuration.
    pub fn config(&self) -> &TracerConfig {
        &self.cfg
    }

    /// Register (or look up) an instrumented statement.
    pub fn location(&mut self, file: &str, line: u32, function: &str) -> Ip {
        self.source.intern(CodeLocation::new(file, line, function))
    }

    /// Intern a region name.
    pub fn region(&mut self, name: &str) -> RegionId {
        if let Some(&id) = self.region_index.get(name) {
            return id;
        }
        let id = RegionId(self.region_names.len() as u32);
        self.region_names.push(name.to_string());
        self.region_index.insert(name.to_string(), id);
        id
    }

    /// Enter an instrumented region on `core` at cycle `now`.
    pub fn enter(&mut self, core: usize, name: &str, counters: CounterSnapshot, now: u64) -> RegionId {
        let id = self.region(name);
        self.region_stacks[core].push(id);
        self.events.push(TraceEvent {
            cycles: now,
            core,
            payload: EventPayload::RegionEnter { region: id, counters },
        });
        id
    }

    /// Exit the innermost open region on `core`. Panics if the named
    /// region is not the innermost (unbalanced instrumentation is a
    /// bug in the workload).
    pub fn exit(&mut self, core: usize, name: &str, counters: CounterSnapshot, now: u64) {
        let id = *self
            .region_index
            .get(name)
            .unwrap_or_else(|| panic!("exit of unknown region {name:?}"));
        let top = self.region_stacks[core]
            .pop()
            .unwrap_or_else(|| panic!("exit of {name:?} with empty region stack"));
        assert_eq!(
            top, id,
            "unbalanced instrumentation: exiting {name:?} but innermost is {:?}",
            self.region_names[top.0 as usize]
        );
        self.events.push(TraceEvent {
            cycles: now,
            core,
            payload: EventPayload::RegionExit { region: id, counters },
        });
    }

    /// Timer-driven sample of the program counter + counters. The
    /// current region stack of `core` is captured with the sample, as
    /// real Extrae captures the call stack.
    pub fn record_counter_sample(&mut self, core: usize, ip: Ip, counters: CounterSnapshot, now: u64) {
        let stack = self.region_stacks[core].clone();
        self.events.push(TraceEvent {
            cycles: now,
            core,
            payload: EventPayload::CounterSample { ip, counters, stack },
        });
    }

    /// Forward a PEBS sample; the address is resolved against the
    /// object registry *at capture time* (objects may be freed later).
    pub fn record_pebs(&mut self, sample: PebsSample) {
        let object = self.objects.resolve_id(sample.addr).map(|(id, _)| id);
        if object.is_some() {
            self.resolution.resolved += 1;
        } else {
            self.resolution.unresolved += 1;
        }
        self.events.push(TraceEvent {
            cycles: sample.timestamp,
            core: sample.core,
            payload: EventPayload::Pebs { sample, object },
        });
    }

    /// Record a multiplexer rotation.
    pub fn record_mux_switch(&mut self, core: usize, event_index: usize, label: &str, now: u64) {
        self.events.push(TraceEvent {
            cycles: now,
            core,
            payload: EventPayload::MuxSwitch { event_index, label: label.to_string() },
        });
    }

    /// Free-form user event.
    pub fn user_event(&mut self, core: usize, kind: u32, value: u64, now: u64) {
        self.events.push(TraceEvent { cycles: now, core, payload: EventPayload::User { kind, value } });
    }

    // ----- allocation interposition ---------------------------------

    /// Interposed `malloc`: returns the simulated address. Allocations
    /// at or above the threshold become data objects named by their
    /// call-site; all allocations extend an open group capture.
    pub fn malloc(&mut self, size: u64, callsite: &CodeLocation, now: u64) -> u64 {
        let ip = self.source.intern(callsite.clone());
        let base = self.alloc.malloc(size);
        if let Some(g) = &mut self.group {
            g.lo = g.lo.min(base);
            g.hi = g.hi.max(base + size);
            g.allocated += size;
            g.members += 1;
        }
        if size >= self.cfg.alloc_threshold {
            self.objects.register_dynamic(&callsite.file_line(), base, size);
            self.alloc_sites.insert(base, ip);
            self.events.push(TraceEvent {
                cycles: now,
                core: 0,
                payload: EventPayload::Alloc { base, size, callsite: ip },
            });
        }
        base
    }

    /// Interposed `free`. Unknown bases are ignored (like glibc's
    /// tolerance is *not*, but the tracer must not crash the app).
    pub fn free(&mut self, base: u64, now: u64) {
        if self.alloc.free(base).is_some()
            && self.objects.remove_dynamic(base).is_some() {
                self.alloc_sites.remove(&base);
                self.events.push(TraceEvent { cycles: now, core: 0, payload: EventPayload::Free { base } });
            }
    }

    /// Interposed `realloc`: move + rename, keeping the original
    /// call-site identity as real Extrae does.
    pub fn realloc(&mut self, base: u64, new_size: u64, callsite: &CodeLocation, now: u64) -> Option<u64> {
        self.alloc.containing(base)?;
        self.free(base, now);
        Some(self.malloc(new_size, callsite, now))
    }

    /// Begin capturing allocations into a named group (the paper's
    /// manual wrapping of HPCG's tiny per-row allocations). Nested
    /// groups are not supported.
    pub fn begin_alloc_group(&mut self, name: &str) {
        assert!(self.group.is_none(), "allocation groups cannot nest");
        self.group = Some(GroupCapture {
            name: name.to_string(),
            lo: u64::MAX,
            hi: 0,
            allocated: 0,
            members: 0,
        });
    }

    /// Close the open group, registering the wrapped address range as
    /// one object. Returns the object id (None if nothing was
    /// allocated inside the group).
    pub fn end_alloc_group(&mut self) -> Option<ObjectId> {
        let g = self.group.take().expect("no open allocation group");
        if g.members == 0 {
            return None;
        }
        Some(self.objects.register_group(&g.name, g.lo, g.hi - g.lo, g.allocated))
    }

    /// Register a static data object (symbol-table scan).
    pub fn register_static(&mut self, name: &str, base: u64, size: u64) -> ObjectId {
        self.objects.register_static(name, base, size)
    }

    /// The ASLR slide of this run's address space.
    pub fn aslr_slide(&self) -> u64 {
        self.alloc.slide()
    }

    /// Direct read-only access to the object registry.
    pub fn objects(&self) -> &ObjectRegistry {
        &self.objects
    }

    /// Direct read-only access to the source map.
    pub fn source(&self) -> &SourceMap {
        &self.source
    }

    /// Events recorded so far.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Current resolution statistics.
    pub fn resolution(&self) -> ResolutionStats {
        self.resolution
    }

    /// Streaming support: hand over every buffered event whose
    /// timestamp is `<= watermark`, in exactly the global order
    /// [`Tracer::finish`] would have produced, appending them to
    /// `out`. Later-timestamped events stay buffered.
    ///
    /// The caller promises that every event it will record *after*
    /// this call carries a timestamp `>= watermark` (for the machine,
    /// the watermark is the minimum of all per-core clocks at an epoch
    /// boundary — core clocks only move forward). Under that contract,
    /// concatenating successive drains with the events left for
    /// `finish` reproduces the finish-time sort byte for byte: the
    /// sort is stable, drained events were recorded before any future
    /// ones, and ties on the watermark itself therefore keep their
    /// recording order.
    pub fn drain_ready(&mut self, watermark: u64, out: &mut Vec<TraceEvent>) {
        if self.events.is_empty() {
            return;
        }
        // Same stable sort as `finish`; repeating it over the residue
        // plus newly recorded events composes with previous drains
        // (equal timestamps stay in recording order throughout).
        self.events.sort_by_key(|e| e.cycles);
        let ready = self.events.partition_point(|e| e.cycles <= watermark);
        out.extend(self.events.drain(..ready));
    }

    /// Finish the run and produce the trace. Panics if any region is
    /// still open (unbalanced instrumentation).
    pub fn finish(self, description: &str) -> Trace {
        for (core, stack) in self.region_stacks.iter().enumerate() {
            assert!(
                stack.is_empty(),
                "core {core} finished with {} open region(s): {:?}",
                stack.len(),
                stack.iter().map(|r| &self.region_names[r.0 as usize]).collect::<Vec<_>>()
            );
        }
        let mut events = self.events;
        // Events from different cores interleave; keep a stable global
        // time order for consumers.
        events.sort_by_key(|e| e.cycles);
        Trace {
            meta: TraceMeta {
                freq_mhz: self.cfg.freq_mhz,
                num_cores: self.num_cores,
                aslr_slide: self.alloc.slide(),
                description: description.to_string(),
            },
            events,
            source: self.source,
            objects: self.objects,
            region_names: self.region_names,
            resolution: self.resolution,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_memsim::MemLevel;

    fn loc(line: u32) -> CodeLocation {
        CodeLocation::new("GenerateProblem_ref.cpp", line, "GenerateProblem")
    }

    fn sample(addr: u64, ts: u64) -> PebsSample {
        PebsSample {
            timestamp: ts,
            core: 0,
            ip: 0x400000,
            addr,
            size: 8,
            is_store: false,
            latency: 10,
            source: MemLevel::L2,
            tlb_miss: false,
        }
    }

    #[test]
    fn region_lifecycle_and_instances() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let c = CounterSnapshot::default();
        for i in 0..3u64 {
            t.enter(0, "ComputeSYMGS_ref", c, i * 100);
            t.exit(0, "ComputeSYMGS_ref", c, i * 100 + 50);
        }
        let tr = t.finish("test");
        let id = tr.region_id("ComputeSYMGS_ref").unwrap();
        assert_eq!(tr.region_instances(id, 0), vec![(0, 50), (100, 150), (200, 250)]);
        assert_eq!(tr.region_name(id), "ComputeSYMGS_ref");
    }

    #[test]
    fn nested_and_recursive_regions() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let c = CounterSnapshot::default();
        t.enter(0, "MG", c, 0);
        t.enter(0, "SYMGS", c, 10);
        t.exit(0, "SYMGS", c, 20);
        t.enter(0, "MG", c, 30); // recursion
        t.exit(0, "MG", c, 40);
        t.exit(0, "MG", c, 50);
        let tr = t.finish("test");
        let mg = tr.region_id("MG").unwrap();
        assert_eq!(tr.region_instances(mg, 0), vec![(0, 50)], "only top-level pair");
        let sy = tr.region_id("SYMGS").unwrap();
        assert_eq!(tr.region_instances(sy, 0), vec![(10, 20)]);
    }

    #[test]
    #[should_panic(expected = "unbalanced instrumentation")]
    fn unbalanced_exit_panics() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let c = CounterSnapshot::default();
        t.enter(0, "A", c, 0);
        t.enter(0, "B", c, 1);
        t.exit(0, "A", c, 2);
    }

    #[test]
    #[should_panic(expected = "open region")]
    fn finish_with_open_region_panics() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        t.enter(0, "A", CounterSnapshot::default(), 0);
        let _ = t.finish("bad");
    }

    #[test]
    fn small_allocations_below_threshold_are_unresolved() {
        let mut t = Tracer::new(TracerConfig { alloc_threshold: 1024, ..Default::default() }, 1);
        // HPCG-style tiny allocation (216 B < 1 KiB threshold).
        let p = t.malloc(216, &loc(110), 0);
        t.record_pebs(sample(p + 8, 10));
        assert_eq!(t.resolution().resolved, 0);
        assert_eq!(t.resolution().unresolved, 1);
    }

    #[test]
    fn large_allocations_resolve_by_callsite() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let p = t.malloc(1 << 20, &loc(143), 0);
        t.record_pebs(sample(p + 4096, 10));
        assert_eq!(t.resolution().resolved, 1);
        let tr = t.finish("test");
        let (_, _, obj) = tr.pebs_events().next().unwrap();
        let o = tr.objects.get(obj.unwrap()).unwrap();
        assert_eq!(o.name, "GenerateProblem_ref.cpp:143");
    }

    #[test]
    fn grouping_rescues_tiny_allocations() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        t.begin_alloc_group("124_GenerateProblem_ref.cpp");
        let mut first = u64::MAX;
        let mut last = 0;
        for _ in 0..100 {
            let p = t.malloc(216, &loc(110), 0);
            first = first.min(p);
            last = last.max(p + 216);
        }
        let gid = t.end_alloc_group().unwrap();
        let desc = t.objects().get(gid).unwrap().clone();
        assert_eq!(desc.base, first);
        assert_eq!(desc.end(), last);
        assert_eq!(desc.allocated_bytes, 21_600);
        // A sample inside any member now resolves to the group.
        t.record_pebs(sample(first + 1000, 5));
        assert_eq!(t.resolution().resolved, 1);
    }

    #[test]
    fn empty_group_yields_none() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        t.begin_alloc_group("empty");
        assert!(t.end_alloc_group().is_none());
    }

    #[test]
    fn free_unregisters_object() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let p = t.malloc(4096, &loc(1), 0);
        t.free(p, 1);
        t.record_pebs(sample(p, 2));
        assert_eq!(t.resolution().unresolved, 1);
        // Double free is a no-op.
        t.free(p, 3);
    }

    #[test]
    fn realloc_keeps_callsite_name() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let p = t.malloc(4096, &loc(7), 0);
        let q = t.realloc(p, 8192, &loc(7), 1).unwrap();
        assert_ne!(p, q);
        t.record_pebs(sample(q + 100, 2));
        assert_eq!(t.resolution().resolved, 1);
        assert!(t.realloc(0xbad, 10, &loc(7), 2).is_none());
    }

    #[test]
    fn finish_sorts_events_globally() {
        let mut t = Tracer::new(TracerConfig::default(), 2);
        let c = CounterSnapshot::default();
        t.enter(1, "B", c, 50);
        t.enter(0, "A", c, 10);
        t.exit(0, "A", c, 60);
        t.exit(1, "B", c, 55);
        let tr = t.finish("test");
        let times: Vec<u64> = tr.events.iter().map(|e| e.cycles).collect();
        assert_eq!(times, vec![10, 50, 55, 60]);
    }

    #[test]
    fn cycles_to_ns_uses_nominal_frequency() {
        let t = Tracer::new(TracerConfig { freq_mhz: 2500, ..Default::default() }, 1);
        let tr = t.finish("test");
        assert!((tr.cycles_to_ns(2500) - 1000.0).abs() < 1e-9, "2500 cycles @2.5GHz = 1 µs");
    }

    #[test]
    fn drain_ready_reproduces_finish_order() {
        // Two tracers fed identically; one is drained incrementally at
        // watermarks, the other finishes in one go. The concatenation
        // of the drains plus the finish residue must match the
        // one-shot finish order exactly, including ties.
        let feed = |t: &mut Tracer| {
            let c = CounterSnapshot::default();
            t.enter(1, "B", c, 50);
            t.enter(0, "A", c, 10);
            t.user_event(0, 1, 1, 50); // tie with core 1's enter
            t.exit(0, "A", c, 60);
            t.user_event(1, 2, 2, 55);
            t.exit(1, "B", c, 80);
        };
        let mut whole = Tracer::new(TracerConfig::default(), 2);
        feed(&mut whole);
        let reference = whole.finish("ref").events;

        let mut streamed = Tracer::new(TracerConfig::default(), 2);
        let c = CounterSnapshot::default();
        let mut drained = Vec::new();
        streamed.enter(1, "B", c, 50);
        streamed.enter(0, "A", c, 10);
        streamed.user_event(0, 1, 1, 50);
        // Watermark 50: core 0 is at 50, core 1 at 50; ties on the
        // watermark drain in recording order.
        streamed.drain_ready(50, &mut drained);
        assert_eq!(drained.len(), 3, "10, 50, 50 are all <= watermark");
        streamed.exit(0, "A", c, 60);
        streamed.user_event(1, 2, 2, 55);
        streamed.drain_ready(55, &mut drained);
        streamed.exit(1, "B", c, 80);
        let residue = streamed.finish("streamed").events;
        drained.extend(residue);
        assert_eq!(drained, reference);
    }

    #[test]
    fn drain_ready_leaves_later_events_buffered() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        t.user_event(0, 1, 1, 10);
        t.user_event(0, 1, 2, 100);
        let mut out = Vec::new();
        t.drain_ready(50, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(t.num_events(), 1, "the t=100 event stays buffered");
        t.drain_ready(u64::MAX, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(t.num_events(), 0);
    }

    #[test]
    fn mux_and_user_events_recorded() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        t.record_mux_switch(0, 1, "stores", 100);
        t.user_event(0, 42, 7, 200);
        let tr = t.finish("test");
        assert_eq!(tr.num_events(), 2);
    }
}
