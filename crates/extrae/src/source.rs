//! Synthetic instruction pointers and the source map.
//!
//! Real Extrae resolves sampled instruction addresses to source lines
//! through the binary's DWARF line tables. The simulated workloads
//! instead *register* each instrumented statement once, receiving a
//! synthetic [`Ip`]; the [`SourceMap`] then answers ip → (file, line,
//! function) queries during analysis, playing the role of the line
//! table.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A synthetic instruction pointer.
///
/// Values start at a text-segment-looking base so reports resemble
/// real addresses; consecutive registrations get consecutive slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ip(pub u64);

/// Base of the synthetic text segment.
pub const TEXT_BASE: u64 = 0x0040_0000;
/// Bytes reserved per registered statement.
pub const IP_STRIDE: u64 = 0x10;

/// A source-code coordinate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeLocation {
    pub file: String,
    pub line: u32,
    pub function: String,
}

impl CodeLocation {
    pub fn new(file: &str, line: u32, function: &str) -> Self {
        Self { file: file.to_string(), line, function: function.to_string() }
    }

    /// The `file:line` form used in reports and object names.
    pub fn file_line(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// Bidirectional ip ↔ source-location map.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SourceMap {
    locations: Vec<CodeLocation>,
    #[serde(skip)]
    by_location: HashMap<CodeLocation, Ip>,
}

impl SourceMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a statement, returning its synthetic ip.
    /// Registering the same location twice returns the same ip.
    pub fn intern(&mut self, loc: CodeLocation) -> Ip {
        if let Some(&ip) = self.by_location.get(&loc) {
            return ip;
        }
        let ip = Ip(TEXT_BASE + self.locations.len() as u64 * IP_STRIDE);
        self.by_location.insert(loc.clone(), ip);
        self.locations.push(loc);
        ip
    }

    /// Resolve an ip back to its location.
    pub fn resolve(&self, ip: Ip) -> Option<&CodeLocation> {
        if ip.0 < TEXT_BASE {
            return None;
        }
        let idx = (ip.0 - TEXT_BASE) / IP_STRIDE;
        if !(ip.0 - TEXT_BASE).is_multiple_of(IP_STRIDE) {
            return None;
        }
        self.locations.get(idx as usize)
    }

    /// Number of registered statements.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Iterate over (ip, location) pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (Ip, &CodeLocation)> {
        self.locations
            .iter()
            .enumerate()
            .map(|(i, l)| (Ip(TEXT_BASE + i as u64 * IP_STRIDE), l))
    }

    /// Rebuild the reverse index (needed after deserialization, where
    /// the HashMap is skipped).
    pub fn rebuild_index(&mut self) {
        self.by_location = self
            .locations
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), Ip(TEXT_BASE + i as u64 * IP_STRIDE)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut m = SourceMap::new();
        let a = m.intern(CodeLocation::new("ComputeSPMV_ref.cpp", 72, "ComputeSPMV_ref"));
        let b = m.intern(CodeLocation::new("ComputeSPMV_ref.cpp", 72, "ComputeSPMV_ref"));
        assert_eq!(a, b);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn distinct_lines_get_distinct_ips() {
        let mut m = SourceMap::new();
        let a = m.intern(CodeLocation::new("f.cpp", 1, "f"));
        let b = m.intern(CodeLocation::new("f.cpp", 2, "f"));
        assert_ne!(a, b);
        assert_eq!(b.0 - a.0, IP_STRIDE);
    }

    #[test]
    fn resolve_round_trip() {
        let mut m = SourceMap::new();
        let loc = CodeLocation::new("ComputeSYMGS_ref.cpp", 85, "ComputeSYMGS_ref");
        let ip = m.intern(loc.clone());
        assert_eq!(m.resolve(ip), Some(&loc));
    }

    #[test]
    fn resolve_unknown_ip_is_none() {
        let m = SourceMap::new();
        assert_eq!(m.resolve(Ip(0)), None);
        assert_eq!(m.resolve(Ip(TEXT_BASE)), None);
        assert_eq!(m.resolve(Ip(TEXT_BASE + 3)), None, "misaligned ip");
    }

    #[test]
    fn iter_in_registration_order() {
        let mut m = SourceMap::new();
        m.intern(CodeLocation::new("a.cpp", 1, "a"));
        m.intern(CodeLocation::new("b.cpp", 2, "b"));
        let files: Vec<&str> = m.iter().map(|(_, l)| l.file.as_str()).collect();
        assert_eq!(files, vec!["a.cpp", "b.cpp"]);
    }

    #[test]
    fn rebuild_index_restores_interning() {
        // Simulate the post-deserialization state: `locations` intact
        // but the `#[serde(skip)]` reverse index empty.
        let mut m = SourceMap::new();
        let loc = CodeLocation::new("x.cpp", 3, "x");
        let ip = m.intern(loc.clone());
        let mut m2 = SourceMap {
            locations: m.locations.clone(),
            by_location: HashMap::new(),
        };
        m2.rebuild_index();
        assert_eq!(m2.intern(loc), ip);
        assert_eq!(m2.len(), 1, "re-interning must not duplicate");
    }
}
