//! JSON record schema for trace events, queries and scan stats.
//!
//! This is the wire format shared by `mempersp query --json` and the
//! analysis service's `/v1/query` endpoint: both sides serialize
//! through [`event_to_json`], so a CLI record and a server record for
//! the same event are **byte-identical** — tests and CI diff them
//! directly. Key order is fixed (construction order below) and the
//! writer is deterministic, so equality is textual, not structural.
//!
//! The schema mirrors the text format's `event_record` line: one flat
//! object per event, `cycles`/`core` first, then a `kind` mnemonic
//! (`ENTER`, `EXIT`, `SAMP`, `PEBS`, `ALLOC`, `FREE`, `MUX`, `USER` —
//! the same labels [`EventClass::label`] prints) and the
//! payload-specific fields.

use crate::events::{EventPayload, TraceEvent};
use crate::objects::ObjectId;
use crate::query::{EventClass, KindMask, Query};
use crate::trace_source::ScanStats;
use serde_json::{json, Value};

/// One event as a flat JSON object.
pub fn event_to_json(e: &TraceEvent) -> Value {
    let mut m: Vec<(String, Value)> = vec![
        ("cycles".into(), json!(e.cycles)),
        ("core".into(), json!(e.core)),
        ("kind".into(), json!(EventClass::of(&e.payload).label())),
    ];
    match &e.payload {
        EventPayload::RegionEnter { region, counters }
        | EventPayload::RegionExit { region, counters } => {
            m.push(("region".into(), json!(region.0)));
            m.push(("counters".into(), counters_json(counters)));
        }
        EventPayload::CounterSample { ip, counters, stack } => {
            m.push(("ip".into(), json!(ip.0)));
            m.push(("counters".into(), counters_json(counters)));
            m.push((
                "stack".into(),
                Value::Array(stack.iter().map(|r| json!(r.0)).collect()),
            ));
        }
        EventPayload::Pebs { sample, object } => {
            m.push(("ip".into(), json!(sample.ip)));
            m.push(("addr".into(), json!(sample.addr)));
            m.push(("size".into(), json!(sample.size)));
            m.push(("op".into(), json!(if sample.is_store { "S" } else { "L" })));
            m.push(("latency".into(), json!(sample.latency)));
            m.push(("source".into(), json!(sample.source.label())));
            m.push(("tlb_miss".into(), json!(sample.tlb_miss)));
            m.push(("object".into(), object.map(|o| json!(o.0)).unwrap_or(Value::Null)));
        }
        EventPayload::Alloc { base, size, callsite } => {
            m.push(("base".into(), json!(*base)));
            m.push(("size".into(), json!(*size)));
            m.push(("callsite".into(), json!(callsite.0)));
        }
        EventPayload::Free { base } => {
            m.push(("base".into(), json!(*base)));
        }
        EventPayload::MuxSwitch { event_index, label } => {
            m.push(("event_index".into(), json!(*event_index)));
            m.push(("label".into(), json!(label.as_str())));
        }
        EventPayload::User { kind, value } => {
            m.push(("user_kind".into(), json!(*kind)));
            m.push(("value".into(), json!(*value)));
        }
    }
    Value::Object(m)
}

fn counters_json(c: &mempersp_pebs::CounterSnapshot) -> Value {
    Value::Array(c.values().iter().map(|v| json!(*v)).collect())
}

/// Scan cost accounting as JSON (field order matches [`ScanStats`]).
pub fn scan_stats_to_json(s: &ScanStats) -> Value {
    json!({
        "events_matched": s.events_matched,
        "events_scanned": s.events_scanned,
        "chunks_decoded": s.chunks_decoded,
        "chunks_skipped": s.chunks_skipped,
        "chunks_cached": s.chunks_cached,
        "chunks_damaged": s.chunks_damaged,
        "payload_bytes_decoded": s.payload_bytes_decoded,
    })
}

/// A [`Query`] as JSON, the inverse of [`query_from_json`].
pub fn query_to_json(q: &Query) -> Value {
    let mut m: Vec<(String, Value)> = Vec::new();
    if let Some((lo, hi)) = q.time {
        m.push(("time".into(), json!([lo, hi])));
    }
    if let Some(cores) = &q.cores {
        m.push(("cores".into(), Value::Array(cores.iter().map(|c| json!(*c)).collect())));
    }
    if q.kinds != KindMask::ALL {
        let labels: Vec<Value> = EventClass::ALL
            .iter()
            .filter(|k| q.kinds.contains(**k))
            .map(|k| json!(k.label()))
            .collect();
        m.push(("kinds".into(), Value::Array(labels)));
    }
    if let Some(o) = q.object {
        m.push(("object".into(), json!(o.0)));
    }
    Value::Object(m)
}

/// Parse a query object. Strict: unknown keys, wrong types and
/// malformed kind labels are errors (the service maps them to `400`).
///
/// Accepted keys, all optional — an empty object is a full scan:
///
/// - `"time": [lo, hi]` — inclusive cycle window
/// - `"cores": [0, 2, ...]`
/// - `"kinds": ["PEBS", "ENTER", ...]` — `event_record` mnemonics
/// - `"object": id` — restricts to PEBS events touching the object;
///   implies `kinds = ["PEBS"]` unless `kinds` is given explicitly
///   (same semantics as `Query::touching_object`)
pub fn query_from_json(v: &Value) -> Result<Query, String> {
    let obj = v.as_object().ok_or("query must be a JSON object")?;
    let mut q = Query::all();
    let mut kinds_given = false;
    for (key, val) in obj {
        match key.as_str() {
            "time" => {
                let arr = val.as_array().ok_or("\"time\" must be [lo, hi]")?;
                if arr.len() != 2 {
                    return Err("\"time\" must be [lo, hi]".into());
                }
                let lo = arr[0].as_u64().ok_or("\"time\" bounds must be non-negative integers")?;
                let hi = arr[1].as_u64().ok_or("\"time\" bounds must be non-negative integers")?;
                if lo > hi {
                    return Err(format!("\"time\" window is inverted: [{lo}, {hi}]"));
                }
                q.time = Some((lo, hi));
            }
            "cores" => {
                let arr = val.as_array().ok_or("\"cores\" must be an array of core indices")?;
                let mut cores = Vec::with_capacity(arr.len());
                for c in arr {
                    let c = c.as_u64().ok_or("\"cores\" entries must be non-negative integers")?;
                    cores.push(usize::try_from(c).map_err(|_| "core index out of range")?);
                }
                q.cores = Some(cores);
            }
            "kinds" => {
                let arr = val.as_array().ok_or("\"kinds\" must be an array of kind labels")?;
                let mut kinds = Vec::with_capacity(arr.len());
                for k in arr {
                    let label = k.as_str().ok_or("\"kinds\" entries must be strings")?;
                    let kind = EventClass::parse(label).ok_or_else(|| {
                        format!(
                            "unknown kind \"{label}\" (expected one of {})",
                            EventClass::ALL.map(EventClass::label).join(", ")
                        )
                    })?;
                    kinds.push(kind);
                }
                q.kinds = KindMask::of(&kinds);
                kinds_given = true;
            }
            "object" => {
                let id = val.as_u64().ok_or("\"object\" must be a non-negative integer id")?;
                let id = u32::try_from(id).map_err(|_| "\"object\" id out of range")?;
                q.object = Some(ObjectId(id));
            }
            other => {
                return Err(format!(
                    "unknown query key \"{other}\" (expected time, cores, kinds, object)"
                ));
            }
        }
    }
    if q.object.is_some() && !kinds_given {
        q.kinds = KindMask::of(&[EventClass::Pebs]);
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RegionId;
    use crate::source::Ip;
    use mempersp_memsim::MemLevel;
    use mempersp_pebs::{CounterSnapshot, PebsSample};

    fn ev(payload: EventPayload) -> TraceEvent {
        TraceEvent { cycles: 123, core: 1, payload }
    }

    #[test]
    fn every_payload_serializes_with_its_mnemonic() {
        let c = CounterSnapshot::from_values([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        let cases: Vec<(EventPayload, &str)> = vec![
            (EventPayload::RegionEnter { region: RegionId(3), counters: c }, "ENTER"),
            (EventPayload::RegionExit { region: RegionId(3), counters: c }, "EXIT"),
            (
                EventPayload::CounterSample {
                    ip: Ip(77),
                    counters: c,
                    stack: vec![RegionId(1), RegionId(2)],
                },
                "SAMP",
            ),
            (
                EventPayload::Pebs {
                    sample: PebsSample {
                        timestamp: 123,
                        core: 1,
                        ip: 5,
                        addr: 4096,
                        size: 8,
                        is_store: true,
                        latency: 40,
                        source: MemLevel::Dram,
                        tlb_miss: true,
                    },
                    object: Some(ObjectId(9)),
                },
                "PEBS",
            ),
            (EventPayload::Alloc { base: 100, size: 64, callsite: Ip(5) }, "ALLOC"),
            (EventPayload::Free { base: 100 }, "FREE"),
            (EventPayload::MuxSwitch { event_index: 2, label: "stores".into() }, "MUX"),
            (EventPayload::User { kind: 7, value: 42 }, "USER"),
        ];
        for (payload, label) in cases {
            let v = event_to_json(&ev(payload));
            assert_eq!(v["kind"], *label);
            assert_eq!(v["cycles"].as_u64(), Some(123));
            assert_eq!(v["core"].as_u64(), Some(1));
            // Every record must survive a text round trip unchanged.
            let text = serde_json::to_string(&v).unwrap();
            assert_eq!(serde_json::from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn pebs_fields_match_the_text_record() {
        let sample = PebsSample {
            timestamp: 123,
            core: 1,
            ip: 5,
            addr: 4096,
            size: 8,
            is_store: false,
            latency: 40,
            source: MemLevel::L3,
            tlb_miss: false,
        };
        let v = event_to_json(&ev(EventPayload::Pebs { sample, object: None }));
        assert_eq!(v["op"], "L");
        assert_eq!(v["source"], "L3");
        assert_eq!(v["tlb_miss"], false);
        assert!(v["object"].is_null());
    }

    #[test]
    fn query_round_trips_through_json() {
        let q = Query::all()
            .in_time(10, 500)
            .on_cores(&[0, 2])
            .with_kinds(&[EventClass::Pebs, EventClass::User]);
        let v = query_to_json(&q);
        assert_eq!(query_from_json(&v).unwrap(), q);
        // Full scan round-trips through the empty object.
        assert_eq!(query_from_json(&query_to_json(&Query::all())).unwrap(), Query::all());
    }

    #[test]
    fn object_implies_pebs_unless_kinds_given() {
        let v = serde_json::from_str(r#"{"object": 4}"#).unwrap();
        let q = query_from_json(&v).unwrap();
        assert_eq!(q.object, Some(ObjectId(4)));
        assert_eq!(q.kinds, KindMask::of(&[EventClass::Pebs]));

        let v = serde_json::from_str(r#"{"object": 4, "kinds": ["PEBS", "ALLOC"]}"#).unwrap();
        let q = query_from_json(&v).unwrap();
        assert_eq!(q.kinds, KindMask::of(&[EventClass::Pebs, EventClass::Alloc]));
    }

    #[test]
    fn malformed_queries_are_rejected_with_reasons() {
        for (body, needle) in [
            (r#"[1,2]"#, "must be a JSON object"),
            (r#"{"time": [5]}"#, "[lo, hi]"),
            (r#"{"time": [9, 2]}"#, "inverted"),
            (r#"{"time": [-1, 2]}"#, "non-negative"),
            (r#"{"cores": 3}"#, "array"),
            (r#"{"kinds": ["NOPE"]}"#, "unknown kind"),
            (r#"{"object": "x"}"#, "integer"),
            (r#"{"bogus": 1}"#, "unknown query key"),
        ] {
            let v = serde_json::from_str(body).unwrap();
            let err = query_from_json(&v).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn scan_stats_serialize_every_field() {
        let s = ScanStats {
            events_matched: 1,
            events_scanned: 2,
            chunks_decoded: 3,
            chunks_skipped: 4,
            chunks_cached: 5,
            chunks_damaged: 6,
            payload_bytes_decoded: 7,
        };
        let v = scan_stats_to_json(&s);
        assert_eq!(v["events_matched"].as_u64(), Some(1));
        assert_eq!(v["chunks_damaged"].as_u64(), Some(6));
        assert_eq!(
            serde_json::to_string(&v).unwrap(),
            r#"{"events_matched":1,"events_scanned":2,"chunks_decoded":3,"chunks_skipped":4,"chunks_cached":5,"chunks_damaged":6,"payload_bytes_decoded":7}"#
        );
    }
}
