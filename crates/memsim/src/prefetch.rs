//! A per-core stream prefetcher modelled after the L2 "streamer" of
//! Intel cores: it observes the sequence of demanded line addresses,
//! detects constant-stride streams (ascending or descending), and once
//! a stream is trained, emits prefetch requests `degree` lines ahead.

use crate::config::PrefetchConfig;
use crate::Addr;

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Last line address observed for this stream.
    last_line: Addr,
    /// Detected stride in lines (signed; usually ±1).
    stride: i64,
    /// Confirmations of the current stride.
    confidence: u32,
    /// Last-use clock for LRU replacement of streams.
    last_use: u64,
    valid: bool,
}

/// Stride-stream prefetcher.
#[derive(Debug)]
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    line_size: u32,
    streams: Vec<Stream>,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    pub fn new(cfg: PrefetchConfig, line_size: u32) -> Self {
        Self {
            streams: vec![
                Stream { last_line: 0, stride: 0, confidence: 0, last_use: 0, valid: false };
                cfg.streams as usize
            ],
            cfg,
            line_size,
            clock: 0,
            issued: 0,
        }
    }

    /// Observe a demanded line and return the line addresses to
    /// prefetch (possibly empty). `line_addr` must be line-aligned.
    pub fn observe(&mut self, line_addr: Addr) -> Vec<Addr> {
        let mut out = Vec::new();
        self.observe_into(line_addr, &mut out);
        out
    }

    /// Allocation-free variant of [`observe`](Self::observe): appends
    /// the prefetch candidates to `out` (which the caller reuses).
    pub fn observe_into(&mut self, line_addr: Addr, out: &mut Vec<Addr>) {
        if !self.cfg.enabled {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        let ls = self.line_size as i64;

        // Find the stream this access continues: one whose last line is
        // within a small window of the new address.
        let window = 8 * ls;
        let mut best: Option<usize> = None;
        for (i, s) in self.streams.iter().enumerate() {
            if s.valid && (line_addr as i64 - s.last_line as i64).abs() <= window {
                best = Some(i);
                break;
            }
        }

        match best {
            Some(i) => {
                let s = &mut self.streams[i];
                let delta = line_addr as i64 - s.last_line as i64;
                if delta == 0 {
                    s.last_use = clock;
                    return;
                }
                let stride_lines = delta / ls;
                if delta % ls == 0 && stride_lines == s.stride {
                    s.confidence = s.confidence.saturating_add(1);
                } else if delta % ls == 0 {
                    s.stride = stride_lines;
                    s.confidence = 1;
                } else {
                    s.confidence = 0;
                }
                s.last_line = line_addr;
                s.last_use = clock;
                if s.confidence >= self.cfg.train_threshold && s.stride != 0 {
                    let stride = s.stride;
                    let degree = self.cfg.degree as i64;
                    let before = out.len();
                    for k in 1..=degree {
                        let a = line_addr as i64 + stride * ls * k;
                        if a >= 0 {
                            out.push(a as Addr);
                        }
                    }
                    self.issued += (out.len() - before) as u64;
                }
            }
            None => {
                // Allocate a new stream, replacing the LRU one.
                let slot = self
                    .streams
                    .iter()
                    .position(|s| !s.valid)
                    .unwrap_or_else(|| {
                        self.streams
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| s.last_use)
                            .map(|(i, _)| i)
                            .expect("at least one stream")
                    });
                self.streams[slot] = Stream {
                    last_line: line_addr,
                    stride: 0,
                    confidence: 0,
                    last_use: clock,
                    valid: true,
                };
            }
        }
    }

    /// Total prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(
            PrefetchConfig { enabled: true, train_threshold: 2, degree: 2, streams: 4 },
            64,
        )
    }

    #[test]
    fn ascending_stream_trains_and_prefetches() {
        let mut p = pf();
        assert!(p.observe(0x000).is_empty()); // allocate
        assert!(p.observe(0x040).is_empty()); // stride=1, conf=1
        let out = p.observe(0x080); // conf=2 -> fire
        assert_eq!(out, vec![0x0C0, 0x100]);
    }

    #[test]
    fn descending_stream_prefetches_downwards() {
        let mut p = pf();
        p.observe(0x400);
        p.observe(0x3C0);
        let out = p.observe(0x380);
        assert_eq!(out, vec![0x340, 0x300]);
    }

    #[test]
    fn random_accesses_never_train() {
        let mut p = pf();
        // Far-apart addresses allocate separate streams, never train.
        for a in [0x0u64, 0x100000, 0x200000, 0x300000, 0x400000, 0x500000] {
            assert!(p.observe(a).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = StreamPrefetcher::new(
            PrefetchConfig { enabled: false, ..PrefetchConfig::default() },
            64,
        );
        for i in 0..10u64 {
            assert!(p.observe(i * 64).is_empty());
        }
    }

    #[test]
    fn prefetch_does_not_go_below_zero() {
        let mut p = pf();
        p.observe(0x080);
        p.observe(0x040);
        let out = p.observe(0x000);
        // stride -1 from 0: candidates would be negative; filtered.
        assert!(out.is_empty());
    }

    #[test]
    fn stride_change_retrains() {
        let mut p = pf();
        p.observe(0x000);
        p.observe(0x040);
        p.observe(0x080); // trained at +1
        // Switch to stride +2 within the window.
        assert!(p.observe(0x100).is_empty(), "stride change drops confidence");
        let out = p.observe(0x180); // +2 confirmed twice
        assert_eq!(out, vec![0x200, 0x280]);
    }

    #[test]
    fn repeated_same_line_is_ignored() {
        let mut p = pf();
        p.observe(0x000);
        for _ in 0..10 {
            assert!(p.observe(0x000).is_empty());
        }
    }
}
