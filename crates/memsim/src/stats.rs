//! Statistic counters for caches, cores and the whole system.
//!
//! All counters are plain `u64`s; snapshots are cheap copies so
//! consumers (the PMU model in `mempersp-pebs`) can compute deltas
//! between two points in simulated time.

use serde::{Deserialize, Serialize};

/// Counters of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines installed (demand fills + prefetch fills).
    pub fills: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Dirty evictions written back to the next level.
    pub writebacks: u64,
    /// Prefetch fills issued into this cache.
    pub prefetch_fills: u64,
    /// Demand hits on lines that were brought in by the prefetcher and
    /// had not been demanded before (useful prefetches).
    pub prefetch_hits: u64,
}

impl CacheStats {
    /// Demand accesses observed (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; 0 when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }

    /// Component-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            fills: self.fills - earlier.fills,
            evictions: self.evictions - earlier.evictions,
            writebacks: self.writebacks - earlier.writebacks,
            prefetch_fills: self.prefetch_fills - earlier.prefetch_fills,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
        }
    }
}

/// Counters of one core's private path (L1D, L2, TLB, DRAM view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    pub l1d: CacheStats,
    pub l2: CacheStats,
    /// TLB hits/misses.
    pub tlb_hits: u64,
    pub tlb_misses: u64,
    /// Loads and stores issued by this core.
    pub loads: u64,
    pub stores: u64,
    /// Accesses of this core served by each source.
    pub served_l1: u64,
    pub served_l2: u64,
    pub served_l3: u64,
    pub served_dram: u64,
    /// Total latency cycles accumulated by this core's accesses.
    pub total_latency: u64,
    /// Bytes moved between this core's L2 and the shared L3/DRAM
    /// (demand fills + writebacks), i.e. the core's memory traffic.
    pub bytes_from_uncore: u64,
}

impl CoreStats {
    /// Component-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &CoreStats) -> CoreStats {
        CoreStats {
            l1d: self.l1d.delta(&earlier.l1d),
            l2: self.l2.delta(&earlier.l2),
            tlb_hits: self.tlb_hits - earlier.tlb_hits,
            tlb_misses: self.tlb_misses - earlier.tlb_misses,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            served_l1: self.served_l1 - earlier.served_l1,
            served_l2: self.served_l2 - earlier.served_l2,
            served_l3: self.served_l3 - earlier.served_l3,
            served_dram: self.served_dram - earlier.served_dram,
            total_latency: self.total_latency - earlier.total_latency,
            bytes_from_uncore: self.bytes_from_uncore - earlier.bytes_from_uncore,
        }
    }

    /// Memory accesses issued (loads + stores).
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Snapshot of the entire memory system.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemStats {
    pub cores: Vec<CoreStats>,
    pub l3: CacheStats,
    /// Bytes transferred over the DRAM channels.
    pub dram_bytes: u64,
    /// DRAM line transfers.
    pub dram_transfers: u64,
    /// Remote private-cache copies invalidated by stores.
    pub coherence_invalidations: u64,
    /// Modified remote copies downgraded (written back to L3) to
    /// serve another core's load.
    pub coherence_downgrades: u64,
}

impl SystemStats {
    /// Component-wise difference `self - earlier`. Panics if the core
    /// counts differ.
    pub fn delta(&self, earlier: &SystemStats) -> SystemStats {
        assert_eq!(self.cores.len(), earlier.cores.len());
        SystemStats {
            cores: self
                .cores
                .iter()
                .zip(earlier.cores.iter())
                .map(|(a, b)| a.delta(b))
                .collect(),
            l3: self.l3.delta(&earlier.l3),
            dram_bytes: self.dram_bytes - earlier.dram_bytes,
            dram_transfers: self.dram_transfers - earlier.dram_transfers,
            coherence_invalidations: self.coherence_invalidations
                - earlier.coherence_invalidations,
            coherence_downgrades: self.coherence_downgrades - earlier.coherence_downgrades,
        }
    }

    /// Aggregate of all cores' counters.
    pub fn total_cores(&self) -> CoreStats {
        let mut acc = CoreStats::default();
        for c in &self.cores {
            acc.l1d.hits += c.l1d.hits;
            acc.l1d.misses += c.l1d.misses;
            acc.l1d.fills += c.l1d.fills;
            acc.l1d.evictions += c.l1d.evictions;
            acc.l1d.writebacks += c.l1d.writebacks;
            acc.l1d.prefetch_fills += c.l1d.prefetch_fills;
            acc.l1d.prefetch_hits += c.l1d.prefetch_hits;
            acc.l2.hits += c.l2.hits;
            acc.l2.misses += c.l2.misses;
            acc.l2.fills += c.l2.fills;
            acc.l2.evictions += c.l2.evictions;
            acc.l2.writebacks += c.l2.writebacks;
            acc.l2.prefetch_fills += c.l2.prefetch_fills;
            acc.l2.prefetch_hits += c.l2.prefetch_hits;
            acc.tlb_hits += c.tlb_hits;
            acc.tlb_misses += c.tlb_misses;
            acc.loads += c.loads;
            acc.stores += c.stores;
            acc.served_l1 += c.served_l1;
            acc.served_l2 += c.served_l2;
            acc.served_l3 += c.served_l3;
            acc.served_dram += c.served_dram;
            acc.total_latency += c.total_latency;
            acc.bytes_from_uncore += c.bytes_from_uncore;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_empty_is_zero() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_computes() {
        let s = CacheStats { hits: 3, misses: 1, ..Default::default() };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts() {
        let a = CacheStats { hits: 10, misses: 4, ..Default::default() };
        let b = CacheStats { hits: 7, misses: 1, ..Default::default() };
        let d = a.delta(&b);
        assert_eq!(d.hits, 3);
        assert_eq!(d.misses, 3);
    }

    #[test]
    fn total_cores_aggregates() {
        let mut s = SystemStats::default();
        s.cores.push(CoreStats { loads: 5, stores: 2, ..Default::default() });
        s.cores.push(CoreStats { loads: 1, stores: 1, ..Default::default() });
        let t = s.total_cores();
        assert_eq!(t.loads, 6);
        assert_eq!(t.stores, 3);
        assert_eq!(t.accesses(), 9);
    }
}
