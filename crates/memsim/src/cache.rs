//! A single set-associative, write-back cache level.
//!
//! The cache stores only metadata (tags + flags), never data — the
//! simulated workloads compute on real Rust values and only the access
//! *stream* flows through the hierarchy.

use crate::config::CacheConfig;
use crate::replacement::SetState;
use crate::stats::CacheStats;
use crate::Addr;

/// Metadata of one resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMeta {
    pub tag: u64,
    pub dirty: bool,
    /// Set when the line was installed by a prefetch and not yet
    /// demanded; cleared on the first demand hit.
    pub prefetched: bool,
}

/// Result of a lookup-and-fill operation on one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The line was resident.
    Hit {
        /// It had been brought in by a prefetch and this is the first
        /// demand touch.
        first_demand_after_prefetch: bool,
    },
    /// The line was not resident.
    Miss,
}

/// An evicted line that the caller must handle (write back if dirty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line-aligned address of the evicted line.
    pub addr: Addr,
    pub dirty: bool,
}

/// One cache level.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<CacheSet>,
    set_shift: u32,
    set_mask: u64,
    stats: CacheStats,
    /// Monotonic touch clock for LRU.
    clock: u64,
}

#[derive(Debug)]
struct CacheSet {
    ways: Vec<Option<LineMeta>>,
    repl: SetState,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate("cache");
        let num_sets = cfg.num_sets();
        let sets = (0..num_sets)
            .map(|i| CacheSet {
                ways: vec![None; cfg.associativity as usize],
                // Mix the set index into the random-policy seed so sets
                // decorrelate.
                repl: SetState::new(cfg.replacement, cfg.associativity, 0x9E3779B97F4A7C15 ^ i),
            })
            .collect();
        Self {
            set_shift: cfg.line_size.trailing_zeros(),
            set_mask: num_sets - 1,
            cfg,
            sets,
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// Geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, line_addr: Addr) -> usize {
        (((line_addr) >> self.set_shift) & self.set_mask) as usize
    }

    fn tag(&self, line_addr: Addr) -> u64 {
        line_addr >> self.set_shift >> self.set_mask.count_ones()
    }

    fn line_addr_from(&self, set: usize, tag: u64) -> Addr {
        ((tag << self.set_mask.count_ones()) | set as u64) << self.set_shift
    }

    /// Is the line containing `line_addr` resident? Does not update
    /// replacement state or counters.
    #[inline]
    pub fn probe(&self, line_addr: Addr) -> bool {
        let set = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        self.sets[set]
            .ways
            .iter()
            .any(|w| matches!(w, Some(m) if m.tag == tag))
    }

    /// Like [`Cache::probe`], but reports *which way* holds the line.
    /// Does not update replacement state or counters.
    #[inline]
    pub fn probe_way(&self, line_addr: Addr) -> Option<u32> {
        let set = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        self.sets[set]
            .ways
            .iter()
            .position(|w| matches!(w, Some(m) if m.tag == tag))
            .map(|w| w as u32)
    }

    /// Demand access to a line the caller knows is resident in `way`
    /// (e.g. from [`Cache::probe_way`] with no eviction since) — the
    /// exact equivalent of [`Cache::access`] hitting that way, minus
    /// the tag scan.
    #[inline]
    pub fn touch_resident(&mut self, line_addr: Addr, way: u32, is_store: bool) {
        self.clock += 1;
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        let meta = set.ways[way as usize]
            .as_mut()
            .expect("touch_resident: way is empty");
        debug_assert_eq!(meta.tag, tag, "touch_resident: wrong line");
        let first = meta.prefetched;
        meta.prefetched = false;
        if is_store {
            meta.dirty = true;
        }
        set.repl.touch(way, clock);
        self.stats.hits += 1;
        if first {
            self.stats.prefetch_hits += 1;
        }
    }

    /// Demand access to the line containing `line_addr`. `is_store`
    /// marks the line dirty on hit. Counters and replacement state are
    /// updated; on a miss the line is *not* installed (call
    /// [`Cache::fill`] after fetching from the next level).
    #[inline]
    pub fn access(&mut self, line_addr: Addr, is_store: bool) -> LookupOutcome {
        self.clock += 1;
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        for (w, slot) in set.ways.iter_mut().enumerate() {
            if let Some(meta) = slot {
                if meta.tag == tag {
                    let first = meta.prefetched;
                    meta.prefetched = false;
                    if is_store {
                        meta.dirty = true;
                    }
                    set.repl.touch(w as u32, clock);
                    self.stats.hits += 1;
                    if first {
                        self.stats.prefetch_hits += 1;
                    }
                    return LookupOutcome::Hit { first_demand_after_prefetch: first };
                }
            }
        }
        self.stats.misses += 1;
        LookupOutcome::Miss
    }

    /// Install the line containing `line_addr`. Returns the line that
    /// had to be evicted, if any. `dirty` marks the new line dirty at
    /// install time (write-allocate store miss); `prefetched` flags a
    /// prefetch fill.
    pub fn fill(&mut self, line_addr: Addr, dirty: bool, prefetched: bool) -> Option<Evicted> {
        self.clock += 1;
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        let clock = self.clock;
        let assoc = self.cfg.associativity;

        self.stats.fills += 1;
        if prefetched {
            self.stats.prefetch_fills += 1;
        }

        let set = &mut self.sets[set_idx];
        // Already resident (e.g. a racing prefetch): just update flags.
        for (w, slot) in set.ways.iter_mut().enumerate() {
            if let Some(meta) = slot {
                if meta.tag == tag {
                    meta.dirty |= dirty;
                    set.repl.touch(w as u32, clock);
                    return None;
                }
            }
        }
        // Free way?
        for (w, slot) in set.ways.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(LineMeta { tag, dirty, prefetched });
                set.repl.touch(w as u32, clock);
                return None;
            }
        }
        // Evict.
        let victim = set.repl.victim(assoc) as usize;
        let old = set.ways[victim].expect("victim way must be occupied");
        set.ways[victim] = Some(LineMeta { tag, dirty, prefetched });
        set.repl.touch(victim as u32, clock);
        self.stats.evictions += 1;
        if old.dirty {
            self.stats.writebacks += 1;
        }
        Some(Evicted { addr: self.line_addr_from(set_idx, old.tag), dirty: old.dirty })
    }

    /// Remove the line containing `line_addr` if resident, returning
    /// its metadata (used for inclusive-L3 back-invalidations).
    pub fn invalidate(&mut self, line_addr: Addr) -> Option<LineMeta> {
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        let set = &mut self.sets[set_idx];
        for slot in set.ways.iter_mut() {
            if let Some(meta) = slot {
                if meta.tag == tag {
                    let m = *meta;
                    *slot = None;
                    return Some(m);
                }
            }
        }
        None
    }

    /// Mark the line dirty if resident (used when a writeback from an
    /// upper level lands on a resident line).
    pub fn mark_dirty(&mut self, line_addr: Addr) -> bool {
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        for slot in self.sets[set_idx].ways.iter_mut().flatten() {
            if slot.tag == tag {
                slot.dirty = true;
                return true;
            }
        }
        false
    }

    /// Number of resident lines (test/diagnostic helper; O(size)).
    pub fn resident_lines(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.ways.iter().filter(|w| w.is_some()).count())
            .sum()
    }

    /// Drop all lines and reset replacement state, keeping counters.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for w in &mut set.ways {
                *w = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WriteMissPolicy;
    use crate::replacement::ReplacementPolicy;

    fn tiny(assoc: u32, sets: u64) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 64 * assoc as u64 * sets,
            associativity: assoc,
            line_size: 64,
            hit_latency: 1,
            replacement: ReplacementPolicy::Lru,
            write_miss: WriteMissPolicy::WriteAllocate,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny(2, 4);
        assert_eq!(c.access(0x0, false), LookupOutcome::Miss);
        assert!(c.fill(0x0, false, false).is_none());
        assert!(matches!(c.access(0x0, false), LookupOutcome::Hit { .. }));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_set_conflict_evicts_lru() {
        let mut c = tiny(2, 4);
        // Three lines mapping to set 0 (stride = sets * line = 256).
        c.access(0x000, false);
        c.fill(0x000, false, false);
        c.access(0x100, false);
        c.fill(0x100, false, false);
        // Touch 0x000 so 0x100 becomes LRU.
        c.access(0x000, false);
        c.access(0x200, false);
        let ev = c.fill(0x200, false, false).expect("must evict");
        assert_eq!(ev.addr, 0x100);
        assert!(!ev.dirty);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(1, 1);
        c.access(0x0, true);
        c.fill(0x0, true, false);
        c.access(0x40, false);
        let ev = c.fill(0x40, false, false).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.addr, 0x0);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny(1, 1);
        c.access(0x0, false);
        c.fill(0x0, false, false);
        c.access(0x0, true); // store hit
        c.access(0x40, false);
        let ev = c.fill(0x40, false, false).unwrap();
        assert!(ev.dirty, "store hit must dirty the line");
    }

    #[test]
    fn prefetch_hit_accounting() {
        let mut c = tiny(2, 2);
        c.fill(0x0, false, true); // prefetch fill
        let out = c.access(0x0, false);
        assert_eq!(out, LookupOutcome::Hit { first_demand_after_prefetch: true });
        assert_eq!(c.stats().prefetch_hits, 1);
        // Second demand touch is a plain hit.
        let out = c.access(0x0, false);
        assert_eq!(out, LookupOutcome::Hit { first_demand_after_prefetch: false });
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny(2, 2);
        c.fill(0x0, true, false);
        let m = c.invalidate(0x0).unwrap();
        assert!(m.dirty);
        assert_eq!(c.access(0x0, false), LookupOutcome::Miss);
        assert!(c.invalidate(0x0).is_none());
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = tiny(2, 2);
        c.fill(0x0, false, false);
        let before = c.stats();
        assert!(c.probe(0x0));
        assert!(!c.probe(0x40));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn fill_on_resident_line_is_idempotent() {
        let mut c = tiny(2, 2);
        c.fill(0x0, false, false);
        assert!(c.fill(0x0, true, false).is_none());
        assert_eq!(c.resident_lines(), 1);
        // Dirty flag merged.
        c.access(0x80, false);
        c.fill(0x80, false, false);
        c.access(0x100, false);
        // set 0 now has 0x0(dirty), 0x100 incoming: evict candidates
        // exist; we only check that no panic occurs and counts are sane.
        c.fill(0x100, false, false);
        assert!(c.resident_lines() <= 4);
    }

    #[test]
    fn line_addr_round_trip() {
        let c = tiny(4, 8);
        for &a in &[0x0u64, 0x40, 0x1000, 0xdead_bee0 & !63, 0x7fff_ffff_ffc0] {
            let set = c.set_index(a);
            let tag = c.tag(a);
            assert_eq!(c.line_addr_from(set, tag), a & !63);
        }
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny(2, 2);
        c.fill(0x0, false, false);
        c.fill(0x40, false, false);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }
}
