//! The assembled memory system: per-core private L1D + L2 + TLB +
//! prefetcher, a shared inclusive L3, and the DRAM model.
//!
//! [`MemorySystem::access`] is the single entry point: it walks an
//! access down the hierarchy, performs fills/evictions/writebacks, lets
//! the stream prefetcher run, and returns the PEBS-relevant facts —
//! the serving [`MemLevel`] and the latency in cycles.

use crate::cache::{Cache, LookupOutcome};
use crate::config::{HierarchyConfig, WriteMissPolicy};
use crate::dram::Dram;
use crate::prefetch::StreamPrefetcher;
use crate::stats::{CoreStats, SystemStats};
use crate::tlb::Tlb;
use crate::{lines_of_access, Addr};
use serde::{Deserialize, Serialize};

/// Load or store, as retired by the simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    Load,
    Store,
}

/// The level of the hierarchy that served an access — what PEBS calls
/// the *data source*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    L1,
    L2,
    L3,
    Dram,
}

impl MemLevel {
    /// Short label used in reports ("L1", "L2", "L3", "DRAM").
    pub fn label(&self) -> &'static str {
        match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::L3 => "L3",
            MemLevel::Dram => "DRAM",
        }
    }
}

/// Per-access outcome, the PEBS record payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Deepest level that had to serve any line of the access.
    pub source: MemLevel,
    /// Total latency in core cycles, including TLB-walk penalty.
    pub latency: u32,
    /// Whether the access missed the data TLB.
    pub tlb_miss: bool,
}

/// One core's private memory path.
struct CorePath {
    l1d: Cache,
    l2: Cache,
    tlb: Tlb,
    prefetcher: StreamPrefetcher,
    stats: CoreStats,
}

/// The whole simulated memory system.
pub struct MemorySystem {
    cfg: HierarchyConfig,
    cores: Vec<CorePath>,
    l3: Cache,
    dram: Dram,
    coherence_invalidations: u64,
    coherence_downgrades: u64,
}

impl MemorySystem {
    /// Build a system with `num_cores` cores sharing one L3 and DRAM.
    pub fn new(cfg: HierarchyConfig, num_cores: usize) -> Self {
        cfg.validate();
        assert!(num_cores >= 1, "need at least one core");
        let cores = (0..num_cores)
            .map(|_| CorePath {
                l1d: Cache::new(cfg.l1d),
                l2: Cache::new(cfg.l2),
                tlb: Tlb::new(cfg.tlb),
                prefetcher: StreamPrefetcher::new(cfg.prefetch, cfg.line_size()),
                stats: CoreStats::default(),
            })
            .collect();
        Self {
            l3: Cache::new(cfg.l3),
            dram: Dram::new(cfg.dram),
            cfg,
            cores,
            coherence_invalidations: 0,
            coherence_downgrades: 0,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Number of simulated cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Issue one access from `core` at simulated cycle `now`.
    ///
    /// `size` is in bytes; accesses that straddle line boundaries touch
    /// every covered line and are charged the worst line's latency
    /// (the core would split them into uops anyway).
    pub fn access(&mut self, core: usize, kind: AccessKind, addr: Addr, size: u32, now: u64) -> AccessResult {
        let line_size = self.cfg.line_size();
        let is_store = kind == AccessKind::Store;

        // TLB: translate every distinct page the access touches.
        let page_mask = !(self.cfg.tlb.page_size - 1);
        let first_page = addr & page_mask;
        let last_page = (addr + size.max(1) as u64 - 1) & page_mask;
        let mut tlb_penalty = 0u32;
        {
            let path = &mut self.cores[core];
            let mut page = first_page;
            loop {
                let pen = path.tlb.access(page);
                if pen > 0 {
                    path.stats.tlb_misses += 1;
                } else {
                    path.stats.tlb_hits += 1;
                }
                tlb_penalty += pen;
                if page == last_page {
                    break;
                }
                page += self.cfg.tlb.page_size;
            }
        }

        let mut worst_latency = 0u32;
        let mut deepest = MemLevel::L1;
        let lines: Vec<Addr> = lines_of_access(addr, size, line_size).collect();
        for line in lines {
            let (lvl, lat) = self.access_line(core, line, is_store, now);
            if lat > worst_latency {
                worst_latency = lat;
            }
            if lvl > deepest {
                deepest = lvl;
            }
        }

        let latency = worst_latency + tlb_penalty;
        let st = &mut self.cores[core].stats;
        if is_store {
            st.stores += 1;
        } else {
            st.loads += 1;
        }
        match deepest {
            MemLevel::L1 => st.served_l1 += 1,
            MemLevel::L2 => st.served_l2 += 1,
            MemLevel::L3 => st.served_l3 += 1,
            MemLevel::Dram => st.served_dram += 1,
        }
        st.total_latency += latency as u64;

        AccessResult { source: deepest, latency, tlb_miss: tlb_penalty > 0 }
    }

    /// MESI-lite snoop: a store by `core` invalidates every other
    /// core's copy; a load downgrades remote *modified* copies
    /// (writeback into L3). Returns the extra snoop latency.
    fn snoop(&mut self, core: usize, line: Addr, is_store: bool) -> u32 {
        let mut hit_remote = false;
        let mut dirty_remote = false;
        for (c, path) in self.cores.iter_mut().enumerate() {
            if c == core {
                continue;
            }
            if is_store {
                // Invalidate (RFO).
                let mut any = false;
                if let Some(m) = path.l1d.invalidate(line) {
                    dirty_remote |= m.dirty;
                    any = true;
                }
                if let Some(m) = path.l2.invalidate(line) {
                    dirty_remote |= m.dirty;
                    any = true;
                }
                if any {
                    hit_remote = true;
                    self.coherence_invalidations += 1;
                }
            } else {
                // Downgrade M→S: clear remote dirty bits, push the
                // data into the shared L3.
                let mut dirty = false;
                if let Some(m) = path.l1d.invalidate(line) {
                    dirty |= m.dirty;
                    path.l1d.fill(line, false, false);
                }
                if let Some(m) = path.l2.invalidate(line) {
                    dirty |= m.dirty;
                    path.l2.fill(line, false, false);
                }
                if dirty {
                    hit_remote = true;
                    dirty_remote = true;
                    self.coherence_downgrades += 1;
                }
            }
        }
        if dirty_remote {
            // The freshest data lands in the (inclusive) L3.
            if !self.l3.mark_dirty(line) {
                self.fill_l3(line, true, false, 0);
            }
        }
        if hit_remote {
            self.cfg.snoop_latency
        } else {
            0
        }
    }

    /// Walk one line down the hierarchy. Returns (serving level,
    /// latency in cycles).
    fn access_line(&mut self, core: usize, line: Addr, is_store: bool, now: u64) -> (MemLevel, u32) {
        let line_size = self.cfg.line_size();
        let l1_lat = self.cfg.l1d.hit_latency;
        let l2_lat = self.cfg.l2.hit_latency;
        let l3_lat = self.cfg.l3.hit_latency;

        // Coherence first: stores must own the line exclusively; loads
        // must observe remote modifications. (Skipped entirely on
        // single-core systems.)
        let snoop_lat = if self.cores.len() > 1 {
            self.snoop(core, line, is_store)
        } else {
            0
        };

        // L1.
        if let LookupOutcome::Hit { .. } = self.cores[core].l1d.access(line, is_store) {
            let path = &mut self.cores[core];
            path.stats.l1d = path.l1d.stats();
            return (MemLevel::L1, l1_lat + snoop_lat);
        }

        // L2 (train the prefetcher on every demand access reaching L2).
        let pf_candidates = self.cores[core].prefetcher.observe(line);
        let l2_outcome = self.cores[core].l2.access(line, false);
        let (level, latency) = match l2_outcome {
            LookupOutcome::Hit { .. } => (MemLevel::L2, l1_lat + l2_lat),
            LookupOutcome::Miss => {
                // L3.
                match self.l3.access(line, false) {
                    LookupOutcome::Hit { .. } => (MemLevel::L3, l1_lat + l2_lat + l3_lat),
                    LookupOutcome::Miss => {
                        let dram_lat = self.dram.transfer(line, line_size, now);
                        // Install into L3 (inclusive) and handle its
                        // eviction.
                        self.fill_l3(line, false, false, now);
                        (MemLevel::Dram, l1_lat + l2_lat + l3_lat + dram_lat)
                    }
                }
            }
        };

        // Fill the line upwards into L2 (on L2 miss) and L1.
        if level > MemLevel::L2 {
            let allocate = !is_store || self.cfg.l2.write_miss == WriteMissPolicy::WriteAllocate;
            if allocate {
                self.fill_l2(core, line, false, false, now);
            }
            self.cores[core].stats.bytes_from_uncore += line_size as u64;
        }
        {
            let allocate = !is_store || self.cfg.l1d.write_miss == WriteMissPolicy::WriteAllocate;
            if allocate {
                self.fill_l1(core, line, is_store, now);
            } else if is_store {
                // Write-through to L2 without allocating in L1.
                self.cores[core].l2.mark_dirty(line);
            }
        }

        // Issue the prefetches decided above (off the critical path;
        // they consume DRAM bandwidth at `now`).
        for pf in pf_candidates {
            self.prefetch_line(core, pf, now);
        }

        let path = &mut self.cores[core];
        path.stats.l1d = path.l1d.stats();
        path.stats.l2 = path.l2.stats();
        (level, latency + snoop_lat)
    }

    /// Install a line into a core's L1, handling the eviction.
    fn fill_l1(&mut self, core: usize, line: Addr, dirty: bool, now: u64) {
        if let Some(ev) = self.cores[core].l1d.fill(line, dirty, false) {
            if ev.dirty {
                // Writeback to L2; L2 is expected to hold the line
                // (inclusive-ish), otherwise install it dirty.
                if !self.cores[core].l2.mark_dirty(ev.addr) {
                    self.fill_l2(core, ev.addr, true, false, now);
                }
            }
        }
    }

    /// Install a line into a core's L2, handling the eviction.
    fn fill_l2(&mut self, core: usize, line: Addr, dirty: bool, prefetched: bool, now: u64) {
        if let Some(ev) = self.cores[core].l2.fill(line, dirty, prefetched) {
            if ev.dirty {
                // Writeback to L3.
                self.cores[core].stats.bytes_from_uncore += self.cfg.line_size() as u64;
                if !self.l3.mark_dirty(ev.addr) {
                    self.fill_l3(ev.addr, true, false, now);
                }
            }
        }
    }

    /// Install a line into the shared L3; on eviction, back-invalidate
    /// every core (inclusive L3) and write dirty data to DRAM.
    fn fill_l3(&mut self, line: Addr, dirty: bool, prefetched: bool, now: u64) {
        if let Some(ev) = self.l3.fill(line, dirty, prefetched) {
            let mut dirty_upper = ev.dirty;
            for c in &mut self.cores {
                if let Some(m) = c.l1d.invalidate(ev.addr) {
                    dirty_upper |= m.dirty;
                }
                if let Some(m) = c.l2.invalidate(ev.addr) {
                    dirty_upper |= m.dirty;
                }
            }
            if dirty_upper {
                // Writeback consumes DRAM bandwidth but is off the
                // demand critical path.
                self.dram.transfer(ev.addr, self.cfg.line_size(), now);
            }
        }
    }

    /// Bring a prefetched line into L2 (+L3 if absent), charging DRAM
    /// bandwidth when it comes from memory.
    fn prefetch_line(&mut self, core: usize, line: Addr, now: u64) {
        if self.cores[core].l2.probe(line) {
            return;
        }
        if !self.l3.probe(line) {
            self.dram.transfer(line, self.cfg.line_size(), now);
            self.fill_l3(line, false, true, now);
        }
        self.fill_l2(core, line, false, true, now);
        let path = &mut self.cores[core];
        path.stats.l2 = path.l2.stats();
    }

    /// Does `core`'s private path (L1D or L2) hold the line containing
    /// `addr`? Diagnostic/verification helper; does not disturb state.
    pub fn core_holds_line(&self, core: usize, addr: Addr) -> bool {
        let line = addr & !(self.cfg.line_size() as Addr - 1);
        self.cores[core].l1d.probe(line) || self.cores[core].l2.probe(line)
    }

    /// Counter snapshot of the whole system (cheap; cloned counters).
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            cores: self
                .cores
                .iter()
                .map(|c| {
                    let mut s = c.stats;
                    s.l1d = c.l1d.stats();
                    s.l2 = c.l2.stats();
                    s
                })
                .collect(),
            l3: self.l3.stats(),
            dram_bytes: self.dram.bytes(),
            dram_transfers: self.dram.transfers(),
            coherence_invalidations: self.coherence_invalidations,
            coherence_downgrades: self.coherence_downgrades,
        }
    }

    /// Drop every cached line in the system (e.g. between experiment
    /// phases); counters are preserved.
    pub fn flush_all(&mut self) {
        for c in &mut self.cores {
            c.l1d.flush();
            c.l2.flush();
        }
        self.l3.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(HierarchyConfig::small_test(), cores)
    }

    #[test]
    fn cold_access_served_by_dram_then_l1() {
        let mut m = sys(1);
        let a = m.access(0, AccessKind::Load, 0x1000, 8, 0);
        assert_eq!(a.source, MemLevel::Dram);
        assert!(a.tlb_miss);
        let b = m.access(0, AccessKind::Load, 0x1000, 8, 100);
        assert_eq!(b.source, MemLevel::L1);
        assert!(!b.tlb_miss);
        assert!(b.latency < a.latency);
    }

    #[test]
    fn latency_ordering_l1_l2_l3_dram() {
        let mut m = sys(1);
        let dram = m.access(0, AccessKind::Load, 0x40000, 8, 0).latency;
        let l1 = m.access(0, AccessKind::Load, 0x40000, 8, 0).latency;
        assert!(l1 < dram);
        // Evict from L1 but not L2: fill enough same-set lines.
        // small_test L1: 1KiB/2way/64B = 8 sets -> set stride 512B.
        for i in 1..=2u64 {
            m.access(0, AccessKind::Load, 0x40000 + i * 512, 8, 0);
        }
        let l2 = m.access(0, AccessKind::Load, 0x40000, 8, 0);
        assert_eq!(l2.source, MemLevel::L2);
        assert!(l2.latency > l1 && l2.latency < dram);
    }

    #[test]
    fn store_miss_write_allocates_and_dirties() {
        let mut m = sys(1);
        m.access(0, AccessKind::Store, 0x2000, 8, 0);
        let s = m.stats();
        assert_eq!(s.cores[0].stores, 1);
        assert_eq!(s.cores[0].served_dram, 1);
        // A subsequent load hits L1 (line was allocated).
        let r = m.access(0, AccessKind::Load, 0x2000, 8, 10);
        assert_eq!(r.source, MemLevel::L1);
    }

    #[test]
    fn straddling_access_counts_once_but_touches_two_lines() {
        let mut m = sys(1);
        let r = m.access(0, AccessKind::Load, 0x103c, 8, 0);
        assert_eq!(r.source, MemLevel::Dram);
        let s = m.stats();
        assert_eq!(s.cores[0].loads, 1);
        // Both lines now hit.
        assert_eq!(m.access(0, AccessKind::Load, 0x1038, 4, 10).source, MemLevel::L1);
        assert_eq!(m.access(0, AccessKind::Load, 0x1040, 4, 10).source, MemLevel::L1);
    }

    #[test]
    fn cores_have_private_l1() {
        let mut m = sys(2);
        m.access(0, AccessKind::Load, 0x3000, 8, 0);
        // Core 1 misses its private caches but hits shared L3.
        let r = m.access(1, AccessKind::Load, 0x3000, 8, 100);
        assert_eq!(r.source, MemLevel::L3);
    }

    #[test]
    fn working_set_larger_than_l3_misses() {
        let mut m = sys(1);
        // small_test L3 = 16 KiB; stream through 256 KiB twice.
        let n_lines = (256 * 1024) / 64;
        for rep in 0..2u64 {
            for i in 0..n_lines as u64 {
                m.access(0, AccessKind::Load, i * 64, 8, rep * 1_000_000 + i * 10);
            }
        }
        let s = m.stats();
        // Second pass must still miss heavily (no reuse possible).
        assert!(s.cores[0].served_dram as f64 / s.cores[0].loads as f64 > 0.9);
    }

    #[test]
    fn working_set_fitting_l1_hits_after_warmup() {
        let mut m = sys(1);
        // 512 B working set, 8 lines.
        for rep in 0..10u64 {
            for i in 0..8u64 {
                m.access(0, AccessKind::Load, i * 64, 8, rep * 100 + i);
            }
        }
        let s = m.stats();
        assert!(s.cores[0].served_l1 >= 8 * 9, "all but the first pass should hit L1");
    }

    #[test]
    fn inclusive_l3_back_invalidates() {
        let mut m = sys(1);
        // Fill L3 (16 KiB = 256 lines) far beyond capacity while the
        // first line stays "hot" in L1... then check it got
        // back-invalidated when its L3 copy was evicted.
        m.access(0, AccessKind::Load, 0x0, 8, 0);
        for i in 1..2000u64 {
            m.access(0, AccessKind::Load, i * 64, 8, i * 10);
        }
        // 0x0 cannot still be in L1 if it left L3.
        let r = m.access(0, AccessKind::Load, 0x0, 8, 1_000_000);
        assert_eq!(r.source, MemLevel::Dram);
    }

    #[test]
    fn writeback_traffic_reaches_dram() {
        let mut m = sys(1);
        // Dirty a large footprint, then stream over another region to
        // force dirty evictions all the way out.
        for i in 0..1024u64 {
            m.access(0, AccessKind::Store, i * 64, 8, i);
        }
        for i in 0..4096u64 {
            m.access(0, AccessKind::Load, 0x100_0000 + i * 64, 8, 10_000 + i);
        }
        let s = m.stats();
        // DRAM must have seen more than the demand fills: the dirty
        // lines were written back.
        assert!(s.dram_bytes > (1024 + 4096) * 64);
    }

    #[test]
    fn prefetcher_reduces_dram_served_ratio_on_stream() {
        let mut cfg = HierarchyConfig::small_test();
        cfg.prefetch.enabled = true;
        let mut with_pf = MemorySystem::new(cfg.clone(), 1);
        cfg.prefetch.enabled = false;
        let mut without = MemorySystem::new(cfg, 1);
        for i in 0..4096u64 {
            with_pf.access(0, AccessKind::Load, i * 8, 8, i * 4);
            without.access(0, AccessKind::Load, i * 8, 8, i * 4);
        }
        let a = with_pf.stats().cores[0].served_dram;
        let b = without.stats().cores[0].served_dram;
        assert!(a < b, "prefetching ({a}) should beat no prefetching ({b})");
    }

    #[test]
    fn stats_delta_between_phases() {
        let mut m = sys(1);
        for i in 0..100u64 {
            m.access(0, AccessKind::Load, i * 64, 8, i);
        }
        let snap = m.stats();
        for i in 0..50u64 {
            m.access(0, AccessKind::Store, i * 64, 8, 1000 + i);
        }
        let d = m.stats().delta(&snap);
        assert_eq!(d.cores[0].loads, 0);
        assert_eq!(d.cores[0].stores, 50);
    }

    #[test]
    fn flush_all_forgets_lines() {
        let mut m = sys(1);
        m.access(0, AccessKind::Load, 0x0, 8, 0);
        m.flush_all();
        let r = m.access(0, AccessKind::Load, 0x0, 8, 100);
        assert_eq!(r.source, MemLevel::Dram);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = MemorySystem::new(HierarchyConfig::small_test(), 0);
    }

    #[test]
    fn store_invalidates_remote_copies() {
        let mut m = sys(2);
        // Both cores cache the line.
        m.access(0, AccessKind::Load, 0x7000, 8, 0);
        m.access(1, AccessKind::Load, 0x7000, 8, 10);
        // Core 1 writes: core 0's copy must die.
        m.access(1, AccessKind::Store, 0x7000, 8, 20);
        let s = m.stats();
        assert!(s.coherence_invalidations >= 1, "{s:?}");
        // Core 0 re-reads: not from its (invalidated) L1.
        let r = m.access(0, AccessKind::Load, 0x7000, 8, 30);
        assert!(r.source > MemLevel::L1, "stale copy must be gone, got {:?}", r.source);
    }

    #[test]
    fn load_downgrades_remote_modified_line() {
        let mut m = sys(2);
        m.access(0, AccessKind::Store, 0x8000, 8, 0); // core 0 holds M
        let r = m.access(1, AccessKind::Load, 0x8000, 8, 10);
        let s = m.stats();
        assert_eq!(s.coherence_downgrades, 1);
        // Served with the snoop penalty included.
        assert!(r.latency >= m.config().snoop_latency);
        // Core 0 still has the (now clean) line.
        let r0 = m.access(0, AccessKind::Load, 0x8000, 8, 20);
        assert_eq!(r0.source, MemLevel::L1);
    }

    #[test]
    fn private_data_has_no_coherence_traffic() {
        let mut m = sys(2);
        for i in 0..1000u64 {
            m.access(0, AccessKind::Store, i * 64, 8, i);
            m.access(1, AccessKind::Store, 0x100_0000 + i * 64, 8, i);
        }
        let s = m.stats();
        assert_eq!(s.coherence_invalidations, 0);
        assert_eq!(s.coherence_downgrades, 0);
    }

    #[test]
    fn false_sharing_pingpong_counts_invalidations() {
        let mut m = sys(2);
        // Two cores alternately store to the same line (different
        // bytes — classic false sharing).
        for i in 0..100u64 {
            m.access(0, AccessKind::Store, 0x9000, 8, i * 10);
            m.access(1, AccessKind::Store, 0x9008, 8, i * 10 + 5);
        }
        let s = m.stats();
        assert!(
            s.coherence_invalidations >= 150,
            "ping-pong invalidates nearly every store: {}",
            s.coherence_invalidations
        );
    }

    #[test]
    fn no_write_allocate_l1_keeps_line_out() {
        let mut cfg = HierarchyConfig::small_test();
        cfg.l1d.write_miss = crate::config::WriteMissPolicy::NoWriteAllocate;
        let mut m = MemorySystem::new(cfg, 1);
        // Store miss: line is installed in L2/L3 but not L1.
        m.access(0, AccessKind::Store, 0x5000, 8, 0);
        let r = m.access(0, AccessKind::Load, 0x5000, 8, 10);
        assert_eq!(r.source, MemLevel::L2, "load finds the line in L2, not L1");
    }

    #[test]
    fn no_write_allocate_store_still_reaches_dirty_state() {
        let mut cfg = HierarchyConfig::small_test();
        cfg.l1d.write_miss = crate::config::WriteMissPolicy::NoWriteAllocate;
        let mut m = MemorySystem::new(cfg, 1);
        m.access(0, AccessKind::Store, 0x6000, 8, 0);
        // Evict everything from L2/L3 by streaming; the dirty line must
        // eventually be written back to DRAM (bytes > pure demand).
        for i in 0..4096u64 {
            m.access(0, AccessKind::Load, 0x100_0000 + i * 64, 8, 100 + i);
        }
        let s = m.stats();
        assert!(s.dram_bytes > 4096 * 64, "writeback traffic present");
    }
}
