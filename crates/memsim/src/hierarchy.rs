//! The assembled memory system: per-core private L1D + L2 + TLB +
//! prefetcher, a shared inclusive L3, and the DRAM model.
//!
//! [`MemorySystem::access`] is the single entry point for one access:
//! it walks the access down the hierarchy, performs
//! fills/evictions/writebacks, lets the stream prefetcher run, and
//! returns the PEBS-relevant facts — the serving [`MemLevel`] and the
//! latency in cycles. [`MemorySystem::access_batch`] does the same for
//! a stream of operations from one core, with same-line and same-page
//! fast paths that skip redundant TLB/snoop work while producing
//! byte-identical results and statistics.
//!
//! The private part of the walk (TLB, L1, L2, prefetcher training) is
//! factored into [`CorePath`] so that an epoch of accesses can be
//! simulated per-core in parallel ([`CorePath::simulate_private`]) and
//! the shared L3/DRAM side replayed afterwards in a deterministic
//! global order ([`MemorySystem::complete_access`]). A directory-style
//! snoop filter (line → presence bitmask over cores) makes both the
//! coherence check in the sequential path and the epoch conflict test
//! cheap: the common case — no other core has ever touched the line —
//! is a single hash probe instead of a walk over every remote cache.

use crate::cache::{Cache, LookupOutcome};
use crate::config::{HierarchyConfig, WriteMissPolicy};
use crate::dram::Dram;
use crate::prefetch::StreamPrefetcher;
use crate::stats::{CoreStats, SystemStats};
use crate::tlb::Tlb;
use crate::{lines_of_access, Addr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Load or store, as retired by the simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    Load,
    Store,
}

/// The level of the hierarchy that served an access — what PEBS calls
/// the *data source*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    L1,
    L2,
    L3,
    Dram,
}

impl MemLevel {
    /// Short label used in reports ("L1", "L2", "L3", "DRAM").
    pub fn label(&self) -> &'static str {
        match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::L3 => "L3",
            MemLevel::Dram => "DRAM",
        }
    }
}

/// Per-access outcome, the PEBS record payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Deepest level that had to serve any line of the access.
    pub source: MemLevel,
    /// Total latency in core cycles, including TLB-walk penalty.
    pub latency: u32,
    /// Whether the access missed the data TLB.
    pub tlb_miss: bool,
}

/// One memory operation in a batched access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOp {
    pub kind: AccessKind,
    pub addr: Addr,
    pub size: u32,
}

/// A request emitted by a core's private path toward the shared
/// uncore (L3 + DRAM). Produced during the private phase of an epoch,
/// applied later in deterministic global order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncoreReq {
    /// Demand fetch of a line that missed the private L2. The uncore
    /// decides whether L3 or DRAM serves it.
    Demand(Addr),
    /// Dirty line evicted from a private L2; lands in the L3 (or is
    /// installed there dirty if the L3 lost it).
    Writeback(Addr),
    /// A prefetched line: brought into the L3 if absent, charging DRAM
    /// bandwidth. (The private L2 fill already happened.)
    Prefetch(Addr),
}

/// Private-path outcome of one batched operation, produced by
/// [`CorePath::simulate_private`] and consumed by
/// [`MemorySystem::complete_access`].
#[derive(Debug, Clone, Copy)]
pub struct PrivateResult {
    /// Deepest *private* level that served any line (L1 or L2); lines
    /// that left the core appear as [`UncoreReq::Demand`] entries.
    pub level: MemLevel,
    /// Worst private per-line latency (no TLB penalty, no uncore part).
    pub latency: u32,
    /// TLB-walk penalty of the whole operation.
    pub tlb_penalty: u32,
    /// Whether any touched page missed the TLB.
    pub tlb_miss: bool,
    /// Number of [`UncoreReq`]s this operation appended.
    pub req_len: u32,
}

/// Hasher for line-address keys: one multiply + xor-shift so the
/// (always line-aligned, low-bits-zero) addresses spread over the
/// whole bucket range.
#[derive(Default)]
struct LineAddrHasher(u64);

impl Hasher for LineAddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 29);
    }
}

type LineMap = HashMap<Addr, u64, BuildHasherDefault<LineAddrHasher>>;

/// Private lookup outcome of one line.
enum PrivLookup {
    L1,
    L2,
    Uncore,
}

/// One core's private memory path: L1D, L2, TLB and the stream
/// prefetcher, plus this core's counters.
pub struct CorePath {
    l1d: Cache,
    l2: Cache,
    tlb: Tlb,
    prefetcher: StreamPrefetcher,
    stats: CoreStats,
    /// Reused buffer for prefetch candidates (no per-access allocation).
    pf_scratch: Vec<Addr>,
    /// Lines evicted from L1 since the last drain; lets the private
    /// phase invalidate exactly the affected residency-memo entries
    /// instead of flushing the memo on every miss.
    l1_evict_scratch: Vec<Addr>,
}

impl CorePath {
    fn new(cfg: &HierarchyConfig) -> Self {
        Self {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            tlb: Tlb::new(cfg.tlb),
            prefetcher: StreamPrefetcher::new(cfg.prefetch, cfg.line_size()),
            stats: CoreStats::default(),
            pf_scratch: Vec::new(),
            l1_evict_scratch: Vec::new(),
        }
    }

    /// Does this core's private path hold `line`?
    fn holds(&self, line: Addr) -> bool {
        self.l1d.probe(line) || self.l2.probe(line)
    }

    /// Translate every distinct page the access touches, updating TLB
    /// counters. Returns the accumulated walk penalty.
    fn tlb_walk(&mut self, page_size: u64, addr: Addr, size: u32) -> u32 {
        let page_mask = !(page_size - 1);
        let first_page = addr & page_mask;
        let last_page = (addr + size.max(1) as u64 - 1) & page_mask;
        let mut penalty = 0u32;
        let mut page = first_page;
        loop {
            let pen = self.tlb.access(page);
            if pen > 0 {
                self.stats.tlb_misses += 1;
            } else {
                self.stats.tlb_hits += 1;
            }
            penalty += pen;
            if page == last_page {
                break;
            }
            page += page_size;
        }
        penalty
    }

    /// Look one line up in L1 then L2, training the prefetcher on every
    /// demand access that reaches L2. Prefetch candidates accumulate in
    /// `pf_scratch` until [`finish_line`](Self::finish_line) drains them.
    fn lookup_line(&mut self, line: Addr, is_store: bool) -> PrivLookup {
        if let LookupOutcome::Hit { .. } = self.l1d.access(line, is_store) {
            return PrivLookup::L1;
        }
        self.prefetcher.observe_into(line, &mut self.pf_scratch);
        match self.l2.access(line, false) {
            LookupOutcome::Hit { .. } => PrivLookup::L2,
            LookupOutcome::Miss => PrivLookup::Uncore,
        }
    }

    /// After the serving level of `line` is known, perform the private
    /// fills and issue the pending prefetches. Uncore-side effects
    /// (writebacks, prefetch installs) are appended to `reqs`; lines
    /// whose private presence may have changed are appended to `dir`
    /// when `track_dir` is set (multi-core systems keep the snoop-filter
    /// directory in sync from them).
    #[allow(clippy::too_many_arguments)]
    fn finish_line(
        &mut self,
        cfg: &HierarchyConfig,
        line: Addr,
        is_store: bool,
        from_uncore: bool,
        reqs: &mut Vec<UncoreReq>,
        dir: &mut Vec<Addr>,
        track_dir: bool,
    ) {
        if from_uncore {
            let allocate = !is_store || cfg.l2.write_miss == WriteMissPolicy::WriteAllocate;
            if allocate {
                self.fill_l2_private(cfg, line, false, false, reqs, dir, track_dir);
            }
            self.stats.bytes_from_uncore += cfg.line_size() as u64;
        }
        {
            let allocate = !is_store || cfg.l1d.write_miss == WriteMissPolicy::WriteAllocate;
            if allocate {
                self.fill_l1_private(cfg, line, is_store, reqs, dir, track_dir);
            } else if is_store {
                // Write-through to L2 without allocating in L1.
                self.l2.mark_dirty(line);
            }
        }
        // Issue the prefetches decided during lookup (off the critical
        // path). The L2 side is private; the L3/DRAM side becomes a
        // Prefetch request.
        let pfs = std::mem::take(&mut self.pf_scratch);
        for &pf in &pfs {
            if self.l2.probe(pf) {
                continue;
            }
            reqs.push(UncoreReq::Prefetch(pf));
            self.fill_l2_private(cfg, pf, false, true, reqs, dir, track_dir);
        }
        let mut pfs = pfs;
        pfs.clear();
        self.pf_scratch = pfs;
    }

    /// Install a line into L1, handling the eviction cascade.
    fn fill_l1_private(
        &mut self,
        cfg: &HierarchyConfig,
        line: Addr,
        dirty: bool,
        reqs: &mut Vec<UncoreReq>,
        dir: &mut Vec<Addr>,
        track_dir: bool,
    ) {
        if track_dir {
            dir.push(line);
        }
        if let Some(ev) = self.l1d.fill(line, dirty, false) {
            self.l1_evict_scratch.push(ev.addr);
            if ev.dirty {
                // Writeback to L2; L2 is expected to hold the line
                // (inclusive-ish), otherwise install it dirty.
                if !self.l2.mark_dirty(ev.addr) {
                    self.fill_l2_private(cfg, ev.addr, true, false, reqs, dir, track_dir);
                }
            }
            if track_dir {
                dir.push(ev.addr);
            }
        }
    }

    /// Install a line into L2, handling the eviction.
    #[allow(clippy::too_many_arguments)]
    fn fill_l2_private(
        &mut self,
        cfg: &HierarchyConfig,
        line: Addr,
        dirty: bool,
        prefetched: bool,
        reqs: &mut Vec<UncoreReq>,
        dir: &mut Vec<Addr>,
        track_dir: bool,
    ) {
        if track_dir {
            dir.push(line);
        }
        if let Some(ev) = self.l2.fill(line, dirty, prefetched) {
            if ev.dirty {
                self.stats.bytes_from_uncore += cfg.line_size() as u64;
                reqs.push(UncoreReq::Writeback(ev.addr));
            }
            if track_dir {
                dir.push(ev.addr);
            }
        }
    }

    /// Phase 1 of an epoch: run this core's operations through the
    /// private path only. Demand misses, writebacks and prefetch
    /// installs that need the shared L3/DRAM are recorded as
    /// [`UncoreReq`]s (one contiguous run per op, `req_len` each) for a
    /// later deterministic replay via
    /// [`MemorySystem::complete_access`]. Loads/stores and TLB counters
    /// are updated here; served-level counters and latencies are
    /// accounted during the replay.
    ///
    /// The caller must have established (e.g. with
    /// [`MemorySystem::epoch_conflict_free`]) that no line touched in
    /// the epoch is shared with another core, so coherence snoops are
    /// no-ops and are skipped.
    pub fn simulate_private(
        &mut self,
        cfg: &HierarchyConfig,
        track_dir: bool,
        ops: &[BatchOp],
        results: &mut Vec<PrivateResult>,
        reqs: &mut Vec<UncoreReq>,
        dir: &mut Vec<Addr>,
    ) {
        let line_size = cfg.line_size();
        let line_mask = !(line_size as Addr - 1);
        let page_size = cfg.tlb.page_size;
        let page_mask = !(page_size - 1);
        let l1_lat = cfg.l1d.hit_latency;
        let l2_lat = cfg.l2.hit_latency;
        // L1-residency memo: (line, way) pairs known to still sit in
        // L1, direct-mapped on the line address (slot uniqueness comes
        // for free, and a probe is one indexed compare instead of a
        // scan). Within the private phase the only thing that evicts
        // an L1 line is another op's L1 fill, and every such eviction
        // is logged in `l1_evict_scratch` — dropping exactly those
        // entries keeps the invariant. A resident line never changes
        // ways, so a memo hit can skip both the tag scan and the
        // TLB/snoop/fill machinery; only the (exact) `touch_resident`
        // LRU/dirty update remains. 16 slots cover the handful of
        // streams a kernel interleaves (SpMV: cols/vals/x/y) with few
        // collisions.
        const MEMO_SLOTS: usize = 16;
        let line_shift = line_size.trailing_zeros();
        let memo_slot = |line: Addr| ((line >> line_shift) as usize) & (MEMO_SLOTS - 1);
        let mut memo = [(Addr::MAX, 0u32); MEMO_SLOTS];
        results.reserve(ops.len());
        // The page the previous op translated last (= TLB MRU, so
        // re-translating it is a strict no-op).
        let mut last_page = Addr::MAX;
        // Hot counters held in registers; flushed once at the end
        // (addition commutes, so the totals are exact).
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut tlb_hits = 0u64;
        let mut tlb_misses = 0u64;

        for op in ops {
            let is_store = op.kind == AccessKind::Store;
            let first_line = op.addr & line_mask;
            let last_line = (op.addr + op.size.max(1) as u64 - 1) & line_mask;
            let single_line = first_line == last_line;

            if single_line {
                let (m_line, way) = memo[memo_slot(first_line)];
                if m_line == first_line {
                    // Still in L1: hit with no fills. A single-line
                    // access never straddles pages, so one translation
                    // suffices — skipped only when the page is the TLB
                    // MRU.
                    let first_page = op.addr & page_mask;
                    let tlb_penalty = if first_page == last_page {
                        tlb_hits += 1;
                        0
                    } else {
                        let pen = self.tlb.access(op.addr);
                        if pen > 0 {
                            tlb_misses += 1;
                        } else {
                            tlb_hits += 1;
                        }
                        last_page = first_page;
                        pen
                    };
                    self.l1d.touch_resident(first_line, way, is_store);
                    if is_store {
                        stores += 1;
                    } else {
                        loads += 1;
                    }
                    results.push(PrivateResult {
                        level: MemLevel::L1,
                        latency: l1_lat,
                        tlb_penalty,
                        tlb_miss: tlb_penalty > 0,
                        req_len: 0,
                    });
                    continue;
                }
            }

            let first_page = op.addr & page_mask;
            let end_page = (op.addr + op.size.max(1) as u64 - 1) & page_mask;
            let tlb_penalty = if first_page == end_page && first_page == last_page {
                tlb_hits += 1;
                0
            } else {
                self.tlb_walk(page_size, op.addr, op.size)
            };
            last_page = end_page;

            let req_start = reqs.len();
            let mut level = MemLevel::L1;
            let mut latency = 0u32;
            let mut line = first_line;
            loop {
                match self.lookup_line(line, is_store) {
                    PrivLookup::L1 => {
                        latency = latency.max(l1_lat);
                    }
                    PrivLookup::L2 => {
                        latency = latency.max(l1_lat + l2_lat);
                        if MemLevel::L2 > level {
                            level = MemLevel::L2;
                        }
                        self.finish_line(cfg, line, is_store, false, reqs, dir, track_dir);
                    }
                    PrivLookup::Uncore => {
                        reqs.push(UncoreReq::Demand(line));
                        self.finish_line(cfg, line, is_store, true, reqs, dir, track_dir);
                    }
                }
                if line == last_line {
                    break;
                }
                line += line_size as u64;
            }

            if !self.l1_evict_scratch.is_empty() {
                // Drop exactly the memo entries whose lines were pushed
                // out of L1 by this op's fills; everything else is
                // still resident.
                for i in 0..self.l1_evict_scratch.len() {
                    let ev = self.l1_evict_scratch[i];
                    let slot = &mut memo[memo_slot(ev)];
                    if slot.0 == ev {
                        *slot = (Addr::MAX, 0);
                    }
                }
                self.l1_evict_scratch.clear();
            }
            if single_line {
                // Memoize the line (and its way) if the op left it in
                // L1 — a hit kept it there, a write-allocate fill just
                // installed it; a no-allocate store miss probes None.
                if let Some(way) = self.l1d.probe_way(first_line) {
                    memo[memo_slot(first_line)] = (first_line, way);
                }
            }

            if is_store {
                stores += 1;
            } else {
                loads += 1;
            }
            results.push(PrivateResult {
                level,
                latency,
                tlb_penalty,
                tlb_miss: tlb_penalty > 0,
                req_len: (reqs.len() - req_start) as u32,
            });
        }

        self.stats.loads += loads;
        self.stats.stores += stores;
        self.stats.tlb_hits += tlb_hits;
        self.stats.tlb_misses += tlb_misses;
    }
}

/// The whole simulated memory system.
pub struct MemorySystem {
    cfg: HierarchyConfig,
    cores: Vec<CorePath>,
    l3: Cache,
    dram: Dram,
    coherence_invalidations: u64,
    coherence_downgrades: u64,
    /// Snoop-filter directory: line → bitmask of cores whose private
    /// path *may* hold it (superset of actual holders). Only
    /// maintained on multi-core systems.
    directory: LineMap,
    /// When false, snoops fall back to probing every remote core
    /// (the pre-directory behaviour; kept for benchmarking).
    snoop_filter: bool,
    /// Reused scratch buffers for the sequential access path.
    req_scratch: Vec<UncoreReq>,
    dir_scratch: Vec<Addr>,
    classify_scratch: LineMap,
}

impl MemorySystem {
    /// Build a system with `num_cores` cores sharing one L3 and DRAM.
    pub fn new(cfg: HierarchyConfig, num_cores: usize) -> Self {
        cfg.validate();
        assert!(num_cores >= 1, "need at least one core");
        assert!(num_cores <= 64, "snoop-filter directory holds at most 64 cores");
        let cores = (0..num_cores).map(|_| CorePath::new(&cfg)).collect();
        Self {
            l3: Cache::new(cfg.l3),
            dram: Dram::new(cfg.dram),
            cfg,
            cores,
            coherence_invalidations: 0,
            coherence_downgrades: 0,
            directory: LineMap::default(),
            snoop_filter: true,
            req_scratch: Vec::new(),
            dir_scratch: Vec::new(),
            classify_scratch: LineMap::default(),
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Number of simulated cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Enable/disable the directory snoop filter. With the filter off,
    /// every snoop probes every remote core's caches (the original
    /// behaviour); results are identical either way, only the cost
    /// differs. The directory stays maintained so the filter can be
    /// re-enabled at any point.
    pub fn set_snoop_filter(&mut self, enabled: bool) {
        self.snoop_filter = enabled;
    }

    /// The per-core private paths, for parallel epoch simulation. The
    /// shared L3/DRAM are *not* reachable through this — workers can
    /// only touch private state.
    pub fn core_paths_mut(&mut self) -> &mut [CorePath] {
        &mut self.cores
    }

    /// Issue one access from `core` at simulated cycle `now`.
    ///
    /// `size` is in bytes; accesses that straddle line boundaries touch
    /// every covered line and are charged the worst line's latency
    /// (the core would split them into uops anyway).
    pub fn access(&mut self, core: usize, kind: AccessKind, addr: Addr, size: u32, now: u64) -> AccessResult {
        self.access_inner(core, kind, addr, size, now, false)
    }

    /// Issue a stream of operations from one core, appending one
    /// [`AccessResult`] per op to `out`. Equivalent to calling
    /// [`access`](Self::access) once per op — same results, same
    /// statistics — but consecutive ops hitting the same L1 line or
    /// the same page skip the redundant TLB/snoop/fill machinery.
    pub fn access_batch(&mut self, core: usize, ops: &[BatchOp], now: u64, out: &mut Vec<AccessResult>) {
        let line_mask = !(self.cfg.line_size() as Addr - 1);
        let page_mask = !(self.cfg.tlb.page_size - 1);
        let l1_lat = self.cfg.l1d.hit_latency;
        let own_bit = 1u64 << core;
        let multicore = self.cores.len() > 1;
        let mut last_l1_line = Addr::MAX;
        let mut last_page = Addr::MAX;
        out.reserve(ops.len());

        for op in ops {
            let is_store = op.kind == AccessKind::Store;
            let first_line = op.addr & line_mask;
            let last_line = (op.addr + op.size.max(1) as u64 - 1) & line_mask;
            let single_line = first_line == last_line;

            if single_line && first_line == last_l1_line {
                // The snoop must be a no-op for the fast path: no
                // *other* core may (per the superset directory) hold
                // the line.
                let exclusive = !multicore
                    || self
                        .directory
                        .get(&first_line)
                        .is_none_or(|m| m & !own_bit == 0);
                if exclusive {
                    let _ = self.cores[core].l1d.access(first_line, is_store);
                    let st = &mut self.cores[core].stats;
                    st.tlb_hits += 1;
                    if is_store {
                        st.stores += 1;
                    } else {
                        st.loads += 1;
                    }
                    st.served_l1 += 1;
                    st.total_latency += l1_lat as u64;
                    out.push(AccessResult { source: MemLevel::L1, latency: l1_lat, tlb_miss: false });
                    continue;
                }
            }

            let first_page = op.addr & page_mask;
            let end_page = (op.addr + op.size.max(1) as u64 - 1) & page_mask;
            let skip_tlb = first_page == end_page && first_page == last_page;
            let res = self.access_inner(core, op.kind, op.addr, op.size, now, skip_tlb);
            last_page = end_page;
            last_l1_line = if single_line && self.cores[core].l1d.probe(first_line) {
                first_line
            } else {
                Addr::MAX
            };
            out.push(res);
        }
    }

    fn access_inner(
        &mut self,
        core: usize,
        kind: AccessKind,
        addr: Addr,
        size: u32,
        now: u64,
        skip_tlb: bool,
    ) -> AccessResult {
        let line_size = self.cfg.line_size();
        let is_store = kind == AccessKind::Store;

        // TLB: translate every distinct page the access touches.
        // `skip_tlb` asserts the (single) page is the TLB's MRU entry,
        // making the walk a guaranteed hit with no LRU movement.
        let tlb_penalty = if skip_tlb {
            self.cores[core].stats.tlb_hits += 1;
            0
        } else {
            self.cores[core].tlb_walk(self.cfg.tlb.page_size, addr, size)
        };

        let mut worst_latency = 0u32;
        let mut deepest = MemLevel::L1;
        for line in lines_of_access(addr, size, line_size) {
            let (lvl, lat) = self.access_line(core, line, is_store, now);
            if lat > worst_latency {
                worst_latency = lat;
            }
            if lvl > deepest {
                deepest = lvl;
            }
        }

        let latency = worst_latency + tlb_penalty;
        let st = &mut self.cores[core].stats;
        if is_store {
            st.stores += 1;
        } else {
            st.loads += 1;
        }
        match deepest {
            MemLevel::L1 => st.served_l1 += 1,
            MemLevel::L2 => st.served_l2 += 1,
            MemLevel::L3 => st.served_l3 += 1,
            MemLevel::Dram => st.served_dram += 1,
        }
        st.total_latency += latency as u64;

        AccessResult { source: deepest, latency, tlb_miss: tlb_penalty > 0 }
    }

    /// MESI-lite snoop: a store by `core` invalidates every other
    /// core's copy; a load downgrades remote *modified* copies
    /// (writeback into L3). Returns the extra snoop latency.
    ///
    /// With the snoop filter enabled only cores whose directory bit is
    /// set are probed — on private data that is a single hash lookup.
    fn snoop(&mut self, core: usize, line: Addr, is_store: bool) -> u32 {
        let candidates = if self.snoop_filter {
            self.directory.get(&line).copied().unwrap_or(0)
        } else {
            u64::MAX
        } & !(1u64 << core);
        if candidates == 0 {
            return 0;
        }
        let mut hit_remote = false;
        let mut dirty_remote = false;
        for c in 0..self.cores.len() {
            if c == core || candidates & (1u64 << c) == 0 {
                continue;
            }
            let path = &mut self.cores[c];
            if is_store {
                // Invalidate (RFO).
                let mut any = false;
                if let Some(m) = path.l1d.invalidate(line) {
                    dirty_remote |= m.dirty;
                    any = true;
                }
                if let Some(m) = path.l2.invalidate(line) {
                    dirty_remote |= m.dirty;
                    any = true;
                }
                if any {
                    hit_remote = true;
                    self.coherence_invalidations += 1;
                }
                self.dir_clear(c, line);
            } else {
                // Downgrade M→S: clear remote dirty bits, push the
                // data into the shared L3.
                let mut dirty = false;
                if let Some(m) = path.l1d.invalidate(line) {
                    dirty |= m.dirty;
                    path.l1d.fill(line, false, false);
                }
                if let Some(m) = path.l2.invalidate(line) {
                    dirty |= m.dirty;
                    path.l2.fill(line, false, false);
                }
                if dirty {
                    hit_remote = true;
                    dirty_remote = true;
                    self.coherence_downgrades += 1;
                }
            }
        }
        if dirty_remote {
            // The freshest data lands in the (inclusive) L3.
            if !self.l3.mark_dirty(line) {
                self.fill_l3(line, true, false, 0);
            }
        }
        if hit_remote {
            self.cfg.snoop_latency
        } else {
            0
        }
    }

    /// Walk one line down the hierarchy. Returns (serving level,
    /// latency in cycles).
    fn access_line(&mut self, core: usize, line: Addr, is_store: bool, now: u64) -> (MemLevel, u32) {
        let l1_lat = self.cfg.l1d.hit_latency;
        let l2_lat = self.cfg.l2.hit_latency;

        // Coherence first: stores must own the line exclusively; loads
        // must observe remote modifications. (Skipped entirely on
        // single-core systems.)
        let multicore = self.cores.len() > 1;
        let snoop_lat = if multicore { self.snoop(core, line, is_store) } else { 0 };

        // Private L1/L2 lookup.
        let (level, latency) = match self.cores[core].lookup_line(line, is_store) {
            PrivLookup::L1 => return (MemLevel::L1, l1_lat + snoop_lat),
            PrivLookup::L2 => (MemLevel::L2, l1_lat + l2_lat),
            PrivLookup::Uncore => self
                .apply_uncore_req(UncoreReq::Demand(line), now)
                .expect("demand requests report a serving level"),
        };

        // Fill the line upwards into L2 (on L2 miss) and L1, and issue
        // the prefetches decided during lookup; apply the resulting
        // uncore traffic (writebacks, prefetch installs) immediately.
        let mut reqs = std::mem::take(&mut self.req_scratch);
        let mut dir = std::mem::take(&mut self.dir_scratch);
        self.cores[core].finish_line(
            &self.cfg,
            line,
            is_store,
            level > MemLevel::L2,
            &mut reqs,
            &mut dir,
            multicore,
        );
        for req in reqs.drain(..) {
            self.apply_uncore_req(req, now);
        }
        if multicore {
            self.sync_directory(core, &mut dir);
        }
        self.req_scratch = reqs;
        self.dir_scratch = dir;
        // The L1-eviction log only feeds the private-phase memo; the
        // sequential path has no memo to invalidate.
        self.cores[core].l1_evict_scratch.clear();

        (level, latency + snoop_lat)
    }

    /// Apply one uncore request against the shared L3/DRAM. For
    /// [`UncoreReq::Demand`] the serving level and full demand latency
    /// (L1+L2+L3, plus DRAM) are returned.
    fn apply_uncore_req(&mut self, req: UncoreReq, now: u64) -> Option<(MemLevel, u32)> {
        let line_size = self.cfg.line_size();
        match req {
            UncoreReq::Demand(line) => {
                let base = self.cfg.l1d.hit_latency + self.cfg.l2.hit_latency + self.cfg.l3.hit_latency;
                Some(match self.l3.access(line, false) {
                    LookupOutcome::Hit { .. } => (MemLevel::L3, base),
                    LookupOutcome::Miss => {
                        let dram_lat = self.dram.transfer(line, line_size, now);
                        // Install into L3 (inclusive) and handle its
                        // eviction.
                        self.fill_l3(line, false, false, now);
                        (MemLevel::Dram, base + dram_lat)
                    }
                })
            }
            UncoreReq::Writeback(line) => {
                if !self.l3.mark_dirty(line) {
                    self.fill_l3(line, true, false, now);
                }
                None
            }
            UncoreReq::Prefetch(line) => {
                if !self.l3.probe(line) {
                    self.dram.transfer(line, line_size, now);
                    self.fill_l3(line, false, true, now);
                }
                None
            }
        }
    }

    /// Phase 0 of an epoch: is the epoch free of cross-core line
    /// sharing? True iff every line touched by any op is touched by at
    /// most one core *and* (per the superset directory) not resident in
    /// any other core's private path. Under that condition the private
    /// phase of every core commutes with every other core's, so the
    /// epoch can run phase 1 in parallel with results identical to the
    /// sequential order.
    pub fn epoch_conflict_free(&mut self, per_core_ops: &[Vec<BatchOp>]) -> bool {
        if self.cores.len() <= 1 {
            return true;
        }
        let line_size = self.cfg.line_size();
        let scratch = &mut self.classify_scratch;
        let directory = &self.directory;
        scratch.clear();
        for (c, ops) in per_core_ops.iter().enumerate() {
            let bit = 1u64 << c;
            for op in ops {
                for line in lines_of_access(op.addr, op.size, line_size) {
                    let mask = scratch
                        .entry(line)
                        .or_insert_with(|| directory.get(&line).copied().unwrap_or(0));
                    *mask |= bit;
                    if mask.count_ones() >= 2 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Phase 2 of an epoch: complete one operation whose private phase
    /// produced `pr` and the `reqs` slice (its `req_len` requests, in
    /// emission order). Applies the uncore traffic against L3/DRAM at
    /// cycle `now`, accounts the served-level counters and latency, and
    /// returns the final [`AccessResult`] — identical to what
    /// [`access`](Self::access) would have returned.
    #[inline]
    pub fn complete_access(&mut self, core: usize, pr: &PrivateResult, reqs: &[UncoreReq], now: u64) -> AccessResult {
        let mut level = pr.level;
        let mut latency = pr.latency;
        for &req in reqs {
            if let Some((lvl, lat)) = self.apply_uncore_req(req, now) {
                if lvl > level {
                    level = lvl;
                }
                if lat > latency {
                    latency = lat;
                }
            }
        }
        let latency = latency + pr.tlb_penalty;
        let st = &mut self.cores[core].stats;
        match level {
            MemLevel::L1 => st.served_l1 += 1,
            MemLevel::L2 => st.served_l2 += 1,
            MemLevel::L3 => st.served_l3 += 1,
            MemLevel::Dram => st.served_dram += 1,
        }
        st.total_latency += latency as u64;
        AccessResult { source: level, latency, tlb_miss: pr.tlb_miss }
    }

    /// Phase 2 of an epoch for one whole core, in bulk: equivalent to
    /// calling [`complete_access`](Self::complete_access) once per
    /// operation with `now = now_base + index` and appending each
    /// [`AccessResult`] to `out` — same results, same statistics — but
    /// the request-less common case (private hits) is accumulated in
    /// locals and flushed to the counters once. Returns the summed
    /// latency of the epoch.
    pub fn complete_epoch(
        &mut self,
        core: usize,
        results: &[PrivateResult],
        reqs: &[UncoreReq],
        now_base: u64,
        out: &mut Vec<AccessResult>,
    ) -> u64 {
        let mut served = [0u64; 4];
        let mut total_latency = 0u64;
        let mut cursor = 0usize;
        out.reserve(results.len());
        for (i, pr) in results.iter().enumerate() {
            let mut level = pr.level;
            let mut latency = pr.latency;
            if pr.req_len > 0 {
                let slice = &reqs[cursor..cursor + pr.req_len as usize];
                cursor += pr.req_len as usize;
                for &req in slice {
                    if let Some((lvl, lat)) = self.apply_uncore_req(req, now_base + i as u64) {
                        if lvl > level {
                            level = lvl;
                        }
                        if lat > latency {
                            latency = lat;
                        }
                    }
                }
            }
            let latency = latency + pr.tlb_penalty;
            served[level as usize] += 1;
            total_latency += latency as u64;
            out.push(AccessResult { source: level, latency, tlb_miss: pr.tlb_miss });
        }
        let st = &mut self.cores[core].stats;
        st.served_l1 += served[MemLevel::L1 as usize];
        st.served_l2 += served[MemLevel::L2 as usize];
        st.served_l3 += served[MemLevel::L3 as usize];
        st.served_dram += served[MemLevel::Dram as usize];
        st.total_latency += total_latency;
        total_latency
    }

    /// Bring the directory in sync with `core`'s private path for every
    /// line whose presence may have changed (drains `touched`). Probes
    /// the final private state, so it is safe to report a line multiple
    /// times or after it was back-invalidated.
    pub fn sync_directory(&mut self, core: usize, touched: &mut Vec<Addr>) {
        let bit = 1u64 << core;
        for line in touched.drain(..) {
            if self.cores[core].holds(line) {
                *self.directory.entry(line).or_insert(0) |= bit;
            } else {
                self.dir_clear(core, line);
            }
        }
    }

    fn dir_clear(&mut self, core: usize, line: Addr) {
        if let Some(mask) = self.directory.get_mut(&line) {
            *mask &= !(1u64 << core);
            if *mask == 0 {
                self.directory.remove(&line);
            }
        }
    }

    /// Install a line into the shared L3; on eviction, back-invalidate
    /// every core that may hold it (inclusive L3) and write dirty data
    /// to DRAM.
    fn fill_l3(&mut self, line: Addr, dirty: bool, prefetched: bool, now: u64) {
        if let Some(ev) = self.l3.fill(line, dirty, prefetched) {
            let mut dirty_upper = ev.dirty;
            if self.cores.len() == 1 {
                let c = &mut self.cores[0];
                if let Some(m) = c.l1d.invalidate(ev.addr) {
                    dirty_upper |= m.dirty;
                }
                if let Some(m) = c.l2.invalidate(ev.addr) {
                    dirty_upper |= m.dirty;
                }
            } else {
                let mut mask = self.directory.remove(&ev.addr).unwrap_or(0);
                while mask != 0 {
                    let c = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    if let Some(m) = self.cores[c].l1d.invalidate(ev.addr) {
                        dirty_upper |= m.dirty;
                    }
                    if let Some(m) = self.cores[c].l2.invalidate(ev.addr) {
                        dirty_upper |= m.dirty;
                    }
                }
            }
            if dirty_upper {
                // Writeback consumes DRAM bandwidth but is off the
                // demand critical path.
                self.dram.transfer(ev.addr, self.cfg.line_size(), now);
            }
        }
    }

    /// Does `core`'s private path (L1D or L2) hold the line containing
    /// `addr`? Diagnostic/verification helper; does not disturb state.
    pub fn core_holds_line(&self, core: usize, addr: Addr) -> bool {
        let line = addr & !(self.cfg.line_size() as Addr - 1);
        self.cores[core].holds(line)
    }

    /// Counter snapshot of the whole system (cheap; cloned counters).
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            cores: self
                .cores
                .iter()
                .map(|c| {
                    let mut s = c.stats;
                    s.l1d = c.l1d.stats();
                    s.l2 = c.l2.stats();
                    s
                })
                .collect(),
            l3: self.l3.stats(),
            dram_bytes: self.dram.bytes(),
            dram_transfers: self.dram.transfers(),
            coherence_invalidations: self.coherence_invalidations,
            coherence_downgrades: self.coherence_downgrades,
        }
    }

    /// Drop every cached line in the system (e.g. between experiment
    /// phases); counters are preserved.
    pub fn flush_all(&mut self) {
        for c in &mut self.cores {
            c.l1d.flush();
            c.l2.flush();
        }
        self.l3.flush();
        self.directory.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(HierarchyConfig::small_test(), cores)
    }

    #[test]
    fn cold_access_served_by_dram_then_l1() {
        let mut m = sys(1);
        let a = m.access(0, AccessKind::Load, 0x1000, 8, 0);
        assert_eq!(a.source, MemLevel::Dram);
        assert!(a.tlb_miss);
        let b = m.access(0, AccessKind::Load, 0x1000, 8, 100);
        assert_eq!(b.source, MemLevel::L1);
        assert!(!b.tlb_miss);
        assert!(b.latency < a.latency);
    }

    #[test]
    fn latency_ordering_l1_l2_l3_dram() {
        let mut m = sys(1);
        let dram = m.access(0, AccessKind::Load, 0x40000, 8, 0).latency;
        let l1 = m.access(0, AccessKind::Load, 0x40000, 8, 0).latency;
        assert!(l1 < dram);
        // Evict from L1 but not L2: fill enough same-set lines.
        // small_test L1: 1KiB/2way/64B = 8 sets -> set stride 512B.
        for i in 1..=2u64 {
            m.access(0, AccessKind::Load, 0x40000 + i * 512, 8, 0);
        }
        let l2 = m.access(0, AccessKind::Load, 0x40000, 8, 0);
        assert_eq!(l2.source, MemLevel::L2);
        assert!(l2.latency > l1 && l2.latency < dram);
    }

    #[test]
    fn store_miss_write_allocates_and_dirties() {
        let mut m = sys(1);
        m.access(0, AccessKind::Store, 0x2000, 8, 0);
        let s = m.stats();
        assert_eq!(s.cores[0].stores, 1);
        assert_eq!(s.cores[0].served_dram, 1);
        // A subsequent load hits L1 (line was allocated).
        let r = m.access(0, AccessKind::Load, 0x2000, 8, 10);
        assert_eq!(r.source, MemLevel::L1);
    }

    #[test]
    fn straddling_access_counts_once_but_touches_two_lines() {
        let mut m = sys(1);
        let r = m.access(0, AccessKind::Load, 0x103c, 8, 0);
        assert_eq!(r.source, MemLevel::Dram);
        let s = m.stats();
        assert_eq!(s.cores[0].loads, 1);
        // Both lines now hit.
        assert_eq!(m.access(0, AccessKind::Load, 0x1038, 4, 10).source, MemLevel::L1);
        assert_eq!(m.access(0, AccessKind::Load, 0x1040, 4, 10).source, MemLevel::L1);
    }

    #[test]
    fn cores_have_private_l1() {
        let mut m = sys(2);
        m.access(0, AccessKind::Load, 0x3000, 8, 0);
        // Core 1 misses its private caches but hits shared L3.
        let r = m.access(1, AccessKind::Load, 0x3000, 8, 100);
        assert_eq!(r.source, MemLevel::L3);
    }

    #[test]
    fn working_set_larger_than_l3_misses() {
        let mut m = sys(1);
        // small_test L3 = 16 KiB; stream through 256 KiB twice.
        let n_lines = (256 * 1024) / 64;
        for rep in 0..2u64 {
            for i in 0..n_lines as u64 {
                m.access(0, AccessKind::Load, i * 64, 8, rep * 1_000_000 + i * 10);
            }
        }
        let s = m.stats();
        // Second pass must still miss heavily (no reuse possible).
        assert!(s.cores[0].served_dram as f64 / s.cores[0].loads as f64 > 0.9);
    }

    #[test]
    fn working_set_fitting_l1_hits_after_warmup() {
        let mut m = sys(1);
        // 512 B working set, 8 lines.
        for rep in 0..10u64 {
            for i in 0..8u64 {
                m.access(0, AccessKind::Load, i * 64, 8, rep * 100 + i);
            }
        }
        let s = m.stats();
        assert!(s.cores[0].served_l1 >= 8 * 9, "all but the first pass should hit L1");
    }

    #[test]
    fn inclusive_l3_back_invalidates() {
        let mut m = sys(1);
        // Fill L3 (16 KiB = 256 lines) far beyond capacity while the
        // first line stays "hot" in L1... then check it got
        // back-invalidated when its L3 copy was evicted.
        m.access(0, AccessKind::Load, 0x0, 8, 0);
        for i in 1..2000u64 {
            m.access(0, AccessKind::Load, i * 64, 8, i * 10);
        }
        // 0x0 cannot still be in L1 if it left L3.
        let r = m.access(0, AccessKind::Load, 0x0, 8, 1_000_000);
        assert_eq!(r.source, MemLevel::Dram);
    }

    #[test]
    fn writeback_traffic_reaches_dram() {
        let mut m = sys(1);
        // Dirty a large footprint, then stream over another region to
        // force dirty evictions all the way out.
        for i in 0..1024u64 {
            m.access(0, AccessKind::Store, i * 64, 8, i);
        }
        for i in 0..4096u64 {
            m.access(0, AccessKind::Load, 0x100_0000 + i * 64, 8, 10_000 + i);
        }
        let s = m.stats();
        // DRAM must have seen more than the demand fills: the dirty
        // lines were written back.
        assert!(s.dram_bytes > (1024 + 4096) * 64);
    }

    #[test]
    fn prefetcher_reduces_dram_served_ratio_on_stream() {
        let mut cfg = HierarchyConfig::small_test();
        cfg.prefetch.enabled = true;
        let mut with_pf = MemorySystem::new(cfg.clone(), 1);
        cfg.prefetch.enabled = false;
        let mut without = MemorySystem::new(cfg, 1);
        for i in 0..4096u64 {
            with_pf.access(0, AccessKind::Load, i * 8, 8, i * 4);
            without.access(0, AccessKind::Load, i * 8, 8, i * 4);
        }
        let a = with_pf.stats().cores[0].served_dram;
        let b = without.stats().cores[0].served_dram;
        assert!(a < b, "prefetching ({a}) should beat no prefetching ({b})");
    }

    #[test]
    fn stats_delta_between_phases() {
        let mut m = sys(1);
        for i in 0..100u64 {
            m.access(0, AccessKind::Load, i * 64, 8, i);
        }
        let snap = m.stats();
        for i in 0..50u64 {
            m.access(0, AccessKind::Store, i * 64, 8, 1000 + i);
        }
        let d = m.stats().delta(&snap);
        assert_eq!(d.cores[0].loads, 0);
        assert_eq!(d.cores[0].stores, 50);
    }

    #[test]
    fn flush_all_forgets_lines() {
        let mut m = sys(1);
        m.access(0, AccessKind::Load, 0x0, 8, 0);
        m.flush_all();
        let r = m.access(0, AccessKind::Load, 0x0, 8, 100);
        assert_eq!(r.source, MemLevel::Dram);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = MemorySystem::new(HierarchyConfig::small_test(), 0);
    }

    #[test]
    fn store_invalidates_remote_copies() {
        let mut m = sys(2);
        // Both cores cache the line.
        m.access(0, AccessKind::Load, 0x7000, 8, 0);
        m.access(1, AccessKind::Load, 0x7000, 8, 10);
        // Core 1 writes: core 0's copy must die.
        m.access(1, AccessKind::Store, 0x7000, 8, 20);
        let s = m.stats();
        assert!(s.coherence_invalidations >= 1, "{s:?}");
        // Core 0 re-reads: not from its (invalidated) L1.
        let r = m.access(0, AccessKind::Load, 0x7000, 8, 30);
        assert!(r.source > MemLevel::L1, "stale copy must be gone, got {:?}", r.source);
    }

    #[test]
    fn load_downgrades_remote_modified_line() {
        let mut m = sys(2);
        m.access(0, AccessKind::Store, 0x8000, 8, 0); // core 0 holds M
        let r = m.access(1, AccessKind::Load, 0x8000, 8, 10);
        let s = m.stats();
        assert_eq!(s.coherence_downgrades, 1);
        // Served with the snoop penalty included.
        assert!(r.latency >= m.config().snoop_latency);
        // Core 0 still has the (now clean) line.
        let r0 = m.access(0, AccessKind::Load, 0x8000, 8, 20);
        assert_eq!(r0.source, MemLevel::L1);
    }

    #[test]
    fn private_data_has_no_coherence_traffic() {
        let mut m = sys(2);
        for i in 0..1000u64 {
            m.access(0, AccessKind::Store, i * 64, 8, i);
            m.access(1, AccessKind::Store, 0x100_0000 + i * 64, 8, i);
        }
        let s = m.stats();
        assert_eq!(s.coherence_invalidations, 0);
        assert_eq!(s.coherence_downgrades, 0);
    }

    #[test]
    fn false_sharing_pingpong_counts_invalidations() {
        let mut m = sys(2);
        // Two cores alternately store to the same line (different
        // bytes — classic false sharing).
        for i in 0..100u64 {
            m.access(0, AccessKind::Store, 0x9000, 8, i * 10);
            m.access(1, AccessKind::Store, 0x9008, 8, i * 10 + 5);
        }
        let s = m.stats();
        assert!(
            s.coherence_invalidations >= 150,
            "ping-pong invalidates nearly every store: {}",
            s.coherence_invalidations
        );
    }

    #[test]
    fn no_write_allocate_l1_keeps_line_out() {
        let mut cfg = HierarchyConfig::small_test();
        cfg.l1d.write_miss = crate::config::WriteMissPolicy::NoWriteAllocate;
        let mut m = MemorySystem::new(cfg, 1);
        // Store miss: line is installed in L2/L3 but not L1.
        m.access(0, AccessKind::Store, 0x5000, 8, 0);
        let r = m.access(0, AccessKind::Load, 0x5000, 8, 10);
        assert_eq!(r.source, MemLevel::L2, "load finds the line in L2, not L1");
    }

    #[test]
    fn no_write_allocate_store_still_reaches_dirty_state() {
        let mut cfg = HierarchyConfig::small_test();
        cfg.l1d.write_miss = crate::config::WriteMissPolicy::NoWriteAllocate;
        let mut m = MemorySystem::new(cfg, 1);
        m.access(0, AccessKind::Store, 0x6000, 8, 0);
        // Evict everything from L2/L3 by streaming; the dirty line must
        // eventually be written back to DRAM (bytes > pure demand).
        for i in 0..4096u64 {
            m.access(0, AccessKind::Load, 0x100_0000 + i * 64, 8, 100 + i);
        }
        let s = m.stats();
        assert!(s.dram_bytes > 4096 * 64, "writeback traffic present");
    }

    // ---- directory / batch / epoch machinery ------------------------

    /// A mixed 2-core workload with sharing, used to compare paths.
    fn mixed_ops(seed: u64) -> Vec<(usize, AccessKind, Addr, u32)> {
        let mut x = seed | 1;
        let mut ops = Vec::new();
        for i in 0..3000u64 {
            // xorshift64*
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let core = (r & 1) as usize;
            let kind = if r & 2 == 0 { AccessKind::Load } else { AccessKind::Store };
            // Mostly-private regions with a shared window on top.
            let addr = if r % 10 < 2 {
                0x5_0000 + (r >> 8) % 0x400 // shared 1 KiB window
            } else {
                (core as u64 + 1) * 0x10_0000 + ((r >> 8) % 0x4000)
            };
            let size = 1 + (i % 8) as u32;
            ops.push((core, kind, addr, size));
        }
        ops
    }

    #[test]
    fn snoop_filter_is_behaviour_preserving() {
        let mut with = sys(2);
        let mut without = sys(2);
        without.set_snoop_filter(false);
        for (i, (core, kind, addr, size)) in mixed_ops(42).into_iter().enumerate() {
            let a = with.access(core, kind, addr, size, i as u64 * 3);
            let b = without.access(core, kind, addr, size, i as u64 * 3);
            assert_eq!(a, b, "op {i} diverged");
        }
        assert_eq!(with.stats(), without.stats());
        assert!(with.stats().coherence_invalidations > 0, "workload must exercise coherence");
    }

    #[test]
    fn access_batch_equals_single_accesses() {
        let mut single = sys(2);
        let mut batched = sys(2);
        // Group the op stream into per-core runs like a real caller.
        let ops = mixed_ops(7);
        let mut i = 0usize;
        let mut out = Vec::new();
        while i < ops.len() {
            let core = ops[i].0;
            let mut j = i;
            while j < ops.len() && ops[j].0 == core {
                j += 1;
            }
            let now = i as u64 * 5;
            let batch: Vec<BatchOp> = ops[i..j]
                .iter()
                .map(|&(_, kind, addr, size)| BatchOp { kind, addr, size })
                .collect();
            out.clear();
            batched.access_batch(core, &batch, now, &mut out);
            for (k, &(_, kind, addr, size)) in ops[i..j].iter().enumerate() {
                let want = single.access(core, kind, addr, size, now);
                assert_eq!(out[k], want, "op {} diverged", i + k);
            }
            i = j;
        }
        assert_eq!(single.stats(), batched.stats());
    }

    #[test]
    fn batch_fast_path_repeated_line() {
        // Repeated accesses to one line: after the first, all are L1
        // hits through the fast path, still counted in full.
        let mut m = sys(1);
        let ops: Vec<BatchOp> = (0..100)
            .map(|i| BatchOp {
                kind: if i % 3 == 0 { AccessKind::Store } else { AccessKind::Load },
                addr: 0x1000 + (i % 8) as u64,
                size: 4,
            })
            .collect();
        let mut out = Vec::new();
        m.access_batch(0, &ops, 0, &mut out);
        assert_eq!(out.len(), 100);
        assert!(out[1..].iter().all(|r| r.source == MemLevel::L1));
        let s = m.stats();
        assert_eq!(s.cores[0].loads + s.cores[0].stores, 100);
        assert_eq!(s.cores[0].served_l1, 99);
        assert_eq!(s.cores[0].tlb_hits + s.cores[0].tlb_misses, 100);
    }

    #[test]
    fn epoch_conflict_detection() {
        let mut m = sys(2);
        let load = |addr| BatchOp { kind: AccessKind::Load, addr, size: 8 };
        let store = |addr| BatchOp { kind: AccessKind::Store, addr, size: 8 };
        // Disjoint lines: fine.
        assert!(m.epoch_conflict_free(&[vec![load(0x1000)], vec![load(0x2000)]]));
        // Same line from two cores: conflict, even load/load.
        assert!(!m.epoch_conflict_free(&[vec![load(0x1000)], vec![load(0x1008)]]));
        assert!(!m.epoch_conflict_free(&[vec![store(0x1000)], vec![load(0x1000)]]));
        // A line another core already caches is a conflict too.
        m.access(1, AccessKind::Load, 0x3000, 8, 0);
        assert!(!m.epoch_conflict_free(&[vec![load(0x3000)], vec![]]));
        // ... but the caching core itself may keep using it.
        assert!(m.epoch_conflict_free(&[vec![], vec![load(0x3000)]]));
    }

    #[test]
    fn epoch_pipeline_matches_sequential_access() {
        // Conflict-free 2-core epoch: phase 1 per core + phase 2 global
        // replay must equal interleaved sequential access() calls.
        let mut seq = sys(2);
        let mut epo = sys(2);

        // Per-core streams over disjoint regions (stride to exercise
        // all levels + the prefetcher).
        let ops_of = |core: u64| -> Vec<BatchOp> {
            (0..2000)
                .map(|i| BatchOp {
                    kind: if i % 7 == 0 { AccessKind::Store } else { AccessKind::Load },
                    addr: (core + 1) * 0x100_0000 + i * 24,
                    size: 8,
                })
                .collect()
        };
        let per_core = [ops_of(0), ops_of(1)];
        assert!(epo.epoch_conflict_free(&per_core));

        // Global order: round-robin between the cores.
        let mut results = [Vec::new(), Vec::new()];
        let mut reqs = [Vec::new(), Vec::new()];
        let mut dirs = [Vec::new(), Vec::new()];
        {
            let cfg = epo.config().clone();
            for (c, path) in epo.core_paths_mut().iter_mut().enumerate() {
                path.simulate_private(&cfg, true, &per_core[c], &mut results[c], &mut reqs[c], &mut dirs[c]);
            }
        }
        for c in 0..2 {
            let mut touched = std::mem::take(&mut dirs[c]);
            epo.sync_directory(c, &mut touched);
        }
        let mut cursor = [0usize; 2];
        let mut req_cursor = [0usize; 2];
        for i in 0..2000usize {
            for c in 0..2usize {
                let now = (i * 2 + c) as u64;
                let op = per_core[c][i];
                let want = seq.access(c, op.kind, op.addr, op.size, now);
                let pr = results[c][cursor[c]];
                let slice = &reqs[c][req_cursor[c]..req_cursor[c] + pr.req_len as usize];
                let got = epo.complete_access(c, &pr, slice, now);
                assert_eq!(got, want, "op {i} core {c} diverged");
                cursor[c] += 1;
                req_cursor[c] += pr.req_len as usize;
            }
        }
        assert_eq!(seq.stats(), epo.stats());
    }

    #[test]
    fn complete_epoch_matches_per_op_completion() {
        // Bulk phase-2 completion must be indistinguishable from the
        // per-op complete_access loop it replaces: same AccessResults,
        // same statistics, same summed latency.
        let mut per_op = sys(1);
        let mut bulk = sys(1);
        let ops: Vec<BatchOp> = (0..3000u64)
            .map(|i| BatchOp {
                kind: if i % 5 == 0 { AccessKind::Store } else { AccessKind::Load },
                addr: 0x40_0000 + (i * 40) % 0x8_0000,
                size: 8,
            })
            .collect();

        let run_private = |m: &mut MemorySystem| -> (Vec<PrivateResult>, Vec<UncoreReq>) {
            let cfg = m.config().clone();
            let (mut results, mut reqs, mut dirs) = (Vec::new(), Vec::new(), Vec::new());
            m.core_paths_mut()[0].simulate_private(&cfg, true, &ops, &mut results, &mut reqs, &mut dirs);
            m.sync_directory(0, &mut dirs);
            (results, reqs)
        };
        let (res_a, req_a) = run_private(&mut per_op);
        let (res_b, req_b) = run_private(&mut bulk);
        assert_eq!(req_a.len(), req_b.len());

        let base = 77u64;
        let mut want = Vec::new();
        let mut want_lat = 0u64;
        let mut cursor = 0usize;
        for (i, pr) in res_a.iter().enumerate() {
            let slice = &req_a[cursor..cursor + pr.req_len as usize];
            cursor += pr.req_len as usize;
            let r = per_op.complete_access(0, pr, slice, base + i as u64);
            want_lat += r.latency as u64;
            want.push(r);
        }

        let mut got = Vec::new();
        let got_lat = bulk.complete_epoch(0, &res_b, &req_b, base, &mut got);

        assert_eq!(got, want);
        assert_eq!(got_lat, want_lat);
        assert_eq!(bulk.stats(), per_op.stats());
    }
}
