//! DRAM model: a base access latency plus a per-channel occupancy
//! timeline that makes concurrent misses queue for channel bandwidth.
//!
//! Each line transfer occupies its channel for
//! `line_size / (bytes_per_cycle / channels)` cycles starting no
//! earlier than the channel's previous transfer finished. The returned
//! latency therefore grows when cores collectively exceed the sustained
//! bandwidth — the effect that caps the achievable MB/s the paper
//! reports per phase.

use crate::config::DramConfig;
use crate::Addr;

/// DRAM channel-occupancy model.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Cycle at which each channel becomes free.
    free_at: Vec<u64>,
    bytes: u64,
    transfers: u64,
}

impl Dram {
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.channels >= 1);
        Self { free_at: vec![0; cfg.channels as usize], cfg, bytes: 0, transfers: 0 }
    }

    fn channel_of(&self, line_addr: Addr) -> usize {
        // Hash line address over channels (XOR-fold so sequential lines
        // round-robin across channels like an interleaved controller).
        let line = line_addr >> 6;
        (line % self.cfg.channels as u64) as usize
    }

    /// Transfer one line of `line_size` bytes beginning at simulated
    /// cycle `now`; returns the total latency in cycles (base latency +
    /// queueing + transfer time).
    pub fn transfer(&mut self, line_addr: Addr, line_size: u32, now: u64) -> u32 {
        let ch = self.channel_of(line_addr);
        let per_channel_bw = self.cfg.bytes_per_cycle / self.cfg.channels as f64;
        let transfer_cycles = (line_size as f64 / per_channel_bw).ceil() as u64;
        let start = self.free_at[ch].max(now);
        let queue_wait = start - now;
        self.free_at[ch] = start + transfer_cycles;
        self.bytes += line_size as u64;
        self.transfers += 1;
        (self.cfg.base_latency as u64 + queue_wait + transfer_cycles) as u32
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total line transfers.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// The earliest cycle by which every channel is idle.
    pub fn drained_at(&self) -> u64 {
        self.free_at.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig { base_latency: 100, bytes_per_cycle: 8.0, channels: 2 })
    }

    #[test]
    fn uncontended_latency_is_base_plus_transfer() {
        let mut d = dram();
        // per-channel bw = 4 B/cyc; 64B line -> 16 cycles transfer.
        assert_eq!(d.transfer(0x0, 64, 0), 116);
        assert_eq!(d.bytes(), 64);
        assert_eq!(d.transfers(), 1);
    }

    #[test]
    fn back_to_back_same_channel_queues() {
        let mut d = dram();
        // Lines 0 and 2 map to channel 0 (line index 0 and 2 % 2 == 0).
        let a = d.transfer(0x00, 64, 0);
        let b = d.transfer(0x80, 64, 0);
        assert_eq!(a, 116);
        assert_eq!(b, 116 + 16, "second transfer waits for the channel");
    }

    #[test]
    fn different_channels_do_not_queue() {
        let mut d = dram();
        let a = d.transfer(0x00, 64, 0); // channel 0
        let b = d.transfer(0x40, 64, 0); // channel 1
        assert_eq!(a, b, "independent channels serve in parallel");
    }

    #[test]
    fn late_request_does_not_queue() {
        let mut d = dram();
        d.transfer(0x00, 64, 0);
        // Arrives after channel is free again.
        assert_eq!(d.transfer(0x80, 64, 1000), 116);
    }

    #[test]
    fn sustained_bandwidth_matches_config() {
        let mut d = Dram::new(DramConfig { base_latency: 50, bytes_per_cycle: 16.0, channels: 4 });
        // Saturate: issue 1000 line transfers all at cycle 0.
        for i in 0..1000u64 {
            d.transfer(i * 64, 64, 0);
        }
        let cycles = d.drained_at();
        let achieved = d.bytes() as f64 / cycles as f64;
        assert!(
            (achieved - 16.0).abs() / 16.0 < 0.05,
            "sustained bw {achieved} should approach configured 16 B/cyc"
        );
    }
}
