//! Configuration types for the simulated memory hierarchy.
//!
//! Two presets matter in practice:
//!
//! * [`HierarchyConfig::haswell_like`] — sized after the Intel Xeon
//!   E5-2680 v3 (Haswell) nodes of the Jureca system used in the
//!   paper's evaluation: 32 KiB / 8-way L1D, 256 KiB / 8-way L2,
//!   2.5 MiB-per-core shared L3, ~2.5 GHz nominal frequency;
//! * [`HierarchyConfig::small_test`] — a tiny hierarchy for unit tests
//!   where evictions are easy to provoke.

use crate::replacement::ReplacementPolicy;
use serde::{Deserialize, Serialize};

/// What a write that misses the cache does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteMissPolicy {
    /// Fetch the line and install it (the common choice; all levels of
    /// the modelled Haswell hierarchy do this).
    WriteAllocate,
    /// Forward the write to the next level without installing the line.
    NoWriteAllocate,
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of
    /// `associativity * line_size`.
    pub size_bytes: u64,
    /// Number of ways per set.
    pub associativity: u32,
    /// Line size in bytes (power of two).
    pub line_size: u32,
    /// Latency to serve a hit, in core cycles (includes tag check).
    pub hit_latency: u32,
    /// Replacement policy for the sets.
    pub replacement: ReplacementPolicy,
    /// Write-miss behaviour.
    pub write_miss: WriteMissPolicy,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.associativity as u64 * self.line_size as u64)
    }

    /// Panics with a descriptive message if the geometry is invalid.
    pub fn validate(&self, name: &str) {
        assert!(self.line_size.is_power_of_two(), "{name}: line size must be a power of two");
        assert!(self.associativity >= 1, "{name}: associativity must be >= 1");
        assert_eq!(
            self.size_bytes % (self.associativity as u64 * self.line_size as u64),
            0,
            "{name}: size must be a multiple of associativity * line_size"
        );
        let sets = self.num_sets();
        assert!(sets.is_power_of_two(), "{name}: number of sets ({sets}) must be a power of two");
    }
}

/// DRAM timing/bandwidth model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Latency of an uncontended access, in core cycles (row activation
    /// + CAS + transfer start).
    pub base_latency: u32,
    /// Sustained bandwidth of the memory controller, expressed as bytes
    /// transferable per core cycle (shared by all cores).
    pub bytes_per_cycle: f64,
    /// Number of independent channels; line transfers are spread over
    /// channels by address hashing, and each channel has its own
    /// occupancy timeline.
    pub channels: u32,
}

/// Data-TLB parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: u32,
    /// Page size in bytes (power of two).
    pub page_size: u64,
    /// Extra cycles charged for a TLB miss (page-table walk).
    pub walk_latency: u32,
}

/// Stream-prefetcher parameters (attached to the L2 of each core).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Master enable.
    pub enabled: bool,
    /// Consecutive same-stride line accesses required to train a stream.
    pub train_threshold: u32,
    /// How many lines ahead a trained stream prefetches.
    pub degree: u32,
    /// How many concurrent streams the prefetcher tracks.
    pub streams: u32,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self { enabled: true, train_threshold: 2, degree: 4, streams: 16 }
    }
}

/// Full hierarchy description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Private, per-core first-level data cache.
    pub l1d: CacheConfig,
    /// Private, per-core second-level cache.
    pub l2: CacheConfig,
    /// Shared last-level cache (capacity is total, not per core).
    pub l3: CacheConfig,
    pub dram: DramConfig,
    pub tlb: TlbConfig,
    pub prefetch: PrefetchConfig,
    /// Nominal core frequency in MHz; used by consumers to convert
    /// cycles to wall-clock time (the paper quotes MIPS at nominal
    /// frequency).
    pub freq_mhz: u32,
    /// Extra cycles charged when an access must snoop another core's
    /// private cache (cache-to-cache intervention on a line held
    /// modified elsewhere, or an invalidating store that finds remote
    /// copies).
    pub snoop_latency: u32,
}

impl HierarchyConfig {
    /// Hierarchy sized after a Jureca Haswell node (per-core view; the
    /// L3 is the full shared 30 MiB slice for a 12-core socket scaled
    /// by `cores` at [`crate::MemorySystem::new`] time — we keep the
    /// total fixed here and document it as *total* capacity).
    pub fn haswell_like() -> Self {
        Self {
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                associativity: 8,
                line_size: 64,
                hit_latency: 4,
                replacement: ReplacementPolicy::TreePlru,
                write_miss: WriteMissPolicy::WriteAllocate,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                associativity: 8,
                line_size: 64,
                hit_latency: 12,
                replacement: ReplacementPolicy::TreePlru,
                write_miss: WriteMissPolicy::WriteAllocate,
            },
            l3: CacheConfig {
                size_bytes: 24 * 1024 * 1024,
                associativity: 24,
                line_size: 64,
                hit_latency: 36,
                replacement: ReplacementPolicy::Lru,
                write_miss: WriteMissPolicy::WriteAllocate,
            },
            dram: DramConfig {
                // ~85 ns at 2.5 GHz.
                base_latency: 212,
                // ~60 GB/s node bandwidth at 2.5 GHz ≈ 24 B/cycle.
                bytes_per_cycle: 24.0,
                channels: 4,
            },
            tlb: TlbConfig { entries: 64, page_size: 4096, walk_latency: 30 },
            prefetch: PrefetchConfig::default(),
            freq_mhz: 2500,
            snoop_latency: 45,
        }
    }

    /// A deliberately tiny hierarchy for tests: 1 KiB 2-way L1,
    /// 4 KiB 4-way L2, 16 KiB 8-way L3, 8-entry TLB.
    pub fn small_test() -> Self {
        Self {
            l1d: CacheConfig {
                size_bytes: 1024,
                associativity: 2,
                line_size: 64,
                hit_latency: 4,
                replacement: ReplacementPolicy::Lru,
                write_miss: WriteMissPolicy::WriteAllocate,
            },
            l2: CacheConfig {
                size_bytes: 4096,
                associativity: 4,
                line_size: 64,
                hit_latency: 12,
                replacement: ReplacementPolicy::Lru,
                write_miss: WriteMissPolicy::WriteAllocate,
            },
            l3: CacheConfig {
                size_bytes: 16 * 1024,
                associativity: 8,
                line_size: 64,
                hit_latency: 30,
                replacement: ReplacementPolicy::Lru,
                write_miss: WriteMissPolicy::WriteAllocate,
            },
            dram: DramConfig { base_latency: 100, bytes_per_cycle: 16.0, channels: 2 },
            tlb: TlbConfig { entries: 8, page_size: 4096, walk_latency: 20 },
            prefetch: PrefetchConfig { enabled: false, ..PrefetchConfig::default() },
            freq_mhz: 2000,
            snoop_latency: 20,
        }
    }

    /// Validate all levels; panics on inconsistent geometry.
    pub fn validate(&self) {
        self.l1d.validate("L1D");
        self.l2.validate("L2");
        self.l3.validate("L3");
        assert_eq!(self.l1d.line_size, self.l2.line_size, "line sizes must match across levels");
        assert_eq!(self.l2.line_size, self.l3.line_size, "line sizes must match across levels");
        assert!(self.tlb.page_size.is_power_of_two(), "page size must be a power of two");
        assert!(self.dram.channels >= 1, "at least one DRAM channel");
        assert!(self.dram.bytes_per_cycle > 0.0, "DRAM bandwidth must be positive");
    }

    /// The common line size of the hierarchy.
    pub fn line_size(&self) -> u32 {
        self.l1d.line_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_preset_is_valid() {
        HierarchyConfig::haswell_like().validate();
    }

    #[test]
    fn small_preset_is_valid() {
        HierarchyConfig::small_test().validate();
    }

    #[test]
    fn num_sets() {
        let c = HierarchyConfig::haswell_like();
        assert_eq!(c.l1d.num_sets(), 64);
        assert_eq!(c.l2.num_sets(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_line_size_panics() {
        let mut c = HierarchyConfig::small_test();
        c.l1d.line_size = 48;
        c.l1d.validate("L1D");
    }

    #[test]
    #[should_panic(expected = "multiple of associativity")]
    fn invalid_size_panics() {
        let c = CacheConfig {
            size_bytes: 1000,
            associativity: 2,
            line_size: 64,
            hit_latency: 1,
            replacement: ReplacementPolicy::Lru,
            write_miss: WriteMissPolicy::WriteAllocate,
        };
        c.validate("X");
    }
}
