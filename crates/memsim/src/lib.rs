//! # mempersp-memsim — deterministic memory-hierarchy simulator
//!
//! This crate is the hardware substitute for the paper's evaluation
//! platform (a 24-core Intel Haswell node of the Jureca system). It
//! simulates, cycle-approximately and fully deterministically:
//!
//! * a configurable number of cores, each with **private L1D and L2**
//!   set-associative caches;
//! * a **shared, inclusive L3** cache;
//! * a **DRAM** model with a base latency plus a bandwidth-occupancy
//!   queue (so that many concurrent misses contend for channel time);
//! * per-core **data TLBs** with a page-walk penalty;
//! * an optional per-core **stream prefetcher** that trains on L2 line
//!   sequences and prefetches ahead on a detected constant stride;
//! * four replacement policies: true LRU, tree pseudo-LRU, FIFO, and a
//!   seeded pseudo-random policy.
//!
//! Every access returns an [`AccessResult`] carrying the serving
//! [`MemLevel`] ("data source" in PEBS parlance) and a latency in core
//! cycles — exactly the per-access information the PEBS hardware
//! reports and that the paper's toolchain consumes.
//!
//! ## Example
//!
//! ```
//! use mempersp_memsim::{MemorySystem, HierarchyConfig, AccessKind};
//!
//! let mut mem = MemorySystem::new(HierarchyConfig::small_test(), 1);
//! // First touch of a line comes from DRAM...
//! let first = mem.access(0, AccessKind::Load, 0x1000, 8, 0);
//! assert_eq!(first.source, mempersp_memsim::MemLevel::Dram);
//! // ...the second from L1.
//! let second = mem.access(0, AccessKind::Load, 0x1008, 8, first.latency as u64);
//! assert_eq!(second.source, mempersp_memsim::MemLevel::L1);
//! ```

pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod prefetch;
pub mod replacement;
pub mod stats;
pub mod tlb;

pub use cache::{Cache, LineMeta};
pub use config::{CacheConfig, DramConfig, HierarchyConfig, PrefetchConfig, TlbConfig, WriteMissPolicy};
pub use hierarchy::{
    AccessKind, AccessResult, BatchOp, CorePath, MemLevel, MemorySystem, PrivateResult, UncoreReq,
};
pub use prefetch::StreamPrefetcher;
pub use replacement::ReplacementPolicy;
pub use stats::{CacheStats, CoreStats, SystemStats};
pub use tlb::Tlb;

/// A simulated virtual address.
pub type Addr = u64;

/// Split an access of `size` bytes at `addr` into the cache lines it
/// touches. Returns the line-aligned addresses.
///
/// Accesses in the suite are at most a few dozen bytes, so at most a
/// handful of lines are produced.
pub fn lines_of_access(addr: Addr, size: u32, line_size: u32) -> impl Iterator<Item = Addr> {
    let mask = !(line_size as Addr - 1);
    let first = addr & mask;
    let last = (addr + size.max(1) as Addr - 1) & mask;
    let step = line_size as Addr;
    (0..).map(move |i| first + i * step).take_while(move |&a| a <= last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_access() {
        let lines: Vec<Addr> = lines_of_access(0x40, 8, 64).collect();
        assert_eq!(lines, vec![0x40]);
    }

    #[test]
    fn straddling_access() {
        let lines: Vec<Addr> = lines_of_access(0x7c, 8, 64).collect();
        assert_eq!(lines, vec![0x40, 0x80]);
    }

    #[test]
    fn zero_size_access_touches_one_line() {
        let lines: Vec<Addr> = lines_of_access(0x100, 0, 64).collect();
        assert_eq!(lines, vec![0x100]);
    }

    #[test]
    fn large_access_touches_every_line() {
        let lines: Vec<Addr> = lines_of_access(0, 256, 64).collect();
        assert_eq!(lines, vec![0, 64, 128, 192]);
    }

    #[test]
    fn unaligned_large_access() {
        let lines: Vec<Addr> = lines_of_access(60, 70, 64).collect();
        assert_eq!(lines, vec![0, 64, 128]);
    }
}
