//! A small fully-associative data TLB with true-LRU replacement.
//!
//! The TLB only affects the latency of an access (a miss charges the
//! page-walk penalty); there is no virtual-to-physical translation in
//! the simulator — caches are indexed by the simulated virtual address,
//! which is harmless because the suite never aliases pages.

use crate::config::TlbConfig;
use crate::Addr;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One-multiply hasher for virtual page numbers: the TLB lookup is on
/// the per-access critical path of the whole simulator, so SipHash is
/// too expensive and a Fibonacci-style mix is plenty for page keys.
#[derive(Default)]
struct VpnHasher(u64);

impl Hasher for VpnHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 29);
    }
}

/// Fully-associative TLB.
///
/// Entries live in a hash map keyed by virtual page number, with a
/// strictly increasing last-touch clock per entry. Replacement picks
/// the minimum clock — exactly the linear-scan true-LRU this replaces
/// (clocks are unique, so the victim is unambiguous and deterministic),
/// but a hit costs one hash probe instead of an O(entries) scan.
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    page_shift: u32,
    /// virtual page number → last-touch clock
    entries: HashMap<u64, u64, BuildHasherDefault<VpnHasher>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.page_size.is_power_of_two());
        assert!(cfg.entries >= 1);
        Self {
            page_shift: cfg.page_size.trailing_zeros(),
            cfg,
            entries: HashMap::default(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translate the page of `addr`; returns the extra latency charged
    /// (0 on hit, the walk latency on miss). The entry is installed on
    /// a miss.
    #[inline]
    pub fn access(&mut self, addr: Addr) -> u32 {
        self.clock += 1;
        let vpn = addr >> self.page_shift;
        if let Some(touch) = self.entries.get_mut(&vpn) {
            *touch = self.clock;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() >= self.cfg.entries as usize {
            // Replace the LRU entry (unique minimum clock; misses are
            // rare, so the scan is off the hot path).
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, &touch)| touch)
                .map(|(&vpn, _)| vpn)
                .expect("TLB has at least one entry");
            self.entries.remove(&lru);
        }
        self.entries.insert(vpn, self.clock);
        self.cfg.walk_latency
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently cached translations.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: u32) -> Tlb {
        Tlb::new(TlbConfig { entries, page_size: 4096, walk_latency: 25 })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut t = tlb(4);
        assert_eq!(t.access(0x1234), 25);
        assert_eq!(t.access(0x1FFF), 0, "same page must hit");
        assert_eq!(t.access(0x2000), 25, "next page must miss");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tlb(2);
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // touch page 0 -> page 1 is LRU
        t.access(0x2000); // page 2 evicts page 1
        assert_eq!(t.access(0x0000), 0, "page 0 still resident");
        assert_eq!(t.access(0x1000), 25, "page 1 was evicted");
    }

    #[test]
    fn capacity_bounded() {
        let mut t = tlb(8);
        for p in 0..100u64 {
            t.access(p << 12);
        }
        assert_eq!(t.resident(), 8);
    }

    #[test]
    fn huge_pages_extend_reach() {
        // 2 MiB pages: a 16 MiB stream fits 8 entries; 4 KiB pages
        // with the same footprint thrash.
        let mut huge = Tlb::new(TlbConfig { entries: 8, page_size: 2 << 20, walk_latency: 25 });
        let mut small = Tlb::new(TlbConfig { entries: 8, page_size: 4096, walk_latency: 25 });
        for rep in 0..2 {
            for addr in (0..16u64 << 20).step_by(4096) {
                huge.access(addr);
                small.access(addr);
                let _ = rep;
            }
        }
        assert_eq!(huge.misses(), 8, "one walk per huge page, then resident");
        assert!(small.misses() as f64 / (small.misses() + small.hits()) as f64 > 0.9);
    }
}
