//! A small fully-associative data TLB with true-LRU replacement.
//!
//! The TLB only affects the latency of an access (a miss charges the
//! page-walk penalty); there is no virtual-to-physical translation in
//! the simulator — caches are indexed by the simulated virtual address,
//! which is harmless because the suite never aliases pages.

use crate::config::TlbConfig;
use crate::Addr;

/// Fully-associative TLB.
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    page_shift: u32,
    /// (virtual page number, last-touch clock)
    entries: Vec<(u64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.page_size.is_power_of_two());
        assert!(cfg.entries >= 1);
        Self {
            page_shift: cfg.page_size.trailing_zeros(),
            cfg,
            entries: Vec::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translate the page of `addr`; returns the extra latency charged
    /// (0 on hit, the walk latency on miss). The entry is installed on
    /// a miss.
    pub fn access(&mut self, addr: Addr) -> u32 {
        self.clock += 1;
        let vpn = addr >> self.page_shift;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            e.1 = self.clock;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() < self.cfg.entries as usize {
            self.entries.push((vpn, self.clock));
        } else {
            // Replace the LRU entry.
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("TLB has at least one entry");
            self.entries[lru] = (vpn, self.clock);
        }
        self.cfg.walk_latency
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently cached translations.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: u32) -> Tlb {
        Tlb::new(TlbConfig { entries, page_size: 4096, walk_latency: 25 })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut t = tlb(4);
        assert_eq!(t.access(0x1234), 25);
        assert_eq!(t.access(0x1FFF), 0, "same page must hit");
        assert_eq!(t.access(0x2000), 25, "next page must miss");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tlb(2);
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // touch page 0 -> page 1 is LRU
        t.access(0x2000); // page 2 evicts page 1
        assert_eq!(t.access(0x0000), 0, "page 0 still resident");
        assert_eq!(t.access(0x1000), 25, "page 1 was evicted");
    }

    #[test]
    fn capacity_bounded() {
        let mut t = tlb(8);
        for p in 0..100u64 {
            t.access(p << 12);
        }
        assert_eq!(t.resident(), 8);
    }

    #[test]
    fn huge_pages_extend_reach() {
        // 2 MiB pages: a 16 MiB stream fits 8 entries; 4 KiB pages
        // with the same footprint thrash.
        let mut huge = Tlb::new(TlbConfig { entries: 8, page_size: 2 << 20, walk_latency: 25 });
        let mut small = Tlb::new(TlbConfig { entries: 8, page_size: 4096, walk_latency: 25 });
        for rep in 0..2 {
            for addr in (0..16u64 << 20).step_by(4096) {
                huge.access(addr);
                small.access(addr);
                let _ = rep;
            }
        }
        assert_eq!(huge.misses(), 8, "one walk per huge page, then resident");
        assert!(small.misses() as f64 / (small.misses() + small.hits()) as f64 > 0.9);
    }
}
