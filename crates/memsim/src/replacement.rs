//! Replacement policies for set-associative caches.
//!
//! The policy object is per-*set* state plus the victim-selection and
//! touch-update logic. Four policies are provided:
//!
//! * [`ReplacementPolicy::Lru`] — true least-recently-used, tracked with
//!   a per-line timestamp;
//! * [`ReplacementPolicy::TreePlru`] — the tree pseudo-LRU used by real
//!   L1/L2 caches (one bit per internal node of a binary tree over the
//!   ways);
//! * [`ReplacementPolicy::Fifo`] — round-robin over ways;
//! * [`ReplacementPolicy::Random`] — seeded xorshift-based choice,
//!   deterministic across runs with the same seed.

use serde::{Deserialize, Serialize};

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    Lru,
    TreePlru,
    Fifo,
    Random,
}

/// Per-set replacement state. One of these per cache set.
#[derive(Debug, Clone)]
pub enum SetState {
    /// Timestamp of the last touch of each way.
    Lru { last_touch: Vec<u64> },
    /// One bit per internal node of a complete binary tree whose leaves
    /// are the ways; `ways` is rounded up to a power of two internally.
    TreePlru { bits: Vec<bool>, ways: u32 },
    /// Next way to replace.
    Fifo { next: u32 },
    /// xorshift64* state.
    Random { state: u64 },
}

impl SetState {
    /// Create fresh state for a set with `ways` ways. `seed` is only
    /// used by the random policy and must differ per set for decent
    /// behaviour (the cache passes `set_index`-derived seeds).
    pub fn new(policy: ReplacementPolicy, ways: u32, seed: u64) -> Self {
        match policy {
            ReplacementPolicy::Lru => SetState::Lru { last_touch: vec![0; ways as usize] },
            ReplacementPolicy::TreePlru => {
                let leaves = ways.next_power_of_two().max(2);
                SetState::TreePlru { bits: vec![false; (leaves - 1) as usize], ways }
            }
            ReplacementPolicy::Fifo => SetState::Fifo { next: 0 },
            ReplacementPolicy::Random => SetState::Random { state: seed | 1 },
        }
    }

    /// Record that `way` was accessed at logical time `now`.
    pub fn touch(&mut self, way: u32, now: u64) {
        match self {
            SetState::Lru { last_touch } => last_touch[way as usize] = now,
            SetState::TreePlru { bits, ways } => {
                // Walk from the root to the leaf `way`, flipping each
                // node to point *away* from the taken path.
                let leaves = ways.next_power_of_two().max(2);
                let mut node = 0usize; // root
                let mut lo = 0u32;
                let mut hi = leaves; // exclusive
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = way >= mid;
                    bits[node] = !go_right; // point to the other half
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
            SetState::Fifo { .. } => {}
            SetState::Random { .. } => {}
        }
    }

    /// Choose a victim way among `ways` ways (all full). Also advances
    /// internal state where the policy requires it.
    pub fn victim(&mut self, ways: u32) -> u32 {
        match self {
            SetState::Lru { last_touch } => {
                let mut best = 0u32;
                let mut best_t = u64::MAX;
                for (i, &t) in last_touch.iter().enumerate().take(ways as usize) {
                    if t < best_t {
                        best_t = t;
                        best = i as u32;
                    }
                }
                best
            }
            SetState::TreePlru { bits, ways: w } => {
                let leaves = w.next_power_of_two().max(2);
                let mut node = 0usize;
                let mut lo = 0u32;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = bits[node];
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                // If ways is not a power of two the PLRU walk may land
                // on a phantom leaf; clamp to a real way.
                lo.min(ways - 1)
            }
            SetState::Fifo { next } => {
                let v = *next % ways;
                *next = (*next + 1) % ways;
                v
            }
            SetState::Random { state } => {
                // xorshift64*
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                ((x.wrapping_mul(0x2545F4914F6CDD1D)) >> 33) as u32 % ways
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = SetState::new(ReplacementPolicy::Lru, 4, 0);
        s.touch(0, 10);
        s.touch(1, 20);
        s.touch(2, 5);
        s.touch(3, 30);
        assert_eq!(s.victim(4), 2);
        s.touch(2, 40);
        assert_eq!(s.victim(4), 0);
    }

    #[test]
    fn fifo_cycles_through_ways() {
        let mut s = SetState::new(ReplacementPolicy::Fifo, 3, 0);
        assert_eq!(s.victim(3), 0);
        assert_eq!(s.victim(3), 1);
        assert_eq!(s.victim(3), 2);
        assert_eq!(s.victim(3), 0);
    }

    #[test]
    fn plru_never_evicts_just_touched_way() {
        let mut s = SetState::new(ReplacementPolicy::TreePlru, 8, 0);
        for w in 0..8 {
            s.touch(w, w as u64);
            assert_ne!(s.victim(8), w, "PLRU must not victimize the MRU way");
        }
    }

    #[test]
    fn plru_handles_non_power_of_two_ways() {
        let mut s = SetState::new(ReplacementPolicy::TreePlru, 20, 0);
        for w in 0..20 {
            s.touch(w, w as u64);
            let v = s.victim(20);
            assert!(v < 20);
            assert_ne!(v, w);
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = SetState::new(ReplacementPolicy::Random, 8, 42);
        let mut b = SetState::new(ReplacementPolicy::Random, 8, 42);
        for _ in 0..100 {
            assert_eq!(a.victim(8), b.victim(8));
        }
    }

    #[test]
    fn random_victims_in_range() {
        let mut s = SetState::new(ReplacementPolicy::Random, 5, 7);
        for _ in 0..1000 {
            assert!(s.victim(5) < 5);
        }
    }

    #[test]
    fn plru_cycles_cover_all_ways() {
        // Repeatedly evicting without touching must eventually visit
        // every way (tree PLRU flips towards unvisited halves only on
        // touch, but victim selection is stable; emulate fill pattern).
        let mut s = SetState::new(ReplacementPolicy::TreePlru, 4, 0);
        let mut seen = [false; 4];
        for i in 0..16 {
            let v = s.victim(4);
            seen[v as usize] = true;
            s.touch(v, i);
        }
        assert!(seen.iter().all(|&x| x), "all ways should be used: {seen:?}");
    }
}
