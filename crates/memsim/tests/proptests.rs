//! Property-based tests for the memory-hierarchy simulator.

use mempersp_memsim::{
    lines_of_access, AccessKind, Cache, CacheConfig, HierarchyConfig, MemorySystem,
    ReplacementPolicy, WriteMissPolicy,
};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![Just(AccessKind::Load), Just(AccessKind::Store)]
}

proptest! {
    /// Every byte of [addr, addr+size) lies in some returned line and
    /// every returned line intersects the access.
    #[test]
    fn lines_cover_access_exactly(addr in 0u64..1u64 << 40, size in 1u32..512) {
        let line = 64u32;
        let lines: Vec<u64> = lines_of_access(addr, size, line).collect();
        prop_assert!(!lines.is_empty());
        // Lines are line-aligned, ascending, contiguous.
        for w in lines.windows(2) {
            prop_assert_eq!(w[1], w[0] + line as u64);
        }
        for &l in &lines {
            prop_assert_eq!(l % line as u64, 0);
            // Intersects [addr, addr+size).
            prop_assert!(l < addr + size as u64 && l + line as u64 > addr);
        }
        // First and last bytes covered.
        prop_assert_eq!(lines[0], addr & !(line as u64 - 1));
        prop_assert_eq!(*lines.last().unwrap(), (addr + size as u64 - 1) & !(line as u64 - 1));
    }

    /// A cache never holds more lines than its capacity, whatever the
    /// policy and access mix.
    #[test]
    fn cache_capacity_invariant(
        ops in prop::collection::vec((0u64..1 << 16, any::<bool>()), 1..500),
        policy in prop_oneof![
            Just(ReplacementPolicy::Lru),
            Just(ReplacementPolicy::TreePlru),
            Just(ReplacementPolicy::Fifo),
            Just(ReplacementPolicy::Random),
        ],
    ) {
        let cfg = CacheConfig {
            size_bytes: 2048,
            associativity: 4,
            line_size: 64,
            hit_latency: 1,
            replacement: policy,
            write_miss: WriteMissPolicy::WriteAllocate,
        };
        let capacity_lines = (cfg.size_bytes / cfg.line_size as u64) as usize;
        let mut c = Cache::new(cfg);
        for (addr, store) in ops {
            let line = addr & !63;
            if matches!(c.access(line, store), mempersp_memsim::cache::LookupOutcome::Miss) {
                c.fill(line, store, false);
            }
            prop_assert!(c.resident_lines() <= capacity_lines);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses());
    }

    /// After any access, immediately re-accessing the same address is
    /// an L1 hit (the line was just installed), and its latency equals
    /// the L1 hit latency.
    #[test]
    fn reaccess_is_l1_hit(addr in 0u64..1 << 30, kind in arb_kind()) {
        let mut m = MemorySystem::new(HierarchyConfig::small_test(), 1);
        m.access(0, kind, addr, 8, 0);
        let r = m.access(0, AccessKind::Load, addr, 8, 100);
        prop_assert_eq!(r.source, mempersp_memsim::MemLevel::L1);
        prop_assert_eq!(r.latency, m.config().l1d.hit_latency);
    }

    /// Serving-level counters always sum to the number of accesses, and
    /// latency is at least the L1 hit latency per access.
    #[test]
    fn stats_accounting_consistent(
        ops in prop::collection::vec((0u64..1 << 20, arb_kind()), 1..300),
    ) {
        let mut m = MemorySystem::new(HierarchyConfig::small_test(), 2);
        for (i, (addr, kind)) in ops.iter().enumerate() {
            m.access(i % 2, *kind, *addr, 8, i as u64 * 7);
        }
        let s = m.stats();
        for c in &s.cores {
            prop_assert_eq!(
                c.served_l1 + c.served_l2 + c.served_l3 + c.served_dram,
                c.loads + c.stores
            );
            prop_assert!(c.total_latency >= (c.loads + c.stores) * 4);
            // Page-straddling accesses translate twice, so TLB events
            // are at least one per access but may exceed it.
            prop_assert!(c.tlb_hits + c.tlb_misses >= c.loads + c.stores);
        }
        let total = s.total_cores();
        prop_assert_eq!(total.accesses() as usize, ops.len());
    }

    /// Determinism: the same access sequence produces identical stats.
    #[test]
    fn deterministic_replay(
        ops in prop::collection::vec((0u64..1 << 22, arb_kind(), 1u32..16), 1..200),
    ) {
        let run = || {
            let mut m = MemorySystem::new(HierarchyConfig::small_test(), 1);
            let mut latencies = Vec::new();
            for (i, (addr, kind, size)) in ops.iter().enumerate() {
                latencies.push(m.access(0, *kind, *addr, *size, i as u64 * 3).latency);
            }
            (latencies, m.stats())
        };
        let (la, sa) = run();
        let (lb, sb) = run();
        prop_assert_eq!(la, lb);
        prop_assert_eq!(sa, sb);
    }

    /// Coherence invariant: immediately after a store by core A, no
    /// other core's private caches hold the line (single-writer), and
    /// after any access the issuing core holds it (write-allocate).
    #[test]
    fn single_writer_invariant(
        ops in prop::collection::vec((0usize..3, any::<bool>(), 0u64..16), 1..400),
    ) {
        let mut m = MemorySystem::new(HierarchyConfig::small_test(), 3);
        for (i, &(core, is_store, slot)) in ops.iter().enumerate() {
            let addr = slot * 64;
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            m.access(core, kind, addr, 8, i as u64 * 3);
            prop_assert!(m.core_holds_line(core, addr), "issuer holds the line");
            if is_store {
                for other in 0..3 {
                    if other != core {
                        prop_assert!(
                            !m.core_holds_line(other, addr),
                            "op {i}: core {other} still holds line stored by {core}"
                        );
                    }
                }
            }
        }
    }

    /// `access_batch` is observably identical to the equivalent run of
    /// single `access` calls: same per-op results and same final
    /// statistics, for any op mix, batch split, and core count.
    #[test]
    fn access_batch_equals_singles(
        ops in prop::collection::vec(
            (0usize..3, 0u64..1 << 22, arb_kind(), 1u32..64),
            1..300,
        ),
        split in 1usize..40,
    ) {
        use mempersp_memsim::BatchOp;
        let mut single = MemorySystem::new(HierarchyConfig::small_test(), 3);
        let mut batched = MemorySystem::new(HierarchyConfig::small_test(), 3);
        let mut out = Vec::new();
        // Issue in chunks of `split` ops; each chunk is further grouped
        // into per-core runs (a batch targets one core).
        for (ci, chunk) in ops.chunks(split).enumerate() {
            let now = ci as u64 * 11;
            let mut i = 0usize;
            while i < chunk.len() {
                let core = chunk[i].0;
                let mut j = i;
                while j < chunk.len() && chunk[j].0 == core {
                    j += 1;
                }
                let batch: Vec<BatchOp> = chunk[i..j]
                    .iter()
                    .map(|&(_, addr, kind, size)| BatchOp { kind, addr, size })
                    .collect();
                out.clear();
                batched.access_batch(core, &batch, now, &mut out);
                for (k, &(_, addr, kind, size)) in chunk[i..j].iter().enumerate() {
                    let want = single.access(core, kind, addr, size, now);
                    prop_assert_eq!(out[k], want, "op {} diverged", i + k);
                }
                i = j;
            }
        }
        prop_assert_eq!(single.stats(), batched.stats());
    }

    /// Monotone hierarchy: a deeper data source never has a smaller
    /// latency than a shallower one within the same access stream.
    #[test]
    fn deeper_source_costs_more(
        ops in prop::collection::vec(0u64..1 << 18, 1..300),
    ) {
        use mempersp_memsim::MemLevel;
        let mut m = MemorySystem::new(HierarchyConfig::small_test(), 1);
        let mut max_lat = std::collections::HashMap::new();
        let mut min_lat = std::collections::HashMap::new();
        for (i, addr) in ops.iter().enumerate() {
            let r = m.access(0, AccessKind::Load, *addr, 8, i as u64 * 2);
            // Exclude TLB-miss samples: the walk penalty can invert the
            // level ordering for nearby levels.
            if r.tlb_miss {
                continue;
            }
            let e = max_lat.entry(r.source).or_insert(0u32);
            *e = (*e).max(r.latency);
            let e = min_lat.entry(r.source).or_insert(u32::MAX);
            *e = (*e).min(r.latency);
        }
        for (a, b) in [(MemLevel::L1, MemLevel::L2), (MemLevel::L2, MemLevel::L3)] {
            if let (Some(ma), Some(mb)) = (max_lat.get(&a), min_lat.get(&b)) {
                prop_assert!(ma <= mb, "{a:?} max {ma} vs {b:?} min {mb}");
            }
        }
    }
}
