//! Chunked, indexed binary trace store with cached out-of-core
//! queries.
//!
//! The text `.prv` container the rest of the workspace emits is easy
//! to inspect but expensive to analyze: every query re-parses the
//! whole file. This crate adds a second container, `.mps`, built for
//! the access pattern the memory-perspective analyses actually have —
//! selective reads (one region, one object, one time window) over
//! traces too large to keep parsed in memory:
//!
//! - [`codec`] — per-event varint encoding with zigzag timestamp
//!   deltas; [`lz`] — an in-tree LZ77 pass over each chunk.
//! - [`writer`] — [`writer::StoreWriter`] streams events into ~64 KiB
//!   chunks, appending as it goes (O(chunk) memory), and seals the
//!   file with a footer index + header blob. It implements
//!   `mempersp_extrae::stream_writer::EventSink`, so a live
//!   `StreamWriter` run can tee a binary store next to its text trace.
//! - [`chunk`] — the per-chunk [`chunk::ChunkMeta`] footer entry:
//!   time range, core bitmap, event-kind bitmap, object-id range.
//! - [`reader`] — [`reader::StoreReader`] answers
//!   `mempersp_extrae::query::Query`s by pruning chunks against the
//!   footer (predicate pushdown), decoding survivors through a
//!   sharded LRU [`cache`], optionally in parallel.
//! - [`source`] — [`source::MpsSource`] plugs the store into the
//!   `TraceSource` trait; [`source::open_trace_source`] sniffs the
//!   file magic and serves either format.
//!
//! Round-trip guarantee: the store keeps the exact
//! `header_sections()` text of the originating trace, and the chunk
//! codec is lossless, so `prv → mps → prv` reproduces the text trace
//! byte-identically.

pub mod cache;
pub mod chunk;
pub mod codec;
pub mod lz;
pub mod reader;
pub mod source;
pub mod varint;
pub mod writer;

pub use cache::{CacheConfig, CacheStats, ShardedCache};
pub use chunk::{ChunkMeta, Compression};
pub use reader::StoreReader;
pub use source::{open_trace_source, MpsSource};
pub use varint::CodecError;
pub use writer::{write_store, write_store_chunked, StoreSummary, StoreWriter, DEFAULT_CHUNK_BYTES};
