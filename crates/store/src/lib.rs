//! Chunked, indexed binary trace store with cached out-of-core
//! queries.
//!
//! The text `.prv` container the rest of the workspace emits is easy
//! to inspect but expensive to analyze: every query re-parses the
//! whole file. This crate adds a second container, `.mps`, built for
//! the access pattern the memory-perspective analyses actually have —
//! selective reads (one region, one object, one time window) over
//! traces too large to keep parsed in memory:
//!
//! - [`codec`] — columnar (v2) chunk encoding: tag/timestamp/core
//!   columns plus one varint payload stream per event class, decoded
//!   in batch with the word-at-a-time [`varint`] reader; [`lz`] — an
//!   in-tree LZ77 pass over each chunk.
//! - [`writer`] — [`writer::StoreWriter`] streams events into ~64 KiB
//!   chunks, appending as it goes (O(chunk) memory), optionally
//!   compressing on a bounded worker pool with deterministic in-order
//!   commit, and seals the file with a footer index + header blob. It
//!   implements `mempersp_extrae::stream_writer::EventSink`, so a live
//!   `StreamWriter` run can tee a binary store next to its text trace.
//! - [`chunk`] — the per-chunk [`chunk::ChunkMeta`] footer entry:
//!   time range, core bitmap, event-kind bitmap, object-id range.
//! - [`reader`] — [`reader::StoreReader`] `mmap`s the file
//!   ([`mmap`]) and answers `mempersp_extrae::query::Query`s by
//!   pruning chunks against the footer (predicate pushdown), decoding
//!   survivors zero-copy from the mapping (raw chunks) or through the
//!   sharded byte-block [`cache`] (LZ chunks), optionally in parallel.
//! - [`shard`] — one logical trace spread over
//!   `trace.mps.d/shard-NNNN.mps` files behind a manifest; queries
//!   fan out across shards.
//! - [`source`] — [`source::MpsSource`] plugs single-file and sharded
//!   stores into the `TraceSource` trait;
//!   [`source::open_trace_source`] sniffs the path and serves any
//!   format.
//!
//! Round-trip guarantee: the store keeps the exact
//! `header_sections()` text of the originating trace, and the chunk
//! codec is lossless, so `prv → mps → prv` reproduces the text trace
//! byte-identically.
//!
//! # Durability (format v3)
//!
//! The current container, `MPSTORE3`, is crash-safe end to end:
//!
//! - [`crc`] — in-tree CRC32C (SSE4.2-accelerated) checksums every
//!   chunk frame, chunk payload, the header blob and the footer
//!   index, so truncation and bit-rot are detectable *per chunk*.
//! - Every chunk is preceded by a self-delimiting
//!   [`chunk::ChunkFrame`], so a file whose footer never hit the disk
//!   is recoverable by forward-scanning the frames.
//! - The writer finalizes atomically: `<path>.tmp` + fsync + rename +
//!   parent-dir fsync. A crashed write leaves no file at the final
//!   path, and a sharded trace's manifest commits last.
//! - [`reader::RecoveryMode::Salvage`] reads degrade gracefully —
//!   damaged chunks are skipped and reported, not fatal.
//! - [`recover`] — `fsck` (full verification + damage map) and
//!   `recover` (salvage into a clean v3 store) engines.
//! - [`fault`] — deterministic IO fault injection ([`fault::FailingFile`])
//!   driving the durability test suite.
//!
//! v1 and v2 files remain readable (without per-chunk checksums).

pub mod cache;
pub mod cancel;
pub mod chunk;
pub mod codec;
pub mod codec_v4;
pub mod crc;
pub mod fault;
pub mod lz;
pub mod mmap;
pub mod reader;
pub mod recover;
pub mod shard;
pub mod source;
pub mod svb;
pub mod varint;
pub mod writer;

pub use cache::{CacheConfig, CacheStats, ShardedCache};
pub use cancel::CancelToken;
pub use chunk::{ChunkFrame, ChunkMeta, Compression, FRAME_LEN};
pub use crc::{crc32c, Crc32c};
pub use fault::{FailingFile, FaultConfig, FaultPlan, StoreFile};
pub use reader::{ChunkDamage, RecoveryMode, StoreReader, PARALLEL_MIN_CHUNKS};
pub use recover::{check_clobber, fsck_store, recover_store, FsckReport, RecoverReport};
pub use shard::{
    write_store_sharded, ShardedReader, ShardedWriter, DEFAULT_EVENTS_PER_SHARD, SHARD_DIR_SUFFIX,
};
pub use source::{open_trace_source, open_trace_source_with, MpsSource};
pub use svb::{detected_simd_level, simd_level, simd_level_name, SimdLevel};
pub use varint::CodecError;
pub use writer::{
    write_store, write_store_chunked, write_store_format, write_store_v1, write_store_v2,
    write_store_v3, write_store_with, StoreFormat, StoreSummary, StoreWriter, DEFAULT_CHUNK_BYTES,
    DEFAULT_INFLIGHT_PER_THREAD,
};
