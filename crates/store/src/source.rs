//! [`TraceSource`] adapter for `.mps` stores — single-file or sharded
//! — and a format-sniffing opener so downstream analyses (folding,
//! object stats, the CLI) accept any container without caring which
//! one they got.

use crate::cache::{CacheConfig, CacheStats};
use crate::cancel::CancelToken;
use crate::reader::{RecoveryMode, StoreReader};
use crate::shard::{is_shard_dir, ShardedReader};
use mempersp_extrae::events::TraceEvent;
use mempersp_extrae::query::Query;
use mempersp_extrae::trace_source::{MaterializedSource, ScanStats, TraceSource};
use mempersp_extrae::tracer::Trace;
use std::io::{self, Read as _};
use std::path::Path;

/// A `.mps` store behind the [`TraceSource`] trait. Queries push
/// predicates down into the chunk index instead of materializing the
/// whole trace. A `trace.mps.d/` shard directory opens the same way a
/// single file does.
pub struct MpsSource {
    inner: Inner,
}

enum Inner {
    // Boxed: a StoreReader (cache shards + footer) dwarfs the
    // ShardedReader variant's Vec pointer.
    Single(Box<StoreReader>),
    Sharded(ShardedReader),
}

impl MpsSource {
    /// Open a single `.mps` file or a `trace.mps.d/` shard directory
    /// (strict mode, checksum verification on).
    pub fn open(path: &Path) -> io::Result<MpsSource> {
        Self::open_with_options(path, RecoveryMode::Strict, true)
    }

    /// [`MpsSource::open`] with an explicit failure policy and
    /// checksum-verification toggle (`query --no-verify` benchmarks
    /// pass `verify = false`).
    pub fn open_with_options(
        path: &Path,
        mode: RecoveryMode,
        verify: bool,
    ) -> io::Result<MpsSource> {
        let inner = if path.is_dir() {
            let mut s = ShardedReader::open_with_mode(path, CacheConfig::default(), mode)?;
            s.set_verify(verify);
            Inner::Sharded(s)
        } else {
            let mut r = StoreReader::open_with_mode(path, CacheConfig::default(), mode)?;
            r.set_verify(verify);
            Inner::Single(Box::new(r))
        };
        Ok(MpsSource { inner })
    }

    /// Every defect diagnosed so far (salvage notes plus per-chunk
    /// damage), as printable lines.
    pub fn damage_report(&self) -> Vec<String> {
        match &self.inner {
            Inner::Single(r) => r.damage_report().iter().map(|d| d.to_string()).collect(),
            Inner::Sharded(s) => s.damage_report(),
        }
    }

    /// The single-file reader, when this source is not sharded (chunk
    /// index, decode counters, cache stats).
    pub fn reader(&self) -> Option<&StoreReader> {
        match &self.inner {
            Inner::Single(r) => Some(r),
            Inner::Sharded(_) => None,
        }
    }

    /// Shard count: 1 for a single-file store.
    pub fn num_shards(&self) -> usize {
        match &self.inner {
            Inner::Single(_) => 1,
            Inner::Sharded(s) => s.num_shards(),
        }
    }

    /// Total events across all chunks (and shards).
    pub fn num_events(&self) -> u64 {
        match &self.inner {
            Inner::Single(r) => r.num_events(),
            Inner::Sharded(s) => s.num_events(),
        }
    }

    /// The header trace (empty event list).
    pub fn store_header(&self) -> &Trace {
        match &self.inner {
            Inner::Single(r) => r.header(),
            Inner::Sharded(s) => s.header(),
        }
    }

    /// Run a query sequentially.
    pub fn query(&self, q: &Query) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        match &self.inner {
            Inner::Single(r) => r.query(q),
            Inner::Sharded(s) => s.query(q),
        }
    }

    /// [`MpsSource::query`] with a cancellation token checked at every
    /// chunk boundary.
    pub fn query_cancel(
        &self,
        q: &Query,
        cancel: &CancelToken,
    ) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        match &self.inner {
            Inner::Single(r) => r.query_cancel(q, cancel),
            Inner::Sharded(s) => s.query_cancel(q, cancel),
        }
    }

    /// Block-cache counters (summed across shards for a sharded store).
    pub fn cache_stats(&self) -> CacheStats {
        match &self.inner {
            Inner::Single(r) => r.cache_stats(),
            Inner::Sharded(s) => s.cache_stats(),
        }
    }

    /// Store format version (the max across shards for a sharded store).
    pub fn format_version(&self) -> u32 {
        match &self.inner {
            Inner::Single(r) => r.format_version(),
            Inner::Sharded(s) => {
                s.shard_readers().map(|(_, r)| r.format_version()).max().unwrap_or(0)
            }
        }
    }

    /// Run a query across `threads` workers (chunks for a single
    /// file, shards for a sharded trace); same result as
    /// [`MpsSource::query`].
    pub fn query_parallel(&self, q: &Query, threads: usize) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        match &self.inner {
            Inner::Single(r) => r.query_parallel(q, threads),
            Inner::Sharded(s) => s.query_parallel(q, threads),
        }
    }

    /// Run several queries in one pass over each chunk.
    pub fn query_multi(&self, qs: &[Query]) -> io::Result<(Vec<Vec<TraceEvent>>, ScanStats)> {
        match &self.inner {
            Inner::Single(r) => r.query_multi(qs),
            Inner::Sharded(s) => s.query_multi(qs),
        }
    }

    fn materialize_inner(&self) -> io::Result<Trace> {
        match &self.inner {
            Inner::Single(r) => r.materialize(),
            Inner::Sharded(s) => s.materialize(),
        }
    }
}

impl TraceSource for MpsSource {
    fn header(&mut self) -> io::Result<Trace> {
        Ok(self.store_header().clone())
    }

    fn scan(
        &mut self,
        query: &Query,
        sink: &mut dyn FnMut(TraceEvent),
    ) -> io::Result<ScanStats> {
        let (events, stats) = self.query(query)?;
        for e in events {
            sink(e);
        }
        Ok(stats)
    }

    fn format_name(&self) -> &'static str {
        match &self.inner {
            Inner::Single(_) => "mps",
            Inner::Sharded(_) => "mps.d",
        }
    }

    fn materialize(&mut self) -> io::Result<Trace> {
        self.materialize_inner()
    }
}

/// Open a trace by path. A directory with a shard manifest is a
/// sharded store; a file leading with a store magic (`MPSTORE4`,
/// `MPSTORE3`, `MPSTORE2` or `MPSTORE1`) is a binary store; anything
/// else is parsed as a text `.prv` trace.
pub fn open_trace_source(path: &Path) -> io::Result<Box<dyn TraceSource>> {
    open_trace_source_with(path, RecoveryMode::Strict, true)
}

/// [`open_trace_source`] with an explicit failure policy and
/// checksum-verification toggle (both only meaningful for `.mps`).
pub fn open_trace_source_with(
    path: &Path,
    mode: RecoveryMode,
    verify: bool,
) -> io::Result<Box<dyn TraceSource>> {
    if is_shard_dir(path) || (path.is_dir() && mode == RecoveryMode::Salvage) {
        return Ok(Box::new(MpsSource::open_with_options(path, mode, verify)?));
    }
    let mut file = std::fs::File::open(path).map_err(|e| {
        io::Error::new(e.kind(), format!("opening trace {}: {e}", path.display()))
    })?;
    let mut head = [0u8; 8];
    let n = file.read(&mut head)?;
    drop(file);
    if n == 8
        && (&head == crate::writer::MAGIC_V4
            || &head == crate::writer::MAGIC
            || &head == crate::writer::MAGIC_V2
            || &head == crate::writer::MAGIC_V1)
    {
        return Ok(Box::new(MpsSource::open_with_options(path, mode, verify)?));
    }
    Ok(Box::new(MaterializedSource::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::write_store_sharded;
    use crate::writer::write_store_chunked;
    use mempersp_extrae::query::EventClass;
    use mempersp_extrae::trace_format::{save_trace, write_trace};
    use mempersp_extrae::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_store_s_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trace() -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 2);
        let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
        for i in 0..2000u64 {
            t.enter((i % 2) as usize, "R", c, i * 10);
            t.exit((i % 2) as usize, "R", c, i * 10 + 5);
        }
        t.finish("source test")
    }

    #[test]
    fn sniffer_dispatches_on_magic() {
        let t = trace();
        let prv = tmp("sniff.prv");
        let mps = tmp("sniff.mps");
        save_trace(&prv, &t).unwrap();
        write_store_chunked(&mps, &t, 4096).unwrap();

        let mut p = open_trace_source(&prv).unwrap();
        let mut m = open_trace_source(&mps).unwrap();
        assert_eq!(p.format_name(), "prv");
        assert_eq!(m.format_name(), "mps");
        assert_eq!(p.materialize().unwrap().events, m.materialize().unwrap().events);
        std::fs::remove_file(&prv).ok();
        std::fs::remove_file(&mps).ok();
    }

    #[test]
    fn sniffer_dispatches_on_shard_dir() {
        let t = trace();
        let dir = tmp("sniff.mps.d");
        std::fs::remove_dir_all(&dir).ok();
        write_store_sharded(&dir, &t, 4096, 1, 1500).unwrap();
        let mut s = open_trace_source(&dir).unwrap();
        assert_eq!(s.format_name(), "mps.d");
        assert_eq!(s.materialize().unwrap().events, t.events);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn filtered_scan_agrees_across_formats() {
        let t = trace();
        let prv = tmp("agree.prv");
        let mps = tmp("agree.mps");
        save_trace(&prv, &t).unwrap();
        write_store_chunked(&mps, &t, 4096).unwrap();

        let q = Query::all().in_time(0, 3000).with_kinds(&[EventClass::RegionEnter]);
        let mut p = open_trace_source(&prv).unwrap();
        let mut m = open_trace_source(&mps).unwrap();
        let (tp, _) = p.filtered(&q).unwrap();
        let (tm, sm) = m.filtered(&q).unwrap();
        assert_eq!(tp.events, tm.events);
        assert!(sm.chunks_skipped > 0, "selective query should prune chunks: {sm:?}");
        std::fs::remove_file(&prv).ok();
        std::fs::remove_file(&mps).ok();
    }

    #[test]
    fn round_trip_prv_mps_prv_is_byte_identical() {
        let t = trace();
        let prv_text = write_trace(&t);
        let mps = tmp("rt.mps");
        write_store_chunked(&mps, &t, 4096).unwrap();
        let mut m = open_trace_source(&mps).unwrap();
        let back = m.materialize().unwrap();
        assert_eq!(write_trace(&back), prv_text);
        std::fs::remove_file(&mps).ok();
    }

    #[test]
    fn round_trip_prv_sharded_mps_prv_is_byte_identical() {
        let t = trace();
        let prv_text = write_trace(&t);
        let dir = tmp("rt.mps.d");
        std::fs::remove_dir_all(&dir).ok();
        write_store_sharded(&dir, &t, 4096, 2, 1000).unwrap();
        let mut m = open_trace_source(&dir).unwrap();
        let back = m.materialize().unwrap();
        assert_eq!(write_trace(&back), prv_text);
        std::fs::remove_dir_all(&dir).ok();
    }
}
