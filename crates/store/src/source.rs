//! [`TraceSource`] adapter for `.mps` stores, and a format-sniffing
//! opener so downstream analyses (folding, object stats, the CLI)
//! accept either container without caring which one they got.

use crate::reader::StoreReader;
use mempersp_extrae::events::TraceEvent;
use mempersp_extrae::query::Query;
use mempersp_extrae::trace_source::{MaterializedSource, ScanStats, TraceSource};
use mempersp_extrae::tracer::Trace;
use std::io::{self, Read as _};
use std::path::Path;

/// A `.mps` store behind the [`TraceSource`] trait. Queries push
/// predicates down into the chunk index instead of materializing the
/// whole trace.
pub struct MpsSource {
    reader: StoreReader,
}

impl MpsSource {
    pub fn open(path: &Path) -> io::Result<MpsSource> {
        Ok(MpsSource { reader: StoreReader::open(path)? })
    }

    /// The underlying reader (chunk index, decode counters, cache
    /// stats).
    pub fn reader(&self) -> &StoreReader {
        &self.reader
    }
}

impl TraceSource for MpsSource {
    fn header(&mut self) -> io::Result<Trace> {
        Ok(self.reader.header().clone())
    }

    fn scan(
        &mut self,
        query: &Query,
        sink: &mut dyn FnMut(TraceEvent),
    ) -> io::Result<ScanStats> {
        let (events, stats) = self.reader.query(query)?;
        for e in events {
            sink(e);
        }
        Ok(stats)
    }

    fn format_name(&self) -> &'static str {
        "mps"
    }

    fn materialize(&mut self) -> io::Result<Trace> {
        self.reader.materialize()
    }
}

/// Open a trace by path, sniffing the leading bytes: `MPSTORE1` means
/// a binary store, anything else is parsed as a text `.prv` trace.
pub fn open_trace_source(path: &Path) -> io::Result<Box<dyn TraceSource>> {
    let mut file = std::fs::File::open(path).map_err(|e| {
        io::Error::new(e.kind(), format!("opening trace {}: {e}", path.display()))
    })?;
    let mut head = [0u8; 8];
    let n = file.read(&mut head)?;
    drop(file);
    if n == 8 && &head == crate::writer::MAGIC {
        return Ok(Box::new(MpsSource::open(path)?));
    }
    Ok(Box::new(MaterializedSource::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_store_chunked;
    use mempersp_extrae::query::EventClass;
    use mempersp_extrae::trace_format::{save_trace, write_trace};
    use mempersp_extrae::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_store_s_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trace() -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 2);
        let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
        for i in 0..2000u64 {
            t.enter((i % 2) as usize, "R", c, i * 10);
            t.exit((i % 2) as usize, "R", c, i * 10 + 5);
        }
        t.finish("source test")
    }

    #[test]
    fn sniffer_dispatches_on_magic() {
        let t = trace();
        let prv = tmp("sniff.prv");
        let mps = tmp("sniff.mps");
        save_trace(&prv, &t).unwrap();
        write_store_chunked(&mps, &t, 4096).unwrap();

        let mut p = open_trace_source(&prv).unwrap();
        let mut m = open_trace_source(&mps).unwrap();
        assert_eq!(p.format_name(), "prv");
        assert_eq!(m.format_name(), "mps");
        assert_eq!(p.materialize().unwrap().events, m.materialize().unwrap().events);
        std::fs::remove_file(&prv).ok();
        std::fs::remove_file(&mps).ok();
    }

    #[test]
    fn filtered_scan_agrees_across_formats() {
        let t = trace();
        let prv = tmp("agree.prv");
        let mps = tmp("agree.mps");
        save_trace(&prv, &t).unwrap();
        write_store_chunked(&mps, &t, 4096).unwrap();

        let q = Query::all().in_time(0, 3000).with_kinds(&[EventClass::RegionEnter]);
        let mut p = open_trace_source(&prv).unwrap();
        let mut m = open_trace_source(&mps).unwrap();
        let (tp, _) = p.filtered(&q).unwrap();
        let (tm, sm) = m.filtered(&q).unwrap();
        assert_eq!(tp.events, tm.events);
        assert!(sm.chunks_skipped > 0, "selective query should prune chunks: {sm:?}");
        std::fs::remove_file(&prv).ok();
        std::fs::remove_file(&mps).ok();
    }

    #[test]
    fn round_trip_prv_mps_prv_is_byte_identical() {
        let t = trace();
        let prv_text = write_trace(&t);
        let mps = tmp("rt.mps");
        write_store_chunked(&mps, &t, 4096).unwrap();
        let mut m = open_trace_source(&mps).unwrap();
        let back = m.materialize().unwrap();
        assert_eq!(write_trace(&back), prv_text);
        std::fs::remove_file(&mps).ok();
    }
}
