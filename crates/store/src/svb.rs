//! Stream-vbyte integer columns: the v4 chunk codec's building block.
//!
//! LEB128 spends a branch and a shift per *byte*; a stream-vbyte
//! column separates the length information from the payload so decode
//! becomes branch-free table-driven loads. Each value gets a 2-bit
//! width code (`0..=3` → 1/2/4/8 little-endian bytes), four codes per
//! control byte:
//!
//! ```text
//! column := ctrl[ceil(n/4)]  — 2-bit codes, value i in bits 2*(i%4)
//!           data[...]        — each value's low `width` bytes, LE
//! ```
//!
//! Unused lanes of the final control byte must be coded `0` and carry
//! **no** data bytes, so a column's byte length is a pure function of
//! its control bytes — that's what lets a reader skip whole columns
//! (and whole groups within a column) without touching their data.
//!
//! Decoding runs 4 values per step: one 16-byte load, one SSSE3
//! `pshufb` through a 256-entry shuffle table, one widening store
//! (AVX2 uses `vpmovzxdq` to widen all four lanes at once). Groups
//! containing an 8-byte lane — rare: full-range addresses — fall back
//! to scalar loads for that group only. The kernel is picked once per
//! process via `is_x86_feature_detected!`; `MEMPERSP_NO_SIMD=1` forces
//! the scalar path (the CI fallback leg), and every kernel produces
//! bit-identical output (asserted by proptest).

use crate::varint::CodecError;
use std::sync::OnceLock;

/// Width in bytes of one 2-bit code.
#[inline(always)]
const fn code_width(code: u8) -> usize {
    1usize << code
}

/// The 2-bit width code for a value.
#[inline(always)]
fn width_code(v: u64) -> u8 {
    if v < 1 << 8 {
        0
    } else if v < 1 << 16 {
        1
    } else if v < 1 << 32 {
        2
    } else {
        3
    }
}

const fn lane_width(ctrl: u8, lane: usize) -> usize {
    code_width((ctrl >> (2 * lane)) & 3)
}

const fn build_group_len() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut sum = 0usize;
        let mut l = 0usize;
        while l < 4 {
            sum += lane_width(c as u8, l);
            l += 1;
        }
        t[c] = sum as u8;
        c += 1;
    }
    t
}

const fn build_has_w8() -> [bool; 256] {
    let mut t = [false; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut l = 0usize;
        while l < 4 {
            if (c >> (2 * l)) & 3 == 3 {
                t[c] = true;
            }
            l += 1;
        }
        c += 1;
    }
    t
}

/// `pshufb` masks turning ≤16 packed data bytes into four u32 lanes.
/// Only meaningful for control bytes without an 8-byte code (the
/// `HAS_W8` check guards every use); 0x80 lanes shuffle in zeros.
const fn build_shuffle() -> [[u8; 16]; 256] {
    let mut t = [[0x80u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut off = 0usize;
        let mut l = 0usize;
        while l < 4 {
            let w = lane_width(c as u8, l);
            let mut b = 0usize;
            while b < 4 {
                if b < w && w <= 4 {
                    t[c][4 * l + b] = (off + b) as u8;
                }
                b += 1;
            }
            off += w;
            l += 1;
        }
        c += 1;
    }
    t
}

/// Data bytes of one full 4-lane group, by control byte.
static GROUP_DATA_LEN: [u8; 256] = build_group_len();
/// Does this control byte contain an 8-byte lane (SIMD fallback)?
static HAS_W8: [bool; 256] = build_has_w8();
#[cfg(target_arch = "x86_64")]
static SHUFFLE: [[u8; 16]; 256] = build_shuffle();

/// The decode kernel selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    Scalar,
    Ssse3,
    Avx2,
}

impl SimdLevel {
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Ssse3 => "ssse3",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// What the CPU supports, ignoring the `MEMPERSP_NO_SIMD` override.
pub fn detected_simd_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            return SimdLevel::Ssse3;
        }
    }
    SimdLevel::Scalar
}

/// The kernel every decode in this process uses: best detected level,
/// unless `MEMPERSP_NO_SIMD` is set (any non-empty value other than
/// `0`), which forces the portable scalar path. Resolved once.
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let forced_off = std::env::var("MEMPERSP_NO_SIMD")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if forced_off {
            SimdLevel::Scalar
        } else {
            detected_simd_level()
        }
    })
}

/// `simd_level().name()` — the label recorded in benchmarks and
/// exported by the server's `/metrics`.
pub fn simd_level_name() -> &'static str {
    simd_level().name()
}

fn err(offset: usize, message: String) -> CodecError {
    CodecError { offset, message }
}

// ------------------------------------------------------------ encode

/// Accumulates one column's values; [`ColBuf::write_into`] emits the
/// control bytes followed by the data bytes. `encoded_len` is kept
/// incrementally so chunk sealing can poll the running size cheaply.
#[derive(Default, Clone)]
pub struct ColBuf {
    vals: Vec<u64>,
    bytes: usize,
}

impl ColBuf {
    pub fn push(&mut self, v: u64) {
        if self.vals.len().is_multiple_of(4) {
            self.bytes += 1; // a new control byte starts
        }
        self.bytes += code_width(width_code(v));
        self.vals.push(v);
    }

    pub fn len(&self) -> usize {
        self.vals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Exact serialized size (control + data bytes).
    pub fn encoded_len(&self) -> usize {
        self.bytes
    }

    /// Append `ctrl || data` to `out`.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        let nctrl = self.vals.len().div_ceil(4);
        let ctrl_start = out.len();
        out.resize(ctrl_start + nctrl, 0u8);
        for (i, &v) in self.vals.iter().enumerate() {
            out[ctrl_start + i / 4] |= width_code(v) << (2 * (i % 4));
        }
        for &v in &self.vals {
            let w = code_width(width_code(v));
            out.extend_from_slice(&v.to_le_bytes()[..w]);
        }
    }

    pub fn clear(&mut self) {
        self.vals.clear();
        self.bytes = 0;
    }
}

/// Encode a slice as one standalone column (tests, proptests).
pub fn encode_column(vals: &[u64]) -> Vec<u8> {
    let mut b = ColBuf::default();
    for &v in vals {
        b.push(v);
    }
    let mut out = Vec::with_capacity(b.encoded_len());
    b.write_into(&mut out);
    out
}

// ------------------------------------------------------------ decode

/// A parsed view of one column inside a section buffer. Construction
/// ([`SvbColumn::parse`]) validates every length, so decoding is
/// infallible afterwards.
#[derive(Clone, Copy)]
pub struct SvbColumn<'a> {
    ctrl: &'a [u8],
    data: &'a [u8],
    n: usize,
}

impl<'a> SvbColumn<'a> {
    /// Parse the column of `n` values starting at `stream[*pos..]`,
    /// advancing `pos` past it. Rejects truncated control/data bytes
    /// and nonzero control codes past the column end.
    pub fn parse(stream: &'a [u8], pos: &mut usize, n: usize) -> Result<SvbColumn<'a>, CodecError> {
        let nctrl = n.div_ceil(4);
        let cend = pos
            .checked_add(nctrl)
            .filter(|&e| e <= stream.len())
            .ok_or_else(|| err(*pos, format!("column control bytes ({nctrl}) overrun section")))?;
        let ctrl = &stream[*pos..cend];
        let full_groups = n / 4;
        let mut dlen = 0usize;
        for &c in &ctrl[..full_groups] {
            dlen += GROUP_DATA_LEN[c as usize] as usize;
        }
        if !n.is_multiple_of(4) {
            let c = ctrl[full_groups];
            for lane in 0..4 {
                if lane < n % 4 {
                    dlen += lane_width(c, lane);
                } else if (c >> (2 * lane)) & 3 != 0 {
                    return Err(err(
                        cend - 1,
                        "nonzero control bits past column end".to_string(),
                    ));
                }
            }
        }
        let dend = cend
            .checked_add(dlen)
            .filter(|&e| e <= stream.len())
            .ok_or_else(|| err(cend, format!("column data ({dlen} bytes) overruns section")))?;
        let col = SvbColumn { ctrl, data: &stream[cend..dend], n };
        *pos = dend;
        Ok(col)
    }

    /// Number of values in the column.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Serialized size: control plus data bytes.
    pub fn total_len(&self) -> usize {
        self.ctrl.len() + self.data.len()
    }

    /// Control-stream size alone — the part every (even ranged)
    /// decode walks.
    pub fn ctrl_len(&self) -> usize {
        self.ctrl.len()
    }

    /// Data bytes of the groups covering values `[lo, hi)` — what a
    /// range decode actually reads (plus all control bytes).
    pub fn range_data_len(&self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return 0;
        }
        let g0 = lo / 4;
        let g1 = (hi - 1) / 4;
        let full = self.n / 4;
        let mut bytes = 0usize;
        for g in g0..=g1 {
            bytes += if g < full {
                GROUP_DATA_LEN[self.ctrl[g] as usize] as usize
            } else {
                // tail group: only the occupied lanes carry data
                (0..self.n % 4).map(|l| lane_width(self.ctrl[g], l)).sum()
            };
        }
        bytes
    }

    /// Byte offset into `data` where group `g` starts.
    fn group_offset(&self, g: usize) -> usize {
        self.ctrl[..g].iter().map(|&c| GROUP_DATA_LEN[c as usize] as usize).sum()
    }

    /// Replace `out` with the whole column, using the process kernel.
    pub fn decode_into(&self, out: &mut Vec<u64>) {
        self.decode_into_with(simd_level(), out);
    }

    /// Decode the groups covering `[lo, hi)`. `out` receives values
    /// `[base, min(n, ...))` where `base = (lo/4)*4 <= lo` is the
    /// returned group-aligned start; earlier groups' data bytes are
    /// skipped via the control-byte length table without being read.
    pub fn decode_range_into(&self, lo: usize, hi: usize, out: &mut Vec<u64>) -> usize {
        out.clear();
        if lo >= hi || self.n == 0 {
            return 0;
        }
        let hi = hi.min(self.n);
        let g0 = lo / 4;
        let base = g0 * 4;
        let end = ((hi - 1) / 4 * 4 + 4).min(self.n);
        let off = self.group_offset(g0);
        out.reserve(end - base);
        match simd_level() {
            SimdLevel::Scalar => self.decode_groups_scalar(base, end, off, out),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Ssse3 => unsafe { self.decode_groups_ssse3(base, end, off, out) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { self.decode_groups_avx2(base, end, off, out) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.decode_groups_scalar(base, end, off, out),
        }
        base
    }

    /// Decode with an explicit kernel (tests compare kernels pairwise).
    ///
    /// # Panics
    /// If the host CPU does not support the requested level.
    pub fn decode_into_with(&self, level: SimdLevel, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.n);
        match level {
            SimdLevel::Scalar => self.decode_groups_scalar(0, self.n, 0, out),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Ssse3 => {
                assert!(std::arch::is_x86_feature_detected!("ssse3"), "ssse3 unsupported");
                unsafe { self.decode_groups_ssse3(0, self.n, 0, out) }
            }
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => {
                assert!(std::arch::is_x86_feature_detected!("avx2"), "avx2 unsupported");
                unsafe { self.decode_groups_avx2(0, self.n, 0, out) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.decode_groups_scalar(0, self.n, 0, out),
        }
    }

    /// Decode values `[start, end)` (start group-aligned or 0) with
    /// plain loads; `off` is the data offset of `start`'s group.
    fn decode_groups_scalar(&self, start: usize, end: usize, mut off: usize, out: &mut Vec<u64>) {
        let mut i = start;
        while i < end {
            let c = self.ctrl[i / 4];
            let lanes = (end - i).min(4);
            for l in 0..lanes {
                let w = lane_width(c, l);
                out.push(load_le(self.data, off, w));
                off += w;
            }
            i += lanes;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "ssse3")]
    unsafe fn decode_groups_ssse3(
        &self,
        start: usize,
        end: usize,
        mut off: usize,
        out: &mut Vec<u64>,
    ) {
        use std::arch::x86_64::*;
        let mut i = start;
        let zero = _mm_setzero_si128();
        while i + 4 <= end && off + 16 <= self.data.len() {
            let c = self.ctrl[i / 4] as usize;
            if HAS_W8[c] {
                for l in 0..4 {
                    let w = lane_width(c as u8, l);
                    out.push(load_le(self.data, off, w));
                    off += w;
                }
            } else {
                let mask = _mm_loadu_si128(SHUFFLE[c].as_ptr() as *const __m128i);
                let raw = _mm_loadu_si128(self.data.as_ptr().add(off) as *const __m128i);
                let packed = _mm_shuffle_epi8(raw, mask); // 4 × u32
                let mut grp = [0u64; 4];
                _mm_storeu_si128(
                    grp.as_mut_ptr() as *mut __m128i,
                    _mm_unpacklo_epi32(packed, zero),
                );
                _mm_storeu_si128(
                    grp.as_mut_ptr().add(2) as *mut __m128i,
                    _mm_unpackhi_epi32(packed, zero),
                );
                out.extend_from_slice(&grp);
                off += GROUP_DATA_LEN[c] as usize;
            }
            i += 4;
        }
        // Tail: groups without 16 bytes of load slack, plus any
        // partial final group.
        self.decode_groups_scalar(i, end, off, out);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn decode_groups_avx2(
        &self,
        start: usize,
        end: usize,
        mut off: usize,
        out: &mut Vec<u64>,
    ) {
        use std::arch::x86_64::*;
        let mut i = start;
        while i + 4 <= end && off + 16 <= self.data.len() {
            let c = self.ctrl[i / 4] as usize;
            if HAS_W8[c] {
                for l in 0..4 {
                    let w = lane_width(c as u8, l);
                    out.push(load_le(self.data, off, w));
                    off += w;
                }
            } else {
                let mask = _mm_loadu_si128(SHUFFLE[c].as_ptr() as *const __m128i);
                let raw = _mm_loadu_si128(self.data.as_ptr().add(off) as *const __m128i);
                let packed = _mm_shuffle_epi8(raw, mask); // 4 × u32
                let wide = _mm256_cvtepu32_epi64(packed); // 4 × u64
                let mut grp = [0u64; 4];
                _mm256_storeu_si256(grp.as_mut_ptr() as *mut __m256i, wide);
                out.extend_from_slice(&grp);
                off += GROUP_DATA_LEN[c] as usize;
            }
            i += 4;
        }
        self.decode_groups_scalar(i, end, off, out);
    }

    /// Replace `out` with the column decoded as zig-zag deltas and
    /// prefix-summed into running values starting from `prev`: the
    /// timestamp column in one pass, no intermediate buffer.
    pub fn decode_zigzag_prefix_into(&self, prev: u64, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.n);
        match simd_level() {
            SimdLevel::Scalar => self.zigzag_prefix_scalar(prev, out),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Ssse3 => unsafe { self.zigzag_prefix_ssse3(prev, out) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { self.zigzag_prefix_avx2(prev, out) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.zigzag_prefix_scalar(prev, out),
        }
    }

    fn zigzag_prefix_scalar(&self, mut prev: u64, out: &mut Vec<u64>) {
        let mut off = 0usize;
        let mut i = 0usize;
        while i < self.n {
            let c = self.ctrl[i / 4];
            let lanes = (self.n - i).min(4);
            for l in 0..lanes {
                let w = lane_width(c, l);
                prev = prev.wrapping_add(unzigzag(load_le(self.data, off, w)));
                out.push(prev);
                off += w;
            }
            i += lanes;
        }
    }

    /// SSSE3 kernel: `pshufb` group decode, then zig-zag undo and the
    /// intra-group prefix sum on 2×u64 SSE2 lanes with a serial carry
    /// between pairs.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "ssse3")]
    unsafe fn zigzag_prefix_ssse3(&self, mut prev: u64, out: &mut Vec<u64>) {
        use std::arch::x86_64::*;
        let zero = _mm_setzero_si128();
        let one = _mm_set1_epi64x(1);
        let mut off = 0usize;
        let mut i = 0usize;
        while i + 4 <= self.n && off + 16 <= self.data.len() {
            let c = self.ctrl[i / 4] as usize;
            if HAS_W8[c] {
                for l in 0..4 {
                    let w = lane_width(c as u8, l);
                    prev = prev.wrapping_add(unzigzag(load_le(self.data, off, w)));
                    out.push(prev);
                    off += w;
                }
            } else {
                let mask = _mm_loadu_si128(SHUFFLE[c].as_ptr() as *const __m128i);
                let raw = _mm_loadu_si128(self.data.as_ptr().add(off) as *const __m128i);
                let packed = _mm_shuffle_epi8(raw, mask);
                let mut grp = [0u64; 4];
                for (slot, half) in [
                    _mm_unpacklo_epi32(packed, zero),
                    _mm_unpackhi_epi32(packed, zero),
                ]
                .into_iter()
                .enumerate()
                {
                    // unzigzag: (x >> 1) ^ -(x & 1), two u64 lanes
                    let neg = _mm_sub_epi64(zero, _mm_and_si128(half, one));
                    let d = _mm_xor_si128(_mm_srli_epi64::<1>(half), neg);
                    // inclusive prefix within the pair: [a, a+b]
                    let s = _mm_add_epi64(d, _mm_slli_si128::<8>(d));
                    let r = _mm_add_epi64(s, _mm_set1_epi64x(prev as i64));
                    _mm_storeu_si128(grp.as_mut_ptr().add(slot * 2) as *mut __m128i, r);
                    prev = grp[slot * 2 + 1];
                }
                out.extend_from_slice(&grp);
                off += GROUP_DATA_LEN[c] as usize;
            }
            i += 4;
        }
        // Scalar remainder.
        let mut o = off;
        let mut j = i;
        while j < self.n {
            let c = self.ctrl[j / 4];
            let lanes = (self.n - j).min(4);
            for l in 0..lanes {
                let w = lane_width(c, l);
                prev = prev.wrapping_add(unzigzag(load_le(self.data, o, w)));
                out.push(prev);
                o += w;
            }
            j += lanes;
        }
    }

    /// AVX2 kernel: four u64 lanes per step — widen with `vpmovzxdq`,
    /// vector zig-zag undo, shift-add prefix sum across the register,
    /// broadcast running-total add.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn zigzag_prefix_avx2(&self, mut prev: u64, out: &mut Vec<u64>) {
        use std::arch::x86_64::*;
        let zero = _mm256_setzero_si256();
        let one = _mm256_set1_epi64x(1);
        let mut off = 0usize;
        let mut i = 0usize;
        while i + 4 <= self.n && off + 16 <= self.data.len() {
            let c = self.ctrl[i / 4] as usize;
            if HAS_W8[c] {
                for l in 0..4 {
                    let w = lane_width(c as u8, l);
                    prev = prev.wrapping_add(unzigzag(load_le(self.data, off, w)));
                    out.push(prev);
                    off += w;
                }
            } else {
                let mask = _mm_loadu_si128(SHUFFLE[c].as_ptr() as *const __m128i);
                let raw = _mm_loadu_si128(self.data.as_ptr().add(off) as *const __m128i);
                let x = _mm256_cvtepu32_epi64(_mm_shuffle_epi8(raw, mask));
                // unzigzag all four lanes
                let neg = _mm256_sub_epi64(zero, _mm256_and_si256(x, one));
                let d = _mm256_xor_si256(_mm256_srli_epi64::<1>(x), neg);
                // prefix sum: [a,b,c,d] -> [a, a+b, c, c+d] -> add the
                // low half's total into the high half's lanes
                let s1 = _mm256_add_epi64(d, _mm256_slli_si256::<8>(d));
                let low_total = _mm256_permute4x64_epi64::<0b01_01_01_01>(s1);
                let carry = _mm256_blend_epi32::<0b1111_0000>(zero, low_total);
                let s2 = _mm256_add_epi64(s1, carry);
                let r = _mm256_add_epi64(s2, _mm256_set1_epi64x(prev as i64));
                let mut grp = [0u64; 4];
                _mm256_storeu_si256(grp.as_mut_ptr() as *mut __m256i, r);
                prev = grp[3];
                out.extend_from_slice(&grp);
                off += GROUP_DATA_LEN[c] as usize;
            }
            i += 4;
        }
        // Scalar remainder.
        let mut o = off;
        let mut j = i;
        while j < self.n {
            let c = self.ctrl[j / 4];
            let lanes = (self.n - j).min(4);
            for l in 0..lanes {
                let w = lane_width(c, l);
                prev = prev.wrapping_add(unzigzag(load_le(self.data, o, w)));
                out.push(prev);
                o += w;
            }
            j += lanes;
        }
    }
}

#[inline(always)]
fn load_le(data: &[u8], off: usize, w: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf[..w].copy_from_slice(&data[off..off + w]);
    u64::from_le_bytes(buf)
}

#[inline(always)]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline(always)]
pub fn unzigzag(v: u64) -> u64 {
    ((v >> 1) ^ (0u64.wrapping_sub(v & 1))) as i64 as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(vals: &[u64]) {
        let buf = encode_column(vals);
        let mut pos = 0usize;
        let col = SvbColumn::parse(&buf, &mut pos, vals.len()).expect("parse");
        assert_eq!(pos, buf.len(), "column must consume its exact bytes");
        let mut out = Vec::new();
        col.decode_into_with(SimdLevel::Scalar, &mut out);
        assert_eq!(out, vals, "scalar");
        col.decode_into(&mut out);
        assert_eq!(out, vals, "dispatch");
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("ssse3") {
                col.decode_into_with(SimdLevel::Ssse3, &mut out);
                assert_eq!(out, vals, "ssse3");
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                col.decode_into_with(SimdLevel::Avx2, &mut out);
                assert_eq!(out, vals, "avx2");
            }
        }
    }

    #[test]
    fn round_trips_across_widths_and_lengths() {
        round_trip(&[]);
        round_trip(&[0]);
        round_trip(&[255, 256, 65535, 65536]);
        round_trip(&[u32::MAX as u64, u32::MAX as u64 + 1, u64::MAX, 1]);
        for n in 1..40usize {
            let vals: Vec<u64> =
                (0..n).map(|i| 1u64 << (i * 7 % 64).min(63) >> 1 | i as u64).collect();
            round_trip(&vals);
        }
    }

    #[test]
    fn boundary_values_pick_minimal_widths() {
        // One value per width boundary; encoded data = 1+1+2+2+4+4+8+8
        // bytes, plus 2 control bytes.
        let vals = [0, 255, 256, 65535, 65536, (1 << 32) - 1, 1 << 32, u64::MAX];
        let buf = encode_column(&vals);
        assert_eq!(buf.len(), 2 + 30);
        round_trip(&vals);
    }

    #[test]
    fn tail_group_stores_no_padding() {
        // 5 one-byte values: 2 control bytes + 5 data bytes, nothing
        // for the 3 unused lanes.
        let buf = encode_column(&[1, 2, 3, 4, 5]);
        assert_eq!(buf.len(), 2 + 5);
    }

    #[test]
    fn nonzero_tail_codes_are_rejected() {
        let mut buf = encode_column(&[1, 2, 3, 4, 5]);
        buf[1] |= 0b1100_0000; // claim lane 3 of the tail group is 8-wide
        let mut pos = 0usize;
        assert!(SvbColumn::parse(&buf, &mut pos, 5).is_err());
    }

    #[test]
    fn truncated_columns_are_rejected() {
        let buf = encode_column(&[70000, 70001, 70002, 70003, 70004]);
        for cut in 0..buf.len() {
            let mut pos = 0usize;
            assert!(
                SvbColumn::parse(&buf[..cut], &mut pos, 5).is_err(),
                "truncation at {cut} must not parse"
            );
        }
    }

    #[test]
    fn range_decode_matches_full_decode() {
        let vals: Vec<u64> = (0..100u64).map(|i| i * 0x01_0101 % (1 << 40)).collect();
        let buf = encode_column(&vals);
        let mut pos = 0usize;
        let col = SvbColumn::parse(&buf, &mut pos, vals.len()).unwrap();
        let mut out = Vec::new();
        for (lo, hi) in [(0, 100), (3, 9), (4, 8), (97, 100), (50, 51), (0, 1)] {
            let base = col.decode_range_into(lo, hi, &mut out);
            assert!(base <= lo && base % 4 == 0);
            for v in lo..hi {
                assert_eq!(out[v - base], vals[v], "value {v} in range [{lo},{hi})");
            }
            assert!(
                col.range_data_len(lo, hi) <= col.data.len(),
                "range bytes within column"
            );
        }
        // Degenerate range decodes nothing.
        assert_eq!(col.decode_range_into(5, 5, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn zigzag_prefix_reconstructs_timestamps() {
        // Deltas may be negative (streamed bodies interleave cores).
        let deltas: Vec<i64> = (0..77)
            .map(|i| match i % 5 {
                0 => 3,
                1 => -2,
                2 => 1 << 20,
                3 => -(1 << 33),
                _ => 40 + i,
            })
            .collect();
        let mut cycles = Vec::new();
        let mut prev = 1_000_000u64;
        let start = prev;
        for &d in &deltas {
            prev = prev.wrapping_add(d as u64);
            cycles.push(prev);
        }
        let zz: Vec<u64> = deltas.iter().map(|&d| zigzag(d)).collect();
        let buf = encode_column(&zz);
        let mut pos = 0usize;
        let col = SvbColumn::parse(&buf, &mut pos, zz.len()).unwrap();
        let mut out = Vec::new();
        col.decode_zigzag_prefix_into(start, &mut out);
        assert_eq!(out, cycles);
    }

    #[test]
    fn level_name_is_stable() {
        assert!(["scalar", "ssse3", "avx2"].contains(&simd_level_name()));
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
    }
}
