//! `fsck` and `recover`: diagnose and repair damaged stores.
//!
//! [`fsck_store`] opens a store (single `.mps`, sharded `trace.mps.d/`
//! or a torn `.tmp` a killed run left behind) in salvage mode and
//! verifies **everything**: trailer, footer index checksum, header
//! blob checksum, every chunk's frame + payload CRC32C, and a full
//! decode of every payload. The result is a damage map — one line per
//! defect, naming the chunk — or a clean bill of health.
//!
//! [`recover_store`] copies every salvageable event into a fresh,
//! fully checksummed v3 store. Damaged chunks are dropped whole (the
//! chunk is the unit of loss); surviving events keep their original
//! order, so recovering a torn file yields an exact prefix of the
//! events the crashed writer had committed. When the original header
//! never reached the disk, a minimal one is synthesized from the
//! events themselves (core count, region table) so every downstream
//! tool can still open the result.

use crate::cache::CacheConfig;
use crate::reader::{RecoveryMode, StoreReader};
use crate::shard::ShardedReader;
use crate::writer::{StoreWriter, DEFAULT_CHUNK_BYTES};
use mempersp_extrae::events::{EventPayload, TraceEvent};
use mempersp_extrae::query::Query;
use mempersp_extrae::tracer::{Trace, TraceMeta};
use std::io;
use std::path::{Path, PathBuf};

/// The verdict of one [`fsck_store`] run.
#[derive(Debug)]
pub struct FsckReport {
    pub path: PathBuf,
    /// Container format version (of the first shard, for a sharded
    /// trace).
    pub format_version: u32,
    /// Shards inspected (1 for a single file).
    pub shards: usize,
    /// Chunks inspected across all shards.
    pub chunks: usize,
    /// Events accounted for across all readable chunks.
    pub events: u64,
    /// Was the header blob readable everywhere?
    pub header_intact: bool,
    /// One line per defect; empty means the store is clean.
    pub damage: Vec<String>,
}

impl FsckReport {
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty() && self.header_intact
    }
}

/// What [`recover_store`] did.
#[derive(Debug)]
pub struct RecoverReport {
    pub output: PathBuf,
    /// Events written to the recovered store.
    pub events: u64,
    /// Chunks that contributed events.
    pub chunks: usize,
    /// Was the original header recovered (vs. synthesized)?
    pub header_intact: bool,
    /// Damage found in the input, one line per defect.
    pub damage: Vec<String>,
}

/// Open `path` — single file, shard directory (with or without a
/// manifest), or torn `.tmp` — in salvage mode and deep-verify every
/// byte that claims to be data.
pub fn fsck_store(path: &Path) -> io::Result<FsckReport> {
    if path.is_dir() {
        let r = ShardedReader::open_with_mode(path, CacheConfig::default(), RecoveryMode::Salvage)?;
        let mut damage = r.damage_report();
        let mut chunks = 0usize;
        let mut events = 0u64;
        let mut header_intact = true;
        let mut format_version = 0;
        for (name, shard) in r.shard_readers() {
            if format_version == 0 {
                format_version = shard.format_version();
            }
            chunks += shard.chunks().len();
            events += shard.num_events();
            header_intact &= shard.header_intact();
            for d in shard.verify_all() {
                let line = format!("{name}: {d}");
                if !damage.contains(&line) {
                    damage.push(line);
                }
            }
        }
        return Ok(FsckReport {
            path: path.to_path_buf(),
            format_version,
            shards: r.num_shards(),
            chunks,
            events,
            header_intact,
            damage,
        });
    }
    let r = StoreReader::open_salvage(path)?;
    let damage = r.verify_all().iter().map(|d| d.to_string()).collect();
    Ok(FsckReport {
        path: path.to_path_buf(),
        format_version: r.format_version(),
        shards: 1,
        chunks: r.chunks().len(),
        events: r.num_events(),
        header_intact: r.header_intact(),
        damage,
    })
}

/// Salvage every readable chunk of `input` into a fresh v3 store at
/// `output`. The output is written atomically (tmp + fsync + rename),
/// so a crash during recovery never leaves a half-recovered file at
/// `output`.
pub fn recover_store(input: &Path, output: &Path) -> io::Result<RecoverReport> {
    let (events, header, header_intact, chunks, damage) = salvage_events(input)?;
    let header = match header {
        Some(h) if header_intact => h,
        _ => synthesize_header(&events),
    };
    let mut w = StoreWriter::with_options(output, DEFAULT_CHUNK_BYTES, 1, 1)?;
    for e in &events {
        w.append(e)?;
    }
    let summary = w.finish(&header)?;
    Ok(RecoverReport {
        output: output.to_path_buf(),
        events: summary.events,
        chunks,
        header_intact,
        damage,
    })
}

type Salvaged = (Vec<TraceEvent>, Option<Trace>, bool, usize, Vec<String>);

/// Pull every readable event (in order) plus the best available
/// header out of a possibly damaged store.
fn salvage_events(input: &Path) -> io::Result<Salvaged> {
    if input.is_dir() {
        let r =
            ShardedReader::open_with_mode(input, CacheConfig::default(), RecoveryMode::Salvage)?;
        let (events, _) = r.query(&Query::all())?;
        let header_intact = r.shard_readers().all(|(_, s)| s.header_intact());
        let header = r
            .shard_readers()
            .find(|(_, s)| s.header_intact())
            .map(|(_, s)| s.header().clone());
        let chunks = r.shard_readers().map(|(_, s)| s.chunks().len()).sum();
        let damage = r.damage_report();
        return Ok((events, header, header_intact, chunks, damage));
    }
    let r = StoreReader::open_salvage(input)?;
    let (events, _) = r.query(&Query::all())?;
    let header_intact = r.header_intact();
    let header = header_intact.then(|| r.header().clone());
    let damage = r.damage_report().iter().map(|d| d.to_string()).collect();
    Ok((events, header, header_intact, r.chunks().len(), damage))
}

/// Build a minimal header for events whose real header was lost: core
/// count from the events, a placeholder region table wide enough for
/// every referenced region id.
fn synthesize_header(events: &[TraceEvent]) -> Trace {
    let mut max_core = 0usize;
    let mut regions = 0u32;
    let mut see_region = |r: &mempersp_extrae::events::RegionId| {
        regions = regions.max(r.0 + 1);
    };
    for e in events {
        max_core = max_core.max(e.core);
        match &e.payload {
            EventPayload::RegionEnter { region, .. } | EventPayload::RegionExit { region, .. } => {
                see_region(region)
            }
            EventPayload::CounterSample { stack, .. } => stack.iter().for_each(&mut see_region),
            _ => {}
        }
    }
    Trace {
        meta: TraceMeta {
            freq_mhz: 2500,
            num_cores: max_core + 1,
            aslr_slide: 0,
            description: "recovered store (header lost)".into(),
        },
        events: Vec::new(),
        source: Default::default(),
        objects: Default::default(),
        region_names: (0..regions).map(|i| format!("region_{i}")).collect(),
        resolution: Default::default(),
    }
}

/// Guard for the CLI's no-clobber contract: error unless `force` or
/// `output` does not exist yet.
pub fn check_clobber(output: &Path, force: bool) -> io::Result<()> {
    if !force && output.exists() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!("{}: output already exists (pass --force to overwrite)", output.display()),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::FRAME_LEN;
    use crate::shard::write_store_sharded;
    use crate::writer::write_store_chunked;
    use mempersp_extrae::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_recover_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trace(iters: u64) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 4);
        let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
        for i in 0..iters {
            let core = (i % 4) as usize;
            t.enter(core, "R", c, i * 100);
            t.user_event(core, 1, i, i * 100 + 10);
            t.exit(core, "R", c, i * 100 + 50);
        }
        t.finish("recover test")
    }

    #[test]
    fn fsck_reports_clean_on_pristine_stores() {
        let single = tmp("clean.mps");
        let sharded = tmp("clean.mps.d");
        std::fs::remove_dir_all(&sharded).ok();
        let t = trace(2000);
        write_store_chunked(&single, &t, 4096).unwrap();
        write_store_sharded(&sharded, &t, 4096, 1, 2500).unwrap();
        let rs = fsck_store(&single).unwrap();
        assert!(rs.is_clean(), "{:?}", rs.damage);
        assert_eq!((rs.format_version, rs.shards, rs.events), (4, 1, t.events.len() as u64));
        let rd = fsck_store(&sharded).unwrap();
        assert!(rd.is_clean(), "{:?}", rd.damage);
        assert_eq!((rd.shards, rd.events), (3, t.events.len() as u64));
        std::fs::remove_file(&single).ok();
        std::fs::remove_dir_all(&sharded).ok();
    }

    #[test]
    fn fsck_names_a_flipped_chunk() {
        let path = tmp("flip.mps");
        let t = trace(2000);
        write_store_chunked(&path, &t, 4096).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8 + FRAME_LEN + 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let r = fsck_store(&path).unwrap();
        assert!(!r.is_clean());
        assert!(r.damage.iter().any(|d| d.contains("chunk 0")), "{:?}", r.damage);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_torn_file_yields_event_prefix() {
        let path = tmp("torn.mps");
        let out = tmp("torn_recovered.mps");
        let t = trace(2000);
        write_store_chunked(&path, &t, 4096).unwrap();
        let clean = StoreReader::open(&path).unwrap();
        let chunks: Vec<_> = clean.chunks().to_vec();
        assert!(chunks.len() >= 3);
        let cut = chunks[2].offset as usize + 7; // tear inside chunk 2
        drop(clean);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let report = recover_store(&path, &out).unwrap();
        assert!(!report.header_intact);
        assert!(report.events > 0);
        let recovered = StoreReader::open(&out).unwrap();
        let back = recovered.materialize().unwrap();
        assert!(
            t.events.starts_with(&back.events),
            "recovered events must be an exact prefix ({} of {})",
            back.events.len(),
            t.events.len()
        );
        // The recovered store itself is clean and fully checksummed.
        let fsck = fsck_store(&out).unwrap();
        assert!(fsck.is_clean(), "{:?}", fsck.damage);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn recover_intact_store_is_lossless() {
        let path = tmp("ok.mps");
        let out = tmp("ok_recovered.mps");
        let t = trace(1500);
        write_store_chunked(&path, &t, 4096).unwrap();
        let report = recover_store(&path, &out).unwrap();
        assert!(report.header_intact);
        assert_eq!(report.events, t.events.len() as u64);
        let back = StoreReader::open(&out).unwrap().materialize().unwrap();
        assert_eq!(back.events, t.events);
        assert_eq!(back.region_names, t.region_names);
        assert_eq!(back.meta, t.meta);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn recover_sharded_with_one_deleted_shard() {
        let dir = tmp("holes.mps.d");
        let out = tmp("holes_recovered.mps");
        std::fs::remove_dir_all(&dir).ok();
        let t = trace(2000);
        write_store_sharded(&dir, &t, 4096, 1, 2500).unwrap();
        std::fs::remove_file(dir.join("shard-0001.mps")).unwrap();
        let report = recover_store(&dir, &out).unwrap();
        assert!(report.damage.iter().any(|d| d.contains("shard-0001")), "{:?}", report.damage);
        let back = StoreReader::open(&out).unwrap().materialize().unwrap();
        // Shards 0 and 2 survive: first 2500 events + last 1000.
        assert_eq!(back.events.len(), t.events.len() - 2500);
        assert_eq!(back.events[..2500], t.events[..2500]);
        assert_eq!(back.events[2500..], t.events[5000..]);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn check_clobber_enforces_force() {
        let path = tmp("clobber.bin");
        std::fs::write(&path, b"x").unwrap();
        assert!(check_clobber(&path, false).is_err());
        assert!(check_clobber(&path, true).is_ok());
        let fresh = tmp("clobber_fresh.bin");
        std::fs::remove_file(&fresh).ok();
        assert!(check_clobber(&fresh, false).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synthesized_header_covers_referenced_regions() {
        let t = trace(100);
        let h = synthesize_header(&t.events);
        assert_eq!(h.meta.num_cores, 4);
        assert_eq!(h.region_names.len(), t.region_names.len());
    }
}
