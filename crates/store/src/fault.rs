//! Deterministic IO fault injection for the store's durability tests.
//!
//! The writer talks to its backing file through the [`StoreFile`]
//! trait, so tests can slide a [`FailingFile`] underneath a real
//! [`StoreWriter`] and make the *exact same* code path that production
//! runs hit an `ENOSPC` on the 7th write, a failed fsync, a short
//! write, or a torn write that stops mid-buffer at byte offset `k`
//! (what a `kill -9` or power loss leaves behind). Everything is
//! counter-based and deterministic: the same [`FaultConfig`] against
//! the same byte stream trips at the same instant every run.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The writer's view of its backing file: sequential writes plus
/// durability. Implemented by [`std::fs::File`] in production and by
/// [`FailingFile`] in the fault-injection tests.
pub trait StoreFile: Write + Send {
    fn sync_all(&mut self) -> io::Result<()>;
}

impl StoreFile for std::fs::File {
    fn sync_all(&mut self) -> io::Result<()> {
        std::fs::File::sync_all(self)
    }
}

/// When and how a [`FailingFile`] misbehaves. All counters are
/// 0-based and count *calls on this file*, not bytes (except
/// `kill_at_byte`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Fail the Nth `write` call (and every one after it) with this
    /// error kind — an `ENOSPC`-style persistent failure.
    pub fail_write: Option<(u64, io::ErrorKind)>,
    /// Fail the Nth `sync_all` call (and every one after it).
    pub fail_sync: Option<(u64, io::ErrorKind)>,
    /// The Nth `write` call accepts only this many bytes. A legal
    /// short write, not an error: callers using `write_all` must loop
    /// and the output must come out byte-identical.
    pub short_write: Option<(u64, usize)>,
    /// Accept bytes up to this file offset, then tear the in-flight
    /// write at the boundary and fail every later operation — the
    /// closest an in-process test gets to `kill -9` at byte `k`.
    pub kill_at_byte: Option<u64>,
}

/// Shared observable state of one injection run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    config: FaultConfig,
    writes: AtomicU64,
    syncs: AtomicU64,
    bytes: AtomicU64,
    tripped: AtomicBool,
}

impl FaultPlan {
    pub fn new(config: FaultConfig) -> Arc<FaultPlan> {
        Arc::new(FaultPlan { config, ..FaultPlan::default() })
    }

    /// Bytes accepted by the underlying file so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes.load(Ordering::SeqCst)
    }

    /// `write` calls observed so far (including failed ones).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// `sync_all` calls observed so far (including failed ones).
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }

    /// Did any configured fault actually fire?
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }

    fn trip(&self, kind: io::ErrorKind, what: &str) -> io::Error {
        self.tripped.store(true, Ordering::SeqCst);
        io::Error::new(kind, format!("injected fault: {what}"))
    }
}

/// A real file with a deterministic failure schedule. Wrap the tmp
/// file of a [`crate::writer::StoreWriter`] (via
/// [`crate::writer::StoreWriter::with_backend`]) to exercise every
/// error path the durability story depends on.
pub struct FailingFile {
    inner: std::fs::File,
    plan: Arc<FaultPlan>,
}

impl FailingFile {
    pub fn new(inner: std::fs::File, plan: Arc<FaultPlan>) -> FailingFile {
        FailingFile { inner, plan }
    }
}

impl Write for FailingFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let plan = &self.plan;
        let n = plan.writes.fetch_add(1, Ordering::SeqCst);
        if plan.tripped() {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected fault: file already dead"));
        }
        if let Some((at, kind)) = plan.config.fail_write {
            if n >= at {
                return Err(plan.trip(kind, "write failure"));
            }
        }
        let mut take = buf.len();
        if let Some((at, len)) = plan.config.short_write {
            if n == at {
                take = take.min(len.max(1));
            }
        }
        if let Some(kill) = plan.config.kill_at_byte {
            let pos = plan.bytes.load(Ordering::SeqCst);
            if pos >= kill {
                return Err(plan.trip(io::ErrorKind::BrokenPipe, "killed before write"));
            }
            let room = (kill - pos) as usize;
            if room < take {
                // Tear: push the surviving prefix through, then die.
                self.inner.write_all(&buf[..room])?;
                plan.bytes.fetch_add(room as u64, Ordering::SeqCst);
                return Err(plan.trip(io::ErrorKind::BrokenPipe, "killed mid-write"));
            }
        }
        let written = self.inner.write(&buf[..take])?;
        plan.bytes.fetch_add(written as u64, Ordering::SeqCst);
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.plan.tripped() {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected fault: file already dead"));
        }
        self.inner.flush()
    }
}

impl StoreFile for FailingFile {
    fn sync_all(&mut self) -> io::Result<()> {
        let plan = &self.plan;
        let n = plan.syncs.fetch_add(1, Ordering::SeqCst);
        if plan.tripped() {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected fault: file already dead"));
        }
        if let Some((at, kind)) = plan.config.fail_sync {
            if n >= at {
                return Err(plan.trip(kind, "fsync failure"));
            }
        }
        if plan.config.kill_at_byte.is_some() {
            // A killed process never reaches fsync; if the byte budget
            // ran out the file is already tripped above.
        }
        std::fs::File::sync_all(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_fault_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_failure_trips_at_the_configured_call_and_stays_dead() {
        let path = tmp("failwrite.bin");
        let plan = FaultPlan::new(FaultConfig {
            fail_write: Some((2, io::ErrorKind::StorageFull)),
            ..FaultConfig::default()
        });
        let mut f = FailingFile::new(std::fs::File::create(&path).unwrap(), Arc::clone(&plan));
        f.write_all(b"aa").unwrap();
        f.write_all(b"bb").unwrap();
        let err = f.write_all(b"cc").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(plan.tripped());
        assert!(f.write_all(b"dd").is_err(), "a tripped file must stay dead");
        assert_eq!(std::fs::read(&path).unwrap(), b"aabb");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kill_at_byte_tears_the_inflight_write() {
        let path = tmp("kill.bin");
        let plan = FaultPlan::new(FaultConfig { kill_at_byte: Some(5), ..FaultConfig::default() });
        let mut f = FailingFile::new(std::fs::File::create(&path).unwrap(), Arc::clone(&plan));
        f.write_all(b"abc").unwrap();
        let err = f.write_all(b"defg").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(plan.bytes_written(), 5);
        assert_eq!(std::fs::read(&path).unwrap(), b"abcde", "prefix before the kill survives");
        assert!(f.sync_all().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_is_legal_and_write_all_recovers() {
        let path = tmp("short.bin");
        let plan = FaultPlan::new(FaultConfig { short_write: Some((0, 1)), ..FaultConfig::default() });
        let mut f = FailingFile::new(std::fs::File::create(&path).unwrap(), Arc::clone(&plan));
        f.write_all(b"hello").unwrap();
        assert!(!plan.tripped());
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_failure_counts_calls() {
        let path = tmp("sync.bin");
        let plan = FaultPlan::new(FaultConfig {
            fail_sync: Some((1, io::ErrorKind::Other)),
            ..FaultConfig::default()
        });
        let mut f = FailingFile::new(std::fs::File::create(&path).unwrap(), Arc::clone(&plan));
        f.sync_all().unwrap();
        assert!(f.sync_all().is_err());
        assert_eq!(plan.syncs(), 2);
        std::fs::remove_file(&path).ok();
    }
}
