//! Multi-file sharding: one logical trace spread over
//! `trace.mps.d/shard-NNNN.mps`.
//!
//! A single `.mps` file is fine up to a few gigabytes, but one file is
//! one mapping, one footer and one writer pipeline. Long runs instead
//! roll a fresh shard every `events_per_shard` events:
//!
//! ```text
//! trace.mps.d/
//!   manifest.txt      MPSHARD1 + one "name events" line per shard
//!   shard-0000.mps    an ordinary self-contained store file
//!   shard-0001.mps
//!   ...
//! ```
//!
//! Every shard is a complete store — same magic, chunks, header blob
//! and footer — so existing tooling can open one shard directly, and
//! a sharded trace survives losing its siblings. The manifest pins
//! shard order and per-shard event counts; [`ShardedReader::open`]
//! re-validates the counts against each shard's own footer.
//!
//! # Crash consistency
//!
//! Each shard finalizes atomically (tmp + fsync + rename, see
//! [`crate::writer`]), and the manifest is committed the same way,
//! **last**. A crashed sharded write therefore leaves either no
//! manifest (the directory is visibly unfinished — salvage can still
//! dir-scan the shards) or a manifest whose every named shard is a
//! fully finalized store. [`ShardedReader::open_with_mode`] in
//! [`RecoveryMode::Salvage`] survives a missing or lying manifest, a
//! corrupted shard, or a deleted shard: the broken pieces are skipped
//! and reported, the healthy shards' events come back in shard order.
//!
//! [`ShardedWriter`] keeps at most one compression pipeline active:
//! rolling a shard drains its in-flight chunks
//! ([`StoreWriter`]'s `seal_events`) but leaves the footer unwritten —
//! the header (symbols, objects, region names) is only complete at the
//! end of the run, at which point [`ShardedWriter::finish`] writes
//! every shard's footer and the manifest.
//!
//! [`ShardedReader`] fans queries out across shards on scoped worker
//! threads and concatenates per-shard results in shard order, so a
//! sharded query returns exactly what the unsharded one would.

use crate::cache::{CacheConfig, CacheStats};
use crate::cancel::CancelToken;
use crate::reader::{RecoveryMode, StoreReader};
use crate::writer::{
    sync_parent_dir, tmp_path, StoreSummary, StoreWriter, DEFAULT_CHUNK_BYTES,
    DEFAULT_INFLIGHT_PER_THREAD,
};
use mempersp_extrae::events::TraceEvent;
use mempersp_extrae::query::Query;
use mempersp_extrae::stream_writer::EventSink;
use mempersp_extrae::trace_source::ScanStats;
use mempersp_extrae::tracer::Trace;
use std::io;
use std::path::{Path, PathBuf};

/// Conventional suffix of a sharded-trace directory.
pub const SHARD_DIR_SUFFIX: &str = ".mps.d";
/// Manifest file name inside the shard directory.
pub const MANIFEST_NAME: &str = "manifest.txt";
/// First line of the manifest.
const MANIFEST_MAGIC: &str = "MPSHARD1";
/// Default shard roll threshold.
pub const DEFAULT_EVENTS_PER_SHARD: u64 = 16_000_000;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn shard_name(i: usize) -> String {
    format!("shard-{i:04}.mps")
}

/// Does `path` look like a sharded trace (a directory with a
/// manifest)?
pub fn is_shard_dir(path: &Path) -> bool {
    path.is_dir() && path.join(MANIFEST_NAME).is_file()
}

/// Writer of a sharded logical trace.
pub struct ShardedWriter {
    dir: PathBuf,
    chunk_target: usize,
    threads: usize,
    max_inflight: usize,
    events_per_shard: u64,
    /// Every shard opened so far; footers are written at `finish`,
    /// when the header is finally known.
    shards: Vec<(String, StoreWriter)>,
    /// Events appended to the currently open shard.
    current_events: u64,
    finished: bool,
}

impl ShardedWriter {
    /// Create `dir` (the `trace.mps.d` directory) and a writer that
    /// rolls a new shard every `events_per_shard` events.
    pub fn create(dir: &Path, events_per_shard: u64) -> io::Result<ShardedWriter> {
        Self::with_options(dir, DEFAULT_CHUNK_BYTES, 1, events_per_shard)
    }

    /// [`ShardedWriter::create`] with explicit chunk target and
    /// per-shard compressor threads.
    pub fn with_options(
        dir: &Path,
        chunk_target: usize,
        threads: usize,
        events_per_shard: u64,
    ) -> io::Result<ShardedWriter> {
        Self::with_budget(
            dir,
            chunk_target,
            threads,
            events_per_shard,
            threads * DEFAULT_INFLIGHT_PER_THREAD,
        )
    }

    /// [`ShardedWriter::with_options`] with an explicit in-flight chunk
    /// budget for the active shard's pipeline (see
    /// [`StoreWriter::with_options`]).
    pub fn with_budget(
        dir: &Path,
        chunk_target: usize,
        threads: usize,
        events_per_shard: u64,
        max_inflight: usize,
    ) -> io::Result<ShardedWriter> {
        std::fs::create_dir_all(dir).map_err(|e| {
            io::Error::new(e.kind(), format!("creating shard dir {}: {e}", dir.display()))
        })?;
        Ok(ShardedWriter {
            dir: dir.to_path_buf(),
            chunk_target,
            threads,
            max_inflight,
            events_per_shard: events_per_shard.max(1),
            shards: Vec::new(),
            current_events: 0,
            finished: false,
        })
    }

    fn open_shard(&mut self) -> io::Result<()> {
        let name = shard_name(self.shards.len());
        let w = StoreWriter::with_options(
            &self.dir.join(&name),
            self.chunk_target,
            self.threads,
            self.max_inflight,
        )?;
        self.shards.push((name, w));
        self.current_events = 0;
        Ok(())
    }

    /// Append one event, rolling to a fresh shard at the threshold.
    pub fn append(&mut self, event: &TraceEvent) -> io::Result<()> {
        assert!(!self.finished, "append after finish");
        if self.shards.is_empty() || self.current_events >= self.events_per_shard {
            if let Some((_, w)) = self.shards.last_mut() {
                // Drain the outgoing shard's pipeline so only one
                // compressor pool is ever alive.
                w.seal_events()?;
            }
            self.open_shard()?;
        }
        let (_, w) = self.shards.last_mut().expect("shard just opened");
        w.append(event)?;
        self.current_events += 1;
        Ok(())
    }

    /// Shards opened so far (including the in-progress one).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Write every shard's header blob + footer and the manifest.
    pub fn finish(&mut self, trace_for_header: &Trace) -> io::Result<StoreSummary> {
        assert!(!self.finished, "finish called twice");
        if self.shards.is_empty() {
            // Even an empty trace keeps its header queryable.
            self.open_shard()?;
        }
        let mut total = StoreSummary { events: 0, chunks: 0, raw_bytes: 0, stored_bytes: 0 };
        let mut manifest = String::from(MANIFEST_MAGIC);
        manifest.push('\n');
        for (name, w) in &mut self.shards {
            let s = w.finish(trace_for_header)?;
            total.events += s.events;
            total.chunks += s.chunks;
            total.raw_bytes += s.raw_bytes;
            total.stored_bytes += s.stored_bytes;
            manifest.push_str(&format!("{name} {}\n", s.events));
        }
        // The manifest commits the whole directory, so it goes last
        // and atomically: a crash before this point leaves finalized
        // shards but no manifest (visibly unfinished); a crash during
        // the rename leaves either the old state or the new one.
        let manifest_path = self.dir.join(MANIFEST_NAME);
        let tmp = tmp_path(&manifest_path);
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(manifest.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &manifest_path)?;
        sync_parent_dir(&manifest_path)?;
        self.finished = true;
        Ok(total)
    }
}

impl EventSink for ShardedWriter {
    fn append_event(&mut self, event: &TraceEvent) -> io::Result<()> {
        self.append(event)
    }

    fn finish(&mut self, trace_for_header: &Trace) -> io::Result<()> {
        ShardedWriter::finish(self, trace_for_header).map(|_| ())
    }
}

/// Write a complete in-memory trace as a sharded store.
pub fn write_store_sharded(
    dir: &Path,
    trace: &Trace,
    chunk_target: usize,
    threads: usize,
    events_per_shard: u64,
) -> io::Result<StoreSummary> {
    let mut w = ShardedWriter::with_options(dir, chunk_target, threads, events_per_shard)?;
    for e in &trace.events {
        w.append(e)?;
    }
    w.finish(trace)
}

/// A sharded trace opened for querying: one [`StoreReader`] (mapping,
/// block cache, decode counters) per shard.
pub struct ShardedReader {
    shards: Vec<StoreReader>,
    shard_names: Vec<String>,
    /// Directory-level salvage notes (bad manifest, unopenable
    /// shards, count mismatches).
    notes: Vec<String>,
}

/// Parse the manifest into `(shard name, expected events)` pairs.
fn parse_manifest(dir: &Path) -> io::Result<Vec<(String, u64)>> {
    let manifest_path = dir.join(MANIFEST_NAME);
    let manifest = std::fs::read_to_string(&manifest_path).map_err(|e| {
        io::Error::new(e.kind(), format!("reading {}: {e}", manifest_path.display()))
    })?;
    let mut lines = manifest.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(bad_data(format!(
            "{}: not a shard manifest (expected {MANIFEST_MAGIC})",
            manifest_path.display()
        )));
    }
    let mut entries = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (name, events) = line.split_once(' ').ok_or_else(|| {
            bad_data(format!("{}: malformed manifest line {:?}", manifest_path.display(), line))
        })?;
        let events: u64 = events.parse().map_err(|_| {
            bad_data(format!("{}: bad event count in {:?}", manifest_path.display(), line))
        })?;
        if name.contains('/') || name.contains("..") {
            return Err(bad_data(format!(
                "{}: shard name {name:?} escapes the directory",
                manifest_path.display()
            )));
        }
        entries.push((name.to_string(), events));
    }
    Ok(entries)
}

/// Salvage fallback when the manifest is missing or lying: every
/// plausible shard file in the directory, in name order (which is
/// creation order — shard names are zero-padded). Includes `.tmp`
/// shards a killed run left behind; the v3 forward scan recovers
/// their complete chunks.
fn scan_shard_dir(dir: &Path) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("shard-") && (name.ends_with(".mps") || name.ends_with(".mps.tmp")) {
            names.push(name.to_string());
        }
    }
    names.sort();
    Ok(names)
}

impl ShardedReader {
    /// Open with the default per-shard cache configuration.
    pub fn open(dir: &Path) -> io::Result<ShardedReader> {
        Self::open_with(dir, CacheConfig::default())
    }

    /// Open with explicit per-shard cache sizing, strict mode.
    pub fn open_with(dir: &Path, cache: CacheConfig) -> io::Result<ShardedReader> {
        Self::open_with_mode(dir, cache, RecoveryMode::Strict)
    }

    /// Open with an explicit [`RecoveryMode`]. Strict fails on the
    /// first inconsistency. Salvage opens what it can: a missing or
    /// corrupt manifest falls back to a directory scan, unopenable
    /// shards are skipped with a note, event-count mismatches are
    /// noted but tolerated — one bad shard never takes down the rest.
    pub fn open_with_mode(
        dir: &Path,
        cache: CacheConfig,
        mode: RecoveryMode,
    ) -> io::Result<ShardedReader> {
        let mut notes = Vec::new();
        let entries: Vec<(String, Option<u64>)> = match parse_manifest(dir) {
            Ok(entries) => entries.into_iter().map(|(n, e)| (n, Some(e))).collect(),
            Err(e) if mode == RecoveryMode::Salvage => {
                notes.push(format!("manifest unusable ({e}); scanning directory for shards"));
                scan_shard_dir(dir)?.into_iter().map(|n| (n, None)).collect()
            }
            Err(e) => return Err(e),
        };
        let mut shards = Vec::new();
        let mut shard_names = Vec::new();
        for (i, (name, expected)) in entries.iter().enumerate() {
            let reader = match StoreReader::open_with_mode(&dir.join(name), cache, mode) {
                Ok(r) => r,
                Err(e) if mode == RecoveryMode::Salvage => {
                    notes.push(format!("shard {i} ({name}) unreadable, skipped: {e}"));
                    continue;
                }
                Err(e) => {
                    return Err(io::Error::new(e.kind(), format!("shard {i} ({name}): {e}")))
                }
            };
            if let Some(events) = *expected {
                if reader.num_events() != events {
                    let msg = format!(
                        "shard {i} ({name}) has {} events, manifest says {events}",
                        reader.num_events()
                    );
                    if mode == RecoveryMode::Salvage {
                        notes.push(msg);
                    } else {
                        return Err(bad_data(format!("{}: {msg}", dir.display())));
                    }
                }
            }
            shards.push(reader);
            shard_names.push(name.clone());
        }
        if shards.is_empty() {
            return Err(bad_data(match mode {
                RecoveryMode::Salvage => {
                    format!("{}: no readable shards ({})", dir.display(), notes.join("; "))
                }
                RecoveryMode::Strict => format!("{}: manifest lists no shards", dir.display()),
            }));
        }
        Ok(ShardedReader { shards, shard_names, notes })
    }

    /// Every defect diagnosed so far: directory-level salvage notes
    /// plus each shard's own damage report, prefixed with the shard
    /// name.
    pub fn damage_report(&self) -> Vec<String> {
        let mut all = self.notes.clone();
        for (name, s) in self.shard_names.iter().zip(&self.shards) {
            for d in s.damage_report() {
                all.push(format!("{name}: {d}"));
            }
        }
        all
    }

    /// The per-shard readers, in shard order (for fsck-style deep
    /// verification).
    pub fn shard_readers(&self) -> impl Iterator<Item = (&str, &StoreReader)> {
        self.shard_names.iter().map(String::as_str).zip(self.shards.iter())
    }

    /// Toggle lazy payload-CRC verification on every shard.
    pub fn set_verify(&mut self, verify: bool) {
        for s in &mut self.shards {
            s.set_verify(verify);
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total events across all shards.
    pub fn num_events(&self) -> u64 {
        self.shards.iter().map(StoreReader::num_events).sum()
    }

    /// Total chunks across all shards.
    pub fn num_chunks(&self) -> usize {
        self.shards.iter().map(|s| s.chunks().len()).sum()
    }

    /// The header trace (every shard carries the same one).
    pub fn header(&self) -> &Trace {
        self.shards[0].header()
    }

    /// Lifetime chunk decompressions summed over shards.
    pub fn chunks_decoded_total(&self) -> u64 {
        self.shards.iter().map(StoreReader::chunks_decoded_total).sum()
    }

    /// Block-cache counters summed over every shard's cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shards
            .iter()
            .map(StoreReader::cache_stats)
            .fold(CacheStats::default(), CacheStats::merged)
    }

    fn merge(parts: Vec<(Vec<TraceEvent>, ScanStats)>) -> (Vec<TraceEvent>, ScanStats) {
        let mut out = Vec::new();
        let mut stats = ScanStats::default();
        for (events, p) in parts {
            out.extend(events);
            stats.chunks_skipped += p.chunks_skipped;
            stats.chunks_decoded += p.chunks_decoded;
            stats.chunks_cached += p.chunks_cached;
            stats.chunks_damaged += p.chunks_damaged;
            stats.events_scanned += p.events_scanned;
            stats.events_matched += p.events_matched;
            stats.payload_bytes_decoded += p.payload_bytes_decoded;
        }
        (out, stats)
    }

    /// Run a query over every shard in order.
    pub fn query(&self, q: &Query) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        self.query_cancel(q, &CancelToken::new())
    }

    /// [`ShardedReader::query`] with a cancellation token checked at
    /// every chunk boundary of every shard.
    pub fn query_cancel(
        &self,
        q: &Query,
        cancel: &CancelToken,
    ) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            parts.push(s.query_cancel(q, cancel)?);
        }
        Ok(Self::merge(parts))
    }

    /// Run a query with shards fanned out over `threads` workers;
    /// results are concatenated in shard order, so the answer is
    /// identical to [`ShardedReader::query`]. A single-shard trace
    /// delegates to the chunk-level [`StoreReader::query_parallel`].
    pub fn query_parallel(
        &self,
        q: &Query,
        threads: usize,
    ) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        if self.shards.len() == 1 {
            return self.shards[0].query_parallel(q, threads);
        }
        let threads = threads.clamp(1, self.shards.len());
        if threads <= 1 {
            return self.query(q);
        }
        let per_worker = self.shards.len().div_ceil(threads);
        type ShardResults = Vec<io::Result<Vec<(Vec<TraceEvent>, ScanStats)>>>;
        let parts: ShardResults = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .chunks(per_worker)
                    .map(|slice| {
                        scope.spawn(move || slice.iter().map(|s| s.query(q)).collect())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
            });
        let mut flat = Vec::with_capacity(self.shards.len());
        for part in parts {
            flat.extend(part?);
        }
        Ok(Self::merge(flat))
    }

    /// One pass per shard, every query routed; per-query results keep
    /// global (shard, then trace) order.
    pub fn query_multi(&self, qs: &[Query]) -> io::Result<(Vec<Vec<TraceEvent>>, ScanStats)> {
        self.query_multi_cancel(qs, &CancelToken::new())
    }

    /// [`ShardedReader::query_multi`] with a cancellation token.
    pub fn query_multi_cancel(
        &self,
        qs: &[Query],
        cancel: &CancelToken,
    ) -> io::Result<(Vec<Vec<TraceEvent>>, ScanStats)> {
        let mut outs: Vec<Vec<TraceEvent>> = qs.iter().map(|_| Vec::new()).collect();
        let mut stats = ScanStats::default();
        for s in &self.shards {
            let (parts, p) = s.query_multi_cancel(qs, cancel)?;
            for (out, part) in outs.iter_mut().zip(parts) {
                out.extend(part);
            }
            stats.chunks_skipped += p.chunks_skipped;
            stats.chunks_decoded += p.chunks_decoded;
            stats.chunks_cached += p.chunks_cached;
            stats.chunks_damaged += p.chunks_damaged;
            stats.events_scanned += p.events_scanned;
            stats.events_matched += p.events_matched;
            stats.payload_bytes_decoded += p.payload_bytes_decoded;
        }
        Ok((outs, stats))
    }

    /// Materialize the whole logical trace.
    pub fn materialize(&self) -> io::Result<Trace> {
        let (events, _) = self.query(&Query::all())?;
        let mut t = self.header().clone();
        t.events = events;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_store_chunked;
    use mempersp_extrae::query::EventClass;
    use mempersp_extrae::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_shard_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trace(iters: u64) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 4);
        let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
        for i in 0..iters {
            let core = (i % 4) as usize;
            t.enter(core, "R", c, i * 100);
            t.user_event(core, 1, i, i * 100 + 10);
            t.exit(core, "R", c, i * 100 + 50);
        }
        t.finish("shard test")
    }

    #[test]
    fn sharded_round_trip_matches_source() {
        let dir = tmp("rt.mps.d");
        std::fs::remove_dir_all(&dir).ok();
        let t = trace(4000);
        let s = write_store_sharded(&dir, &t, 4096, 1, 5000).unwrap();
        assert_eq!(s.events, 12_000);
        let r = ShardedReader::open(&dir).unwrap();
        assert_eq!(r.num_shards(), 3, "12000 events / 5000 per shard");
        assert_eq!(r.num_events(), 12_000);
        let back = r.materialize().unwrap();
        assert_eq!(back.events, t.events);
        assert_eq!(back.meta, t.meta);
        assert_eq!(back.region_names, t.region_names);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_queries_match_unsharded() {
        let sharded = tmp("q.mps.d");
        let single = tmp("q.mps");
        std::fs::remove_dir_all(&sharded).ok();
        let t = trace(3000);
        write_store_sharded(&sharded, &t, 4096, 1, 2000).unwrap();
        write_store_chunked(&single, &t, 4096).unwrap();
        let rs = ShardedReader::open(&sharded).unwrap();
        let ru = StoreReader::open(&single).unwrap();
        assert!(rs.num_shards() > 1);
        for q in [
            Query::all(),
            Query::all().in_time(0, 50_000),
            Query::all().with_kinds(&[EventClass::User]).on_cores(&[1, 2]),
        ] {
            let (se, ss) = rs.query(&q).unwrap();
            let (ue, us) = ru.query(&q).unwrap();
            assert_eq!(se, ue);
            assert_eq!(ss.events_matched, us.events_matched);
            for threads in [2, 5] {
                let (pe, ps) = rs.query_parallel(&q, threads).unwrap();
                assert_eq!(pe, ue, "threads={threads}");
                assert_eq!(ps.events_matched, us.events_matched);
            }
        }
        // Multi-query, one pass per shard.
        let qs =
            [Query::all().in_time(0, 20_000), Query::all().with_kinds(&[EventClass::RegionExit])];
        let (souts, _) = rs.query_multi(&qs).unwrap();
        let (uouts, _) = ru.query_multi(&qs).unwrap();
        assert_eq!(souts, uouts);
        std::fs::remove_dir_all(&sharded).ok();
        std::fs::remove_file(&single).ok();
    }

    #[test]
    fn each_shard_is_a_self_contained_store() {
        let dir = tmp("solo.mps.d");
        std::fs::remove_dir_all(&dir).ok();
        let t = trace(2000);
        write_store_sharded(&dir, &t, 4096, 1, 2500).unwrap();
        let r = ShardedReader::open(&dir).unwrap();
        assert!(r.num_shards() >= 2);
        // Open one shard directly with the plain reader: full header,
        // its slice of the events.
        let first = StoreReader::open(&dir.join(shard_name(0))).unwrap();
        assert_eq!(first.header().region_names, t.region_names);
        assert_eq!(first.num_events(), 2500);
        let (events, _) = first.query(&Query::all()).unwrap();
        assert_eq!(events[..], t.events[..2500]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_event_counts_are_validated() {
        let dir = tmp("bad.mps.d");
        std::fs::remove_dir_all(&dir).ok();
        let t = trace(1000);
        write_store_sharded(&dir, &t, 4096, 1, 1500).unwrap();
        let manifest = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&manifest).unwrap();
        std::fs::write(&manifest, text.replace("1500", "1400")).unwrap();
        let err = match ShardedReader::open(&dir) {
            Ok(_) => panic!("mismatched manifest must not open"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("manifest says"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_leaves_no_temp_files() {
        let dir = tmp("atomic.mps.d");
        std::fs::remove_dir_all(&dir).ok();
        let t = trace(1000);
        write_store_sharded(&dir, &t, 4096, 1, 1500).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_str().unwrap().to_string();
            assert!(!name.ends_with(".tmp"), "leftover temp file {name}");
        }
        assert!(dir.join(MANIFEST_NAME).is_file());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashed_sharded_write_leaves_no_manifest_and_salvages() {
        // Simulate the crash window: shards exist (finalized), the
        // manifest never landed. Strict refuses; salvage dir-scans.
        let dir = tmp("crashed.mps.d");
        std::fs::remove_dir_all(&dir).ok();
        let t = trace(1000);
        write_store_sharded(&dir, &t, 4096, 1, 1500).unwrap();
        std::fs::remove_file(dir.join(MANIFEST_NAME)).unwrap();
        assert!(ShardedReader::open(&dir).is_err());
        let r =
            ShardedReader::open_with_mode(&dir, CacheConfig::default(), RecoveryMode::Salvage)
                .unwrap();
        assert_eq!(r.num_shards(), 2);
        let (events, _) = r.query(&Query::all()).unwrap();
        assert_eq!(events, t.events);
        assert!(r.damage_report().iter().any(|n| n.contains("manifest")), "{:?}", r.damage_report());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_trace_keeps_header() {
        let dir = tmp("empty.mps.d");
        std::fs::remove_dir_all(&dir).ok();
        let t = Tracer::new(TracerConfig::default(), 2).finish("empty");
        write_store_sharded(&dir, &t, 4096, 1, 1000).unwrap();
        let r = ShardedReader::open(&dir).unwrap();
        assert_eq!((r.num_shards(), r.num_events()), (1, 0));
        assert_eq!(r.header().meta, t.meta);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipelined_shards_match_serial_bytes() {
        let dir1 = tmp("pipe1.mps.d");
        let dir2 = tmp("pipe2.mps.d");
        std::fs::remove_dir_all(&dir1).ok();
        std::fs::remove_dir_all(&dir2).ok();
        let t = trace(3000);
        write_store_sharded(&dir1, &t, 4096, 1, 2000).unwrap();
        write_store_sharded(&dir2, &t, 4096, 4, 2000).unwrap();
        for i in 0..ShardedReader::open(&dir1).unwrap().num_shards() {
            let a = std::fs::read(dir1.join(shard_name(i))).unwrap();
            let b = std::fs::read(dir2.join(shard_name(i))).unwrap();
            assert_eq!(a, b, "shard {i} differs between serial and pipelined writers");
        }
        std::fs::remove_dir_all(&dir1).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }
}
