//! The chunk payload codec: `Vec<TraceEvent>` ⇄ bytes.
//!
//! Two generations share this module. **v1** (files led by
//! `MPSTORE1`) interleaves every event's fields:
//!
//! ```text
//! event := tag:u8                  (EventClass discriminant)
//!          Δcycles:ivarint         (delta vs. previous event in chunk)
//!          core:uvarint
//!          payload                 (per tag, varint fields)
//! ```
//!
//! **v2** (`MPSTORE2`, what the writer emits today) transposes a chunk
//! into columns so decode is batch work over homogeneous runs of bytes
//! instead of a per-event tag dispatch:
//!
//! ```text
//! chunk := section lengths (10 uvarints: deltas, cores, stream 0..7)
//!          tags    — one byte per event, in stored order
//!          deltas  — zig-zag varint timestamp deltas, one per event
//!          cores   — uvarint core ids, one per event
//!          stream[k] — the concatenated payload fields of every
//!                      class-k event, in stored order (same field
//!                      encodings as v1)
//! ```
//!
//! The tag column drives reassembly: event *i*'s payload is the next
//! unread record of `stream[tags[i]]`. Columns make three things fast:
//! the timestamp/core columns decode in tight unrolled loops over the
//! word-at-a-time [`varint::Reader`], selective queries test the
//! time/core/kind columns *before* materializing a `TraceEvent`
//! (non-matching payloads are skipped, not built), and similar bytes
//! sit next to each other, which the LZ pass rewards.
//!
//! Timestamps are delta-encoded because consecutive events are close
//! in time — the deltas are tiny varints where absolute cycle counts
//! would be 4–6 bytes each. Deltas are *signed*: a streamed body is
//! written in emission order, which may interleave cores slightly out
//! of global time order.

use crate::varint::{self, get_bytes, get_i64, get_u64, put_bytes, put_i64, put_u64, CodecError};
use mempersp_extrae::events::{EventPayload, RegionId, TraceEvent};
use mempersp_extrae::objects::ObjectId;
use mempersp_extrae::query::{EventClass, KindMask, Query};
use mempersp_extrae::source::Ip;
use mempersp_memsim::MemLevel;
use mempersp_pebs::{CounterSnapshot, EventKind, PebsSample};

fn put_counters(out: &mut Vec<u8>, c: &CounterSnapshot) {
    for v in c.values() {
        put_u64(out, *v);
    }
}

fn get_counters(buf: &[u8], pos: &mut usize) -> Result<CounterSnapshot, CodecError> {
    let mut vals = [0u64; EventKind::ALL.len()];
    for v in &mut vals {
        *v = get_u64(buf, pos)?;
    }
    Ok(CounterSnapshot::from_values(vals))
}

pub(crate) fn level_code(l: MemLevel) -> u8 {
    match l {
        MemLevel::L1 => 0,
        MemLevel::L2 => 1,
        MemLevel::L3 => 2,
        MemLevel::Dram => 3,
    }
}

pub(crate) fn level_from(code: u8, at: usize) -> Result<MemLevel, CodecError> {
    match code {
        0 => Ok(MemLevel::L1),
        1 => Ok(MemLevel::L2),
        2 => Ok(MemLevel::L3),
        3 => Ok(MemLevel::Dram),
        other => Err(CodecError { offset: at, message: format!("bad memory level code {other}") }),
    }
}

/// Append one event to `out`. `prev_cycles` is the running timestamp
/// of the previous event in the same chunk (0 for the first) and is
/// updated in place.
pub fn encode_event(out: &mut Vec<u8>, e: &TraceEvent, prev_cycles: &mut u64) {
    out.push(EventClass::of(&e.payload) as u8);
    put_i64(out, e.cycles.wrapping_sub(*prev_cycles) as i64);
    *prev_cycles = e.cycles;
    put_u64(out, e.core as u64);
    match &e.payload {
        EventPayload::RegionEnter { region, counters }
        | EventPayload::RegionExit { region, counters } => {
            put_u64(out, region.0 as u64);
            put_counters(out, counters);
        }
        EventPayload::CounterSample { ip, counters, stack } => {
            put_u64(out, ip.0);
            put_counters(out, counters);
            put_u64(out, stack.len() as u64);
            for r in stack {
                put_u64(out, r.0 as u64);
            }
        }
        EventPayload::Pebs { sample, object } => {
            // timestamp and core are reconstructed from the event
            // envelope; only the sample-specific fields are stored.
            let flags = u8::from(sample.is_store)
                | (u8::from(sample.tlb_miss) << 1)
                | (u8::from(object.is_some()) << 2);
            out.push(flags);
            put_u64(out, sample.ip);
            put_u64(out, sample.addr);
            put_u64(out, sample.size as u64);
            put_u64(out, sample.latency as u64);
            out.push(level_code(sample.source));
            if let Some(o) = object {
                put_u64(out, o.0 as u64);
            }
        }
        EventPayload::Alloc { base, size, callsite } => {
            put_u64(out, *base);
            put_u64(out, *size);
            put_u64(out, callsite.0);
        }
        EventPayload::Free { base } => {
            put_u64(out, *base);
        }
        EventPayload::MuxSwitch { event_index, label } => {
            put_u64(out, *event_index as u64);
            put_bytes(out, label.as_bytes());
        }
        EventPayload::User { kind, value } => {
            put_u64(out, *kind as u64);
            put_u64(out, *value);
        }
    }
}

/// Encode a whole chunk of events.
pub fn encode_events(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 16);
    let mut prev = 0u64;
    for e in events {
        encode_event(&mut out, e, &mut prev);
    }
    out
}

/// Decode exactly `count` events from `buf` (the whole chunk payload).
pub fn decode_events(buf: &[u8], count: usize) -> Result<Vec<TraceEvent>, CodecError> {
    let mut pos = 0usize;
    let mut prev = 0u64;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_event(buf, &mut pos, &mut prev)?);
    }
    if pos != buf.len() {
        return Err(CodecError {
            offset: pos,
            message: format!("{} trailing bytes after final event", buf.len() - pos),
        });
    }
    Ok(out)
}

fn decode_event(buf: &[u8], pos: &mut usize, prev_cycles: &mut u64) -> Result<TraceEvent, CodecError> {
    let at = *pos;
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| CodecError { offset: at, message: "truncated event tag".into() })?;
    *pos += 1;
    let delta = get_i64(buf, pos)?;
    let cycles = prev_cycles.wrapping_add(delta as u64);
    *prev_cycles = cycles;
    let core = get_u64(buf, pos)? as usize;
    let payload = match tag {
        t if t == EventClass::RegionEnter as u8 || t == EventClass::RegionExit as u8 => {
            let region = RegionId(get_u64(buf, pos)? as u32);
            let counters = get_counters(buf, pos)?;
            if t == EventClass::RegionEnter as u8 {
                EventPayload::RegionEnter { region, counters }
            } else {
                EventPayload::RegionExit { region, counters }
            }
        }
        t if t == EventClass::CounterSample as u8 => {
            let ip = Ip(get_u64(buf, pos)?);
            let counters = get_counters(buf, pos)?;
            let n = get_u64(buf, pos)? as usize;
            if n > buf.len() {
                return Err(CodecError { offset: at, message: format!("stack of {n} entries overruns chunk") });
            }
            let mut stack = Vec::with_capacity(n);
            for _ in 0..n {
                stack.push(RegionId(get_u64(buf, pos)? as u32));
            }
            EventPayload::CounterSample { ip, counters, stack }
        }
        t if t == EventClass::Pebs as u8 => {
            let flags = *buf
                .get(*pos)
                .ok_or_else(|| CodecError { offset: *pos, message: "truncated PEBS flags".into() })?;
            *pos += 1;
            let ip = get_u64(buf, pos)?;
            let addr = get_u64(buf, pos)?;
            let size = get_u64(buf, pos)? as u32;
            let latency = get_u64(buf, pos)? as u32;
            let lvl = *buf
                .get(*pos)
                .ok_or_else(|| CodecError { offset: *pos, message: "truncated PEBS level".into() })?;
            *pos += 1;
            let source = level_from(lvl, *pos - 1)?;
            let object = if flags & 0b100 != 0 {
                Some(ObjectId(get_u64(buf, pos)? as u32))
            } else {
                None
            };
            EventPayload::Pebs {
                sample: PebsSample {
                    timestamp: cycles,
                    core,
                    ip,
                    addr,
                    size,
                    is_store: flags & 0b001 != 0,
                    latency,
                    source,
                    tlb_miss: flags & 0b010 != 0,
                },
                object,
            }
        }
        t if t == EventClass::Alloc as u8 => EventPayload::Alloc {
            base: get_u64(buf, pos)?,
            size: get_u64(buf, pos)?,
            callsite: Ip(get_u64(buf, pos)?),
        },
        t if t == EventClass::Free as u8 => EventPayload::Free { base: get_u64(buf, pos)? },
        t if t == EventClass::MuxSwitch as u8 => {
            let event_index = get_u64(buf, pos)? as usize;
            let label = String::from_utf8(get_bytes(buf, pos)?.to_vec())
                .map_err(|_| CodecError { offset: at, message: "mux label is not UTF-8".into() })?;
            EventPayload::MuxSwitch { event_index, label }
        }
        t if t == EventClass::User as u8 => EventPayload::User {
            kind: get_u64(buf, pos)? as u32,
            value: get_u64(buf, pos)?,
        },
        other => {
            return Err(CodecError { offset: at, message: format!("unknown event tag {other}") })
        }
    };
    Ok(TraceEvent { cycles, core, payload })
}

// ---------------------------------------------------------------- v2

/// Counters carried by every region/sample event.
pub(crate) const NCOUNTERS: usize = EventKind::ALL.len();
/// Number of payload streams (one per [`EventClass`]).
pub(crate) const NSTREAMS: usize = EventClass::ALL.len();

/// Incremental encoder of one v2 columnar chunk. The writer feeds it
/// events one at a time; each field goes straight into its column, so
/// sealing a chunk is a concatenation, not a re-encode.
#[derive(Default)]
pub struct ChunkBuilder {
    tags: Vec<u8>,
    deltas: Vec<u8>,
    cores: Vec<u8>,
    streams: [Vec<u8>; NSTREAMS],
    prev_cycles: u64,
}

impl ChunkBuilder {
    pub fn new() -> ChunkBuilder {
        ChunkBuilder::default()
    }

    /// Events appended since the last [`ChunkBuilder::serialize`].
    pub fn events(&self) -> usize {
        self.tags.len()
    }

    /// Raw encoded size if the chunk were sealed now (excluding the
    /// ~11-byte section-length prefix).
    pub fn encoded_len(&self) -> usize {
        self.tags.len()
            + self.deltas.len()
            + self.cores.len()
            + self.streams.iter().map(Vec::len).sum::<usize>()
    }

    /// Append one event's fields to the columns.
    pub fn push(&mut self, e: &TraceEvent) {
        let class = EventClass::of(&e.payload);
        self.tags.push(class as u8);
        put_i64(&mut self.deltas, e.cycles.wrapping_sub(self.prev_cycles) as i64);
        self.prev_cycles = e.cycles;
        put_u64(&mut self.cores, e.core as u64);
        let out = &mut self.streams[class as usize];
        match &e.payload {
            EventPayload::RegionEnter { region, counters }
            | EventPayload::RegionExit { region, counters } => {
                put_u64(out, region.0 as u64);
                put_counters(out, counters);
            }
            EventPayload::CounterSample { ip, counters, stack } => {
                put_u64(out, ip.0);
                put_counters(out, counters);
                put_u64(out, stack.len() as u64);
                for r in stack {
                    put_u64(out, r.0 as u64);
                }
            }
            EventPayload::Pebs { sample, object } => {
                let flags = u8::from(sample.is_store)
                    | (u8::from(sample.tlb_miss) << 1)
                    | (u8::from(object.is_some()) << 2);
                out.push(flags);
                put_u64(out, sample.ip);
                put_u64(out, sample.addr);
                put_u64(out, sample.size as u64);
                put_u64(out, sample.latency as u64);
                out.push(level_code(sample.source));
                if let Some(o) = object {
                    put_u64(out, o.0 as u64);
                }
            }
            EventPayload::Alloc { base, size, callsite } => {
                put_u64(out, *base);
                put_u64(out, *size);
                put_u64(out, callsite.0);
            }
            EventPayload::Free { base } => {
                put_u64(out, *base);
            }
            EventPayload::MuxSwitch { event_index, label } => {
                put_u64(out, *event_index as u64);
                put_bytes(out, label.as_bytes());
            }
            EventPayload::User { kind, value } => {
                put_u64(out, *kind as u64);
                put_u64(out, *value);
            }
        }
    }

    /// Serialize the accumulated columns as one chunk payload and
    /// reset the builder (buffers keep their capacity).
    pub fn serialize(&mut self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() + 16);
        put_u64(&mut out, self.deltas.len() as u64);
        put_u64(&mut out, self.cores.len() as u64);
        for s in &self.streams {
            put_u64(&mut out, s.len() as u64);
        }
        out.extend_from_slice(&self.tags);
        out.extend_from_slice(&self.deltas);
        out.extend_from_slice(&self.cores);
        for s in &mut self.streams {
            out.extend_from_slice(s);
            s.clear();
        }
        self.tags.clear();
        self.deltas.clear();
        self.cores.clear();
        self.prev_cycles = 0;
        out
    }
}

/// Encode a whole event slice as one v2 chunk payload.
pub fn encode_events_v2(events: &[TraceEvent]) -> Vec<u8> {
    let mut b = ChunkBuilder::new();
    for e in events {
        b.push(e);
    }
    b.serialize()
}

/// Per-chunk counters a columnar scan reports upward into
/// [`ScanStats`](mempersp_extrae::trace_source::ScanStats).
/// `payload_bytes` counts the payload-section bytes the scan actually
/// read: v2 charges every active class stream in full; v4 charges
/// control bytes plus only the data-byte groups a selection touched,
/// which is what makes "filtered decodes strictly fewer payload bytes
/// than full materialization" an assertable invariant.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    pub scanned: u64,
    pub matched: u64,
    pub payload_bytes: u64,
}

/// Reusable column buffers for columnar decode — one per scanning
/// thread, pooled by the reader, so a query over many chunks (and
/// repeated queries over one reader) allocates the columns once.
#[derive(Default)]
pub struct DecodeScratch {
    pub(crate) cycles: Vec<u64>,
    pub(crate) cores: Vec<u32>,
    /// v4: generic stream-vbyte decode target (core ids, class columns).
    pub(crate) tmp: Vec<u64>,
    /// v4: selection vector of `(row, class-occurrence)` index pairs.
    pub(crate) sel: Vec<(u32, u32)>,
    /// v4: decoded numeric columns, per class. Indexed
    /// `[class][column]`; inner vectors keep their capacity across
    /// chunks and queries.
    pub(crate) class_cols: [Vec<Vec<u64>>; NSTREAMS],
}

/// The parsed section table of a v2 or v4 chunk (both share the
/// 10-uvarint length prefix and tag column; only the per-section byte
/// encodings differ).
pub(crate) struct Sections<'a> {
    pub(crate) tags: &'a [u8],
    pub(crate) deltas: &'a [u8],
    pub(crate) cores: &'a [u8],
    pub(crate) streams: [&'a [u8]; NSTREAMS],
}

pub(crate) fn split_sections(buf: &[u8], count: usize) -> Result<Sections<'_>, CodecError> {
    let mut pos = 0usize;
    let deltas_len = get_u64(buf, &mut pos)? as usize;
    let cores_len = get_u64(buf, &mut pos)? as usize;
    let mut stream_lens = [0usize; NSTREAMS];
    for l in &mut stream_lens {
        *l = get_u64(buf, &mut pos)? as usize;
    }
    let need = count
        .checked_add(deltas_len)
        .and_then(|n| n.checked_add(cores_len))
        .and_then(|n| stream_lens.iter().try_fold(n, |a, &l| a.checked_add(l)))
        .ok_or_else(|| CodecError { offset: pos, message: "section lengths overflow".into() })?;
    if pos + need != buf.len() {
        return Err(CodecError {
            offset: pos,
            message: format!(
                "section lengths cover {} bytes but chunk has {}",
                pos + need,
                buf.len()
            ),
        });
    }
    let (tags, rest) = buf[pos..].split_at(count);
    let (deltas, rest) = rest.split_at(deltas_len);
    let (cores, mut rest) = rest.split_at(cores_len);
    let mut streams = [&buf[0..0]; NSTREAMS];
    for (s, &l) in streams.iter_mut().zip(&stream_lens) {
        let (head, tail) = rest.split_at(l);
        *s = head;
        rest = tail;
    }
    Ok(Sections { tags, deltas, cores, streams })
}

/// Decode the timestamp column (zig-zag deltas, prefix-summed) and the
/// core column into `scratch`, unrolled four events per iteration.
fn decode_columns(s: &Sections<'_>, count: usize, scratch: &mut DecodeScratch) -> Result<(), CodecError> {
    scratch.cycles.clear();
    scratch.cycles.reserve(count);
    let mut r = varint::Reader::new(s.deltas);
    let mut prev = 0u64;
    let mut i = 0;
    while i + 4 <= count {
        // Four at a time: the serial prefix-sum dependence stays, but
        // loop control and bounds work amortize across the block.
        let d0 = r.i64()?;
        let d1 = r.i64()?;
        let d2 = r.i64()?;
        let d3 = r.i64()?;
        let c0 = prev.wrapping_add(d0 as u64);
        let c1 = c0.wrapping_add(d1 as u64);
        let c2 = c1.wrapping_add(d2 as u64);
        let c3 = c2.wrapping_add(d3 as u64);
        scratch.cycles.extend_from_slice(&[c0, c1, c2, c3]);
        prev = c3;
        i += 4;
    }
    while i < count {
        prev = prev.wrapping_add(r.i64()? as u64);
        scratch.cycles.push(prev);
        i += 1;
    }
    if !r.is_done() {
        return Err(CodecError { offset: r.pos(), message: "trailing bytes in delta column".into() });
    }

    scratch.cores.clear();
    scratch.cores.reserve(count);
    let mut r = varint::Reader::new(s.cores);
    let mut i = 0;
    while i + 4 <= count {
        let a = r.u64()? as u32;
        let b = r.u64()? as u32;
        let c = r.u64()? as u32;
        let d = r.u64()? as u32;
        scratch.cores.extend_from_slice(&[a, b, c, d]);
        i += 4;
    }
    while i < count {
        scratch.cores.push(r.u64()? as u32);
        i += 1;
    }
    if !r.is_done() {
        return Err(CodecError { offset: r.pos(), message: "trailing bytes in core column".into() });
    }
    Ok(())
}

/// Decode one class-`tag` payload record from its stream.
fn decode_payload(
    tag: u8,
    r: &mut varint::Reader<'_>,
    cycles: u64,
    core: usize,
) -> Result<EventPayload, CodecError> {
    Ok(match tag {
        t if t == EventClass::RegionEnter as u8 || t == EventClass::RegionExit as u8 => {
            let region = RegionId(r.u64()? as u32);
            let mut vals = [0u64; NCOUNTERS];
            for v in &mut vals {
                *v = r.u64()?;
            }
            let counters = CounterSnapshot::from_values(vals);
            if t == EventClass::RegionEnter as u8 {
                EventPayload::RegionEnter { region, counters }
            } else {
                EventPayload::RegionExit { region, counters }
            }
        }
        t if t == EventClass::CounterSample as u8 => {
            let ip = Ip(r.u64()?);
            let mut vals = [0u64; NCOUNTERS];
            for v in &mut vals {
                *v = r.u64()?;
            }
            let n = r.u64()? as usize;
            if n > r.remaining() {
                return Err(CodecError {
                    offset: r.pos(),
                    message: format!("stack of {n} entries overruns stream"),
                });
            }
            let mut stack = Vec::with_capacity(n);
            for _ in 0..n {
                stack.push(RegionId(r.u64()? as u32));
            }
            EventPayload::CounterSample { ip, counters: CounterSnapshot::from_values(vals), stack }
        }
        t if t == EventClass::Pebs as u8 => {
            let flags = r.u8()?;
            let ip = r.u64()?;
            let addr = r.u64()?;
            let size = r.u64()? as u32;
            let latency = r.u64()? as u32;
            let lvl = r.u8()?;
            let source = level_from(lvl, r.pos())?;
            let object =
                if flags & 0b100 != 0 { Some(ObjectId(r.u64()? as u32)) } else { None };
            EventPayload::Pebs {
                sample: PebsSample {
                    timestamp: cycles,
                    core,
                    ip,
                    addr,
                    size,
                    is_store: flags & 0b001 != 0,
                    latency,
                    source,
                    tlb_miss: flags & 0b010 != 0,
                },
                object,
            }
        }
        t if t == EventClass::Alloc as u8 => {
            EventPayload::Alloc { base: r.u64()?, size: r.u64()?, callsite: Ip(r.u64()?) }
        }
        t if t == EventClass::Free as u8 => EventPayload::Free { base: r.u64()? },
        t if t == EventClass::MuxSwitch as u8 => {
            let event_index = r.u64()? as usize;
            let label = String::from_utf8(r.bytes()?.to_vec()).map_err(|_| CodecError {
                offset: r.pos(),
                message: "mux label is not UTF-8".into(),
            })?;
            EventPayload::MuxSwitch { event_index, label }
        }
        t if t == EventClass::User as u8 => {
            EventPayload::User { kind: r.u64()? as u32, value: r.u64()? }
        }
        other => {
            return Err(CodecError { offset: r.pos(), message: format!("unknown event tag {other}") })
        }
    })
}

/// Advance `r` past one class-`tag` payload record without building it.
fn skip_payload(tag: u8, r: &mut varint::Reader<'_>) -> Result<(), CodecError> {
    match tag {
        t if t == EventClass::RegionEnter as u8 || t == EventClass::RegionExit as u8 => {
            r.skip_varints(1 + NCOUNTERS)
        }
        t if t == EventClass::CounterSample as u8 => {
            r.skip_varints(1 + NCOUNTERS)?;
            let n = r.u64()? as usize;
            if n > r.remaining() {
                return Err(CodecError {
                    offset: r.pos(),
                    message: format!("stack of {n} entries overruns stream"),
                });
            }
            r.skip_varints(n)
        }
        t if t == EventClass::Pebs as u8 => {
            let flags = r.u8()?;
            r.skip_varints(4)?;
            r.u8()?;
            if flags & 0b100 != 0 {
                r.skip_varint()?;
            }
            Ok(())
        }
        t if t == EventClass::Alloc as u8 => r.skip_varints(3),
        t if t == EventClass::Free as u8 => r.skip_varint(),
        t if t == EventClass::MuxSwitch as u8 => {
            r.skip_varint()?;
            r.bytes().map(|_| ())
        }
        t if t == EventClass::User as u8 => r.skip_varints(2),
        other => Err(CodecError { offset: r.pos(), message: format!("unknown event tag {other}") }),
    }
}

/// Scan a v2 chunk: decode the tag/timestamp/core columns, prefilter
/// against `query`'s time window, core set and kind mask, and
/// materialize **only** the candidate events (running the full
/// predicate on each before it is emitted). Non-matching events cost a
/// payload skip, not an allocation. With `query == None` every event
/// is materialized — the decode path of `materialize()` and the
/// round-trip tests.
pub fn scan_events_v2(
    buf: &[u8],
    count: usize,
    query: Option<&Query>,
    scratch: &mut DecodeScratch,
    out: &mut Vec<TraceEvent>,
) -> Result<ScanOutcome, CodecError> {
    let s = split_sections(buf, count)?;
    decode_columns(&s, count, scratch)?;
    let mut readers: [varint::Reader<'_>; NSTREAMS] = [
        varint::Reader::new(s.streams[0]),
        varint::Reader::new(s.streams[1]),
        varint::Reader::new(s.streams[2]),
        varint::Reader::new(s.streams[3]),
        varint::Reader::new(s.streams[4]),
        varint::Reader::new(s.streams[5]),
        varint::Reader::new(s.streams[6]),
        varint::Reader::new(s.streams[7]),
    ];
    // Column prefilter, hoisted out of the per-event loop.
    let (time, kinds, core_set) = match query {
        Some(q) => (q.time, q.kinds, q.cores.as_deref()),
        None => (None, KindMask::ALL, None),
    };
    // A class the kind mask excludes can never produce a match, and
    // since every class has its own payload stream, its bytes need no
    // per-event skip either — the whole stream is simply never read.
    // A kind-filtered scan therefore pays only the tag/column check
    // for excluded events.
    let active: [bool; NSTREAMS] = std::array::from_fn(|k| kinds.0 & (1u8 << k) != 0);
    let mut matched = 0u64;
    for i in 0..count {
        let tag = s.tags[i];
        if tag as usize >= NSTREAMS {
            return Err(CodecError { offset: i, message: format!("unknown event tag {tag}") });
        }
        if !active[tag as usize] {
            continue;
        }
        let cycles = scratch.cycles[i];
        let core = scratch.cores[i] as usize;
        let r = &mut readers[tag as usize];
        let candidate = time.is_none_or(|(lo, hi)| cycles >= lo && cycles <= hi)
            && core_set.is_none_or(|cs| cs.contains(&core));
        if !candidate {
            skip_payload(tag, r)?;
            continue;
        }
        let payload = decode_payload(tag, r, cycles, core)?;
        let event = TraceEvent { cycles, core, payload };
        if query.is_none_or(|q| q.matches(&event)) {
            matched += 1;
            out.push(event);
        }
    }
    let mut payload_bytes = 0u64;
    for (k, r) in readers.iter().enumerate() {
        // Streams of excluded classes were (intentionally) not walked,
        // so only the active ones can assert full consumption.
        if active[k] && !r.is_done() {
            return Err(CodecError {
                offset: r.pos(),
                message: format!("{} trailing bytes in payload stream {k}", r.remaining()),
            });
        }
        if active[k] {
            payload_bytes += s.streams[k].len() as u64;
        }
    }
    Ok(ScanOutcome { scanned: count as u64, matched, payload_bytes })
}

/// Decode exactly `count` events from a v2 chunk payload.
pub fn decode_events_v2(buf: &[u8], count: usize) -> Result<Vec<TraceEvent>, CodecError> {
    let mut out = Vec::with_capacity(count);
    let mut scratch = DecodeScratch::default();
    scan_events_v2(buf, count, None, &mut scratch, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Vec<TraceEvent> {
        let c = CounterSnapshot::from_values([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        vec![
            TraceEvent {
                cycles: 1_000,
                core: 0,
                payload: EventPayload::RegionEnter { region: RegionId(3), counters: c },
            },
            TraceEvent {
                cycles: 900, // out-of-order: negative delta
                core: 1,
                payload: EventPayload::CounterSample {
                    ip: Ip(0x400010),
                    counters: c,
                    stack: vec![RegionId(0), RegionId(3)],
                },
            },
            TraceEvent {
                cycles: 1_100,
                core: 1,
                payload: EventPayload::Pebs {
                    sample: PebsSample {
                        timestamp: 1_100,
                        core: 1,
                        ip: 0x400020,
                        addr: 0xDEAD_BEEF_00,
                        size: 8,
                        is_store: true,
                        latency: 233,
                        source: MemLevel::Dram,
                        tlb_miss: true,
                    },
                    object: Some(ObjectId(7)),
                },
            },
            TraceEvent {
                cycles: 1_200,
                core: 0,
                payload: EventPayload::Alloc { base: 1 << 40, size: 4096, callsite: Ip(0x400030) },
            },
            TraceEvent { cycles: 1_300, core: 0, payload: EventPayload::Free { base: 1 << 40 } },
            TraceEvent {
                cycles: 1_400,
                core: 2,
                payload: EventPayload::MuxSwitch { event_index: 1, label: "stores — ω".into() },
            },
            TraceEvent { cycles: 1_500, core: 0, payload: EventPayload::User { kind: 9, value: u64::MAX } },
            TraceEvent {
                cycles: 1_600,
                core: 3,
                payload: EventPayload::RegionExit { region: RegionId(3), counters: c },
            },
        ]
    }

    #[test]
    fn round_trip_every_payload_kind() {
        let evs = events();
        let buf = encode_events(&evs);
        let back = decode_events(&buf, evs.len()).expect("decode");
        assert_eq!(back, evs);
    }

    #[test]
    fn pebs_envelope_reconstructed() {
        let evs = events();
        let buf = encode_events(&evs);
        let back = decode_events(&buf, evs.len()).unwrap();
        if let EventPayload::Pebs { sample, .. } = &back[2].payload {
            assert_eq!(sample.timestamp, back[2].cycles);
            assert_eq!(sample.core, back[2].core);
        } else {
            panic!("expected PEBS");
        }
    }

    #[test]
    fn wrong_count_is_rejected() {
        let evs = events();
        let buf = encode_events(&evs);
        assert!(decode_events(&buf, evs.len() - 1).is_err(), "trailing bytes");
        assert!(decode_events(&buf, evs.len() + 1).is_err(), "truncation");
    }

    #[test]
    fn corrupt_tag_is_rejected() {
        let evs = events();
        let mut buf = encode_events(&evs);
        buf[0] = 0xEE;
        assert!(decode_events(&buf, evs.len()).is_err());
    }

    #[test]
    fn empty_chunk() {
        assert_eq!(encode_events(&[]), Vec::<u8>::new());
        assert_eq!(decode_events(&[], 0).unwrap(), Vec::new());
    }

    #[test]
    fn v2_round_trip_every_payload_kind() {
        let evs = events();
        let buf = encode_events_v2(&evs);
        let back = decode_events_v2(&buf, evs.len()).expect("decode v2");
        assert_eq!(back, evs);
    }

    #[test]
    fn v2_incremental_builder_equals_batch_encode() {
        let evs = events();
        let mut b = ChunkBuilder::new();
        for e in &evs {
            b.push(e);
        }
        assert_eq!(b.events(), evs.len());
        let payload = b.serialize();
        assert_eq!(payload, encode_events_v2(&evs));
        // The builder resets and the next chunk restarts its deltas.
        assert_eq!(b.events(), 0);
        for e in &evs {
            b.push(e);
        }
        assert_eq!(b.serialize(), payload, "reset builder must re-encode identically");
    }

    #[test]
    fn v2_filtered_scan_equals_decode_then_filter() {
        let evs = events();
        let buf = encode_events_v2(&evs);
        let queries = [
            Query::all(),
            Query::all().in_time(1_000, 1_300),
            Query::all().with_kinds(&[EventClass::Pebs, EventClass::User]),
            Query::all().on_cores(&[1, 3]),
            Query::all().touching_object(ObjectId(7)),
            Query::all().touching_object(ObjectId(8)),
            Query::all().in_time(0, 0),
        ];
        for q in &queries {
            let mut scratch = DecodeScratch::default();
            let mut got = Vec::new();
            let outcome =
                scan_events_v2(&buf, evs.len(), Some(q), &mut scratch, &mut got).unwrap();
            let want: Vec<_> = evs.iter().filter(|e| q.matches(e)).cloned().collect();
            assert_eq!(got, want, "{q:?}");
            assert_eq!(outcome.scanned, evs.len() as u64);
            assert_eq!(outcome.matched, want.len() as u64);
        }
    }

    #[test]
    fn v2_rejects_wrong_count_and_corrupt_sections() {
        let evs = events();
        let buf = encode_events_v2(&evs);
        assert!(decode_events_v2(&buf, evs.len() - 1).is_err());
        assert!(decode_events_v2(&buf, evs.len() + 1).is_err());
        assert!(decode_events_v2(&buf[..buf.len() - 1], evs.len()).is_err());
        // A corrupt tag column entry is caught.
        let mut bad = buf.clone();
        // Section prefix is 10 varints; the tag column starts after it.
        let mut pos = 0usize;
        for _ in 0..10 {
            crate::varint::get_u64(&bad, &mut pos).unwrap();
        }
        bad[pos] = 0xEE;
        assert!(decode_events_v2(&bad, evs.len()).is_err());
    }

    #[test]
    fn v2_empty_chunk() {
        let buf = encode_events_v2(&[]);
        assert_eq!(decode_events_v2(&buf, 0).unwrap(), Vec::new());
    }

    #[test]
    fn v2_encoding_no_larger_than_v1() {
        // Columns carry the same varints as v1 minus nothing, plus a
        // fixed ~11-byte section table; on any realistic chunk the
        // transposition is a wash before compression and a win after.
        let c = CounterSnapshot::from_values([100, 200, 10, 5, 2, 1, 40, 20, 0, 30, 15, 8]);
        let evs: Vec<TraceEvent> = (0..1000)
            .map(|i| TraceEvent {
                cycles: i * 50,
                core: (i % 4) as usize,
                payload: EventPayload::RegionEnter { region: RegionId(1), counters: c },
            })
            .collect();
        let v1 = encode_events(&evs);
        let v2 = encode_events_v2(&evs);
        assert!(v2.len() <= v1.len() + 16, "v2 {} vs v1 {}", v2.len(), v1.len());
        // And the LZ pass likes columns better (or at least as much).
        let lz1 = crate::lz::compress(&v1).len();
        let lz2 = crate::lz::compress(&v2).len();
        assert!(lz2 as f64 <= lz1 as f64 * 1.05, "lz(v2) {lz2} vs lz(v1) {lz1}");
    }

    #[test]
    fn encoding_is_compact() {
        // Region events: tag + delta + core + region + 12 counters —
        // small numbers, so well under the in-memory footprint.
        let c = CounterSnapshot::from_values([100, 200, 10, 5, 2, 1, 40, 20, 0, 30, 15, 8]);
        let evs: Vec<TraceEvent> = (0..1000)
            .map(|i| TraceEvent {
                cycles: i * 50,
                core: (i % 4) as usize,
                payload: EventPayload::RegionEnter { region: RegionId(1), counters: c },
            })
            .collect();
        let buf = encode_events(&evs);
        assert!(buf.len() < evs.len() * 24, "{} bytes for {} events", buf.len(), evs.len());
    }
}
