//! The chunk payload codec: `Vec<TraceEvent>` ⇄ bytes.
//!
//! Events are encoded back-to-back with no framing beyond the event
//! count carried in the chunk footer entry:
//!
//! ```text
//! event := tag:u8                  (EventClass discriminant)
//!          Δcycles:ivarint         (delta vs. previous event in chunk)
//!          core:uvarint
//!          payload                 (per tag, varint fields)
//! ```
//!
//! Timestamps are delta-encoded because consecutive events are close
//! in time — the deltas are tiny varints where absolute cycle counts
//! would be 4–6 bytes each. Deltas are *signed*: a streamed body is
//! written in emission order, which may interleave cores slightly out
//! of global time order.

use crate::varint::{get_bytes, get_i64, get_u64, put_bytes, put_i64, put_u64, CodecError};
use mempersp_extrae::events::{EventPayload, RegionId, TraceEvent};
use mempersp_extrae::objects::ObjectId;
use mempersp_extrae::query::EventClass;
use mempersp_extrae::source::Ip;
use mempersp_memsim::MemLevel;
use mempersp_pebs::{CounterSnapshot, EventKind, PebsSample};

fn put_counters(out: &mut Vec<u8>, c: &CounterSnapshot) {
    for v in c.values() {
        put_u64(out, *v);
    }
}

fn get_counters(buf: &[u8], pos: &mut usize) -> Result<CounterSnapshot, CodecError> {
    let mut vals = [0u64; EventKind::ALL.len()];
    for v in &mut vals {
        *v = get_u64(buf, pos)?;
    }
    Ok(CounterSnapshot::from_values(vals))
}

fn level_code(l: MemLevel) -> u8 {
    match l {
        MemLevel::L1 => 0,
        MemLevel::L2 => 1,
        MemLevel::L3 => 2,
        MemLevel::Dram => 3,
    }
}

fn level_from(code: u8, at: usize) -> Result<MemLevel, CodecError> {
    match code {
        0 => Ok(MemLevel::L1),
        1 => Ok(MemLevel::L2),
        2 => Ok(MemLevel::L3),
        3 => Ok(MemLevel::Dram),
        other => Err(CodecError { offset: at, message: format!("bad memory level code {other}") }),
    }
}

/// Append one event to `out`. `prev_cycles` is the running timestamp
/// of the previous event in the same chunk (0 for the first) and is
/// updated in place.
pub fn encode_event(out: &mut Vec<u8>, e: &TraceEvent, prev_cycles: &mut u64) {
    out.push(EventClass::of(&e.payload) as u8);
    put_i64(out, e.cycles.wrapping_sub(*prev_cycles) as i64);
    *prev_cycles = e.cycles;
    put_u64(out, e.core as u64);
    match &e.payload {
        EventPayload::RegionEnter { region, counters }
        | EventPayload::RegionExit { region, counters } => {
            put_u64(out, region.0 as u64);
            put_counters(out, counters);
        }
        EventPayload::CounterSample { ip, counters, stack } => {
            put_u64(out, ip.0);
            put_counters(out, counters);
            put_u64(out, stack.len() as u64);
            for r in stack {
                put_u64(out, r.0 as u64);
            }
        }
        EventPayload::Pebs { sample, object } => {
            // timestamp and core are reconstructed from the event
            // envelope; only the sample-specific fields are stored.
            let flags = u8::from(sample.is_store)
                | (u8::from(sample.tlb_miss) << 1)
                | (u8::from(object.is_some()) << 2);
            out.push(flags);
            put_u64(out, sample.ip);
            put_u64(out, sample.addr);
            put_u64(out, sample.size as u64);
            put_u64(out, sample.latency as u64);
            out.push(level_code(sample.source));
            if let Some(o) = object {
                put_u64(out, o.0 as u64);
            }
        }
        EventPayload::Alloc { base, size, callsite } => {
            put_u64(out, *base);
            put_u64(out, *size);
            put_u64(out, callsite.0);
        }
        EventPayload::Free { base } => {
            put_u64(out, *base);
        }
        EventPayload::MuxSwitch { event_index, label } => {
            put_u64(out, *event_index as u64);
            put_bytes(out, label.as_bytes());
        }
        EventPayload::User { kind, value } => {
            put_u64(out, *kind as u64);
            put_u64(out, *value);
        }
    }
}

/// Encode a whole chunk of events.
pub fn encode_events(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 16);
    let mut prev = 0u64;
    for e in events {
        encode_event(&mut out, e, &mut prev);
    }
    out
}

/// Decode exactly `count` events from `buf` (the whole chunk payload).
pub fn decode_events(buf: &[u8], count: usize) -> Result<Vec<TraceEvent>, CodecError> {
    let mut pos = 0usize;
    let mut prev = 0u64;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_event(buf, &mut pos, &mut prev)?);
    }
    if pos != buf.len() {
        return Err(CodecError {
            offset: pos,
            message: format!("{} trailing bytes after final event", buf.len() - pos),
        });
    }
    Ok(out)
}

fn decode_event(buf: &[u8], pos: &mut usize, prev_cycles: &mut u64) -> Result<TraceEvent, CodecError> {
    let at = *pos;
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| CodecError { offset: at, message: "truncated event tag".into() })?;
    *pos += 1;
    let delta = get_i64(buf, pos)?;
    let cycles = prev_cycles.wrapping_add(delta as u64);
    *prev_cycles = cycles;
    let core = get_u64(buf, pos)? as usize;
    let payload = match tag {
        t if t == EventClass::RegionEnter as u8 || t == EventClass::RegionExit as u8 => {
            let region = RegionId(get_u64(buf, pos)? as u32);
            let counters = get_counters(buf, pos)?;
            if t == EventClass::RegionEnter as u8 {
                EventPayload::RegionEnter { region, counters }
            } else {
                EventPayload::RegionExit { region, counters }
            }
        }
        t if t == EventClass::CounterSample as u8 => {
            let ip = Ip(get_u64(buf, pos)?);
            let counters = get_counters(buf, pos)?;
            let n = get_u64(buf, pos)? as usize;
            if n > buf.len() {
                return Err(CodecError { offset: at, message: format!("stack of {n} entries overruns chunk") });
            }
            let mut stack = Vec::with_capacity(n);
            for _ in 0..n {
                stack.push(RegionId(get_u64(buf, pos)? as u32));
            }
            EventPayload::CounterSample { ip, counters, stack }
        }
        t if t == EventClass::Pebs as u8 => {
            let flags = *buf
                .get(*pos)
                .ok_or_else(|| CodecError { offset: *pos, message: "truncated PEBS flags".into() })?;
            *pos += 1;
            let ip = get_u64(buf, pos)?;
            let addr = get_u64(buf, pos)?;
            let size = get_u64(buf, pos)? as u32;
            let latency = get_u64(buf, pos)? as u32;
            let lvl = *buf
                .get(*pos)
                .ok_or_else(|| CodecError { offset: *pos, message: "truncated PEBS level".into() })?;
            *pos += 1;
            let source = level_from(lvl, *pos - 1)?;
            let object = if flags & 0b100 != 0 {
                Some(ObjectId(get_u64(buf, pos)? as u32))
            } else {
                None
            };
            EventPayload::Pebs {
                sample: PebsSample {
                    timestamp: cycles,
                    core,
                    ip,
                    addr,
                    size,
                    is_store: flags & 0b001 != 0,
                    latency,
                    source,
                    tlb_miss: flags & 0b010 != 0,
                },
                object,
            }
        }
        t if t == EventClass::Alloc as u8 => EventPayload::Alloc {
            base: get_u64(buf, pos)?,
            size: get_u64(buf, pos)?,
            callsite: Ip(get_u64(buf, pos)?),
        },
        t if t == EventClass::Free as u8 => EventPayload::Free { base: get_u64(buf, pos)? },
        t if t == EventClass::MuxSwitch as u8 => {
            let event_index = get_u64(buf, pos)? as usize;
            let label = String::from_utf8(get_bytes(buf, pos)?.to_vec())
                .map_err(|_| CodecError { offset: at, message: "mux label is not UTF-8".into() })?;
            EventPayload::MuxSwitch { event_index, label }
        }
        t if t == EventClass::User as u8 => EventPayload::User {
            kind: get_u64(buf, pos)? as u32,
            value: get_u64(buf, pos)?,
        },
        other => {
            return Err(CodecError { offset: at, message: format!("unknown event tag {other}") })
        }
    };
    Ok(TraceEvent { cycles, core, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Vec<TraceEvent> {
        let c = CounterSnapshot::from_values([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        vec![
            TraceEvent {
                cycles: 1_000,
                core: 0,
                payload: EventPayload::RegionEnter { region: RegionId(3), counters: c },
            },
            TraceEvent {
                cycles: 900, // out-of-order: negative delta
                core: 1,
                payload: EventPayload::CounterSample {
                    ip: Ip(0x400010),
                    counters: c,
                    stack: vec![RegionId(0), RegionId(3)],
                },
            },
            TraceEvent {
                cycles: 1_100,
                core: 1,
                payload: EventPayload::Pebs {
                    sample: PebsSample {
                        timestamp: 1_100,
                        core: 1,
                        ip: 0x400020,
                        addr: 0xDEAD_BEEF_00,
                        size: 8,
                        is_store: true,
                        latency: 233,
                        source: MemLevel::Dram,
                        tlb_miss: true,
                    },
                    object: Some(ObjectId(7)),
                },
            },
            TraceEvent {
                cycles: 1_200,
                core: 0,
                payload: EventPayload::Alloc { base: 1 << 40, size: 4096, callsite: Ip(0x400030) },
            },
            TraceEvent { cycles: 1_300, core: 0, payload: EventPayload::Free { base: 1 << 40 } },
            TraceEvent {
                cycles: 1_400,
                core: 2,
                payload: EventPayload::MuxSwitch { event_index: 1, label: "stores — ω".into() },
            },
            TraceEvent { cycles: 1_500, core: 0, payload: EventPayload::User { kind: 9, value: u64::MAX } },
            TraceEvent {
                cycles: 1_600,
                core: 3,
                payload: EventPayload::RegionExit { region: RegionId(3), counters: c },
            },
        ]
    }

    #[test]
    fn round_trip_every_payload_kind() {
        let evs = events();
        let buf = encode_events(&evs);
        let back = decode_events(&buf, evs.len()).expect("decode");
        assert_eq!(back, evs);
    }

    #[test]
    fn pebs_envelope_reconstructed() {
        let evs = events();
        let buf = encode_events(&evs);
        let back = decode_events(&buf, evs.len()).unwrap();
        if let EventPayload::Pebs { sample, .. } = &back[2].payload {
            assert_eq!(sample.timestamp, back[2].cycles);
            assert_eq!(sample.core, back[2].core);
        } else {
            panic!("expected PEBS");
        }
    }

    #[test]
    fn wrong_count_is_rejected() {
        let evs = events();
        let buf = encode_events(&evs);
        assert!(decode_events(&buf, evs.len() - 1).is_err(), "trailing bytes");
        assert!(decode_events(&buf, evs.len() + 1).is_err(), "truncation");
    }

    #[test]
    fn corrupt_tag_is_rejected() {
        let evs = events();
        let mut buf = encode_events(&evs);
        buf[0] = 0xEE;
        assert!(decode_events(&buf, evs.len()).is_err());
    }

    #[test]
    fn empty_chunk() {
        assert_eq!(encode_events(&[]), Vec::<u8>::new());
        assert_eq!(decode_events(&[], 0).unwrap(), Vec::new());
    }

    #[test]
    fn encoding_is_compact() {
        // Region events: tag + delta + core + region + 12 counters —
        // small numbers, so well under the in-memory footprint.
        let c = CounterSnapshot::from_values([100, 200, 10, 5, 2, 1, 40, 20, 0, 30, 15, 8]);
        let evs: Vec<TraceEvent> = (0..1000)
            .map(|i| TraceEvent {
                cycles: i * 50,
                core: (i % 4) as usize,
                payload: EventPayload::RegionEnter { region: RegionId(1), counters: c },
            })
            .collect();
        let buf = encode_events(&evs);
        assert!(buf.len() < evs.len() * 24, "{} bytes for {} events", buf.len(), evs.len());
    }
}
