//! Cooperative cancellation for long scans.
//!
//! A [`CancelToken`] carries an explicit cancel flag (shared through
//! clones) and an optional wall-clock deadline. Scan loops call
//! [`CancelToken::check`] at chunk boundaries — the natural quantum of
//! work in the store — so a query over a gigabyte trace notices a
//! cancelled client or an expired request deadline within one chunk's
//! decode, not at the end of the file. Readers are shared across
//! server requests behind an `Arc`, so the token travels per-call
//! rather than living on the reader.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheaply clonable cancellation handle. Clones share the cancel
/// flag; the deadline is copied (it is immutable after construction).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that also expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: Instant::now().checked_add(timeout) }
    }

    /// A token that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: Some(deadline) }
    }

    /// Trip the explicit cancel flag (visible to every clone).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Error out if cancelled: `TimedOut` for an expired deadline,
    /// `Interrupted` for an explicit cancel. Scan loops propagate this
    /// like any other IO error.
    pub fn check(&self) -> io::Result<()> {
        if self.flag.load(Ordering::Acquire) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "scan cancelled"));
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "scan deadline exceeded"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.check().unwrap_err().kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn expired_deadline_is_timed_out() {
        let t = CancelToken::with_timeout(Duration::from_secs(0));
        assert!(t.is_cancelled());
        assert_eq!(t.check().unwrap_err().kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn future_deadline_passes() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(t.check().is_ok());
    }
}
