//! LEB128 variable-length integers, the store's primitive encoding.
//!
//! Event records are dominated by small numbers — deltas between
//! consecutive timestamps, core ids, sizes, latencies — so a
//! byte-per-7-bits encoding shrinks them far below their fixed-width
//! forms. Signed values (timestamp deltas may be negative when cores
//! interleave out of order) are zig-zag folded first.

/// Decoding failure: truncated or over-long input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for std::io::Error {
    fn from(e: CodecError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Append `v` as an unsigned LEB128 varint.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned varint at `*pos`, advancing it.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let start = *pos;
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or_else(|| CodecError {
            offset: start,
            message: "truncated varint".into(),
        })?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError { offset: start, message: "varint overflows u64".into() });
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zig-zag fold a signed value into an unsigned one.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a signed varint (zig-zag + LEB128).
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, zigzag(v));
}

/// Read a signed varint at `*pos`, advancing it.
pub fn get_i64(buf: &[u8], pos: &mut usize) -> Result<i64, CodecError> {
    Ok(unzigzag(get_u64(buf, pos)?))
}

/// A positioned varint decoder with a word-at-a-time fast path.
///
/// [`get_u64`] reads one byte per iteration with a bounds check each
/// time — fine for footers, far too slow for the millions of varints
/// a chunk decode chews through. `Reader` instead loads 8 bytes in one
/// unaligned read, finds the terminating byte with a single
/// `trailing_zeros`, and folds the 7-bit groups together with three
/// shift/mask steps — no per-byte branches for the ≤8-byte varints
/// that make up essentially all trace data. Inputs shorter than the
/// 8-byte window and 9–10-byte varints fall back to the checked loop.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Continuation bits of an 8-byte LE word of LEB128 data.
const CONT_MASK: u64 = 0x8080_8080_8080_8080;

/// Fold the 7-bit payload groups of an `n`-byte varint (already
/// masked to its low `8n` bits, continuation bits cleared) into the
/// decoded value.
#[inline(always)]
fn fold7(x: u64) -> u64 {
    let x = (x & 0x007F_007F_007F_007F) | ((x & 0x7F00_7F00_7F00_7F00) >> 1);
    let x = (x & 0x0000_3FFF_0000_3FFF) | ((x & 0x3FFF_0000_3FFF_0000) >> 2);
    (x & 0x0000_0000_0FFF_FFFF) | ((x & 0x0FFF_FFFF_0000_0000) >> 4)
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    #[inline]
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Read one raw byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| CodecError {
            offset: self.pos,
            message: "truncated byte".into(),
        })?;
        self.pos += 1;
        Ok(b)
    }

    /// Read an unsigned varint (word-at-a-time fast path).
    #[inline]
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        if self.pos + 8 <= self.buf.len() {
            let word = u64::from_le_bytes(
                self.buf[self.pos..self.pos + 8].try_into().expect("8 bytes"),
            );
            let stops = !word & CONT_MASK;
            if stops != 0 {
                let n = (stops.trailing_zeros() >> 3) as usize + 1;
                // Mask to the n live bytes; continuation bits vanish
                // with the same mask since only payload bits survive.
                let keep = if n == 8 { u64::MAX } else { (1u64 << (8 * n)) - 1 };
                self.pos += n;
                return Ok(fold7(word & keep & !CONT_MASK));
            }
            // 9–10 byte varint (value ≥ 2^56): rare, take the loop.
        }
        let v = get_u64(self.buf, &mut self.pos)?;
        Ok(v)
    }

    /// Read a signed varint (zig-zag).
    #[inline]
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(unzigzag(self.u64()?))
    }

    /// Skip one varint without decoding its value.
    #[inline]
    pub fn skip_varint(&mut self) -> Result<(), CodecError> {
        if self.pos + 8 <= self.buf.len() {
            let word = u64::from_le_bytes(
                self.buf[self.pos..self.pos + 8].try_into().expect("8 bytes"),
            );
            let stops = !word & CONT_MASK;
            if stops != 0 {
                self.pos += (stops.trailing_zeros() >> 3) as usize + 1;
                return Ok(());
            }
        }
        get_u64(self.buf, &mut self.pos).map(|_| ())
    }

    /// Skip `n` varints.
    #[inline]
    pub fn skip_varints(&mut self, n: usize) -> Result<(), CodecError> {
        for _ in 0..n {
            self.skip_varint()?;
        }
        Ok(())
    }

    /// Read a length-prefixed byte string.
    #[inline]
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        get_bytes(self.buf, &mut self.pos)
    }
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Read a length-prefixed byte string at `*pos`, advancing it.
pub fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], CodecError> {
    let start = *pos;
    let len = get_u64(buf, pos)? as usize;
    let end = pos.checked_add(len).filter(|&e| e <= buf.len()).ok_or_else(|| CodecError {
        offset: start,
        message: format!("byte string of length {len} overruns buffer"),
    })?;
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip_boundaries() {
        let values = [0, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i64_round_trip_signs() {
        for &v in &[0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            let mut buf = Vec::new();
            put_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_i64(&mut buf, -50);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(get_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert!(get_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn fast_reader_agrees_with_byte_loop() {
        // Every interesting width, including 9–10 byte encodings and
        // values that straddle the 8-byte window at the buffer tail.
        let values: Vec<u64> = (0..64)
            .map(|s| 1u64 << s)
            .chain([0, 1, 127, 128, 255, 16_383, 16_384, u32::MAX as u64, u64::MAX, u64::MAX - 1])
            .collect();
        let mut buf = Vec::new();
        for &v in &values {
            put_u64(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        let mut pos = 0usize;
        for &v in &values {
            assert_eq!(r.u64().unwrap(), v);
            assert_eq!(get_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(r.pos(), pos, "fast reader must consume identical bytes");
        }
        assert!(r.is_done());

        // Signed values through the same fast path.
        let mut sbuf = Vec::new();
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            put_i64(&mut sbuf, v);
        }
        let mut r = Reader::new(&sbuf);
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            assert_eq!(r.i64().unwrap(), v);
        }
    }

    #[test]
    fn fast_reader_skip_matches_decode_width() {
        let values = [0u64, 127, 128, 1 << 20, 1 << 55, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            put_u64(&mut buf, v);
        }
        let mut skip = Reader::new(&buf);
        let mut read = Reader::new(&buf);
        for _ in &values {
            skip.skip_varint().unwrap();
            read.u64().unwrap();
            assert_eq!(skip.pos(), read.pos());
        }
        assert!(skip.is_done());
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert!(r.skip_varints(values.len()).is_err(), "truncated tail detected");
    }

    #[test]
    fn bytes_round_trip_and_bounds_check() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        put_bytes(&mut buf, b"");
        let mut pos = 0;
        assert_eq!(get_bytes(&buf, &mut pos).unwrap(), b"hello");
        assert_eq!(get_bytes(&buf, &mut pos).unwrap(), b"");
        assert_eq!(pos, buf.len());

        let mut bad = Vec::new();
        put_u64(&mut bad, 1000);
        let mut pos = 0;
        assert!(get_bytes(&bad, &mut pos).is_err());
    }
}
