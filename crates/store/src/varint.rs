//! LEB128 variable-length integers, the store's primitive encoding.
//!
//! Event records are dominated by small numbers — deltas between
//! consecutive timestamps, core ids, sizes, latencies — so a
//! byte-per-7-bits encoding shrinks them far below their fixed-width
//! forms. Signed values (timestamp deltas may be negative when cores
//! interleave out of order) are zig-zag folded first.

/// Decoding failure: truncated or over-long input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for std::io::Error {
    fn from(e: CodecError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Append `v` as an unsigned LEB128 varint.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned varint at `*pos`, advancing it.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let start = *pos;
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or_else(|| CodecError {
            offset: start,
            message: "truncated varint".into(),
        })?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError { offset: start, message: "varint overflows u64".into() });
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zig-zag fold a signed value into an unsigned one.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a signed varint (zig-zag + LEB128).
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, zigzag(v));
}

/// Read a signed varint at `*pos`, advancing it.
pub fn get_i64(buf: &[u8], pos: &mut usize) -> Result<i64, CodecError> {
    Ok(unzigzag(get_u64(buf, pos)?))
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Read a length-prefixed byte string at `*pos`, advancing it.
pub fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], CodecError> {
    let start = *pos;
    let len = get_u64(buf, pos)? as usize;
    let end = pos.checked_add(len).filter(|&e| e <= buf.len()).ok_or_else(|| CodecError {
        offset: start,
        message: format!("byte string of length {len} overruns buffer"),
    })?;
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip_boundaries() {
        let values = [0, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i64_round_trip_signs() {
        for &v in &[0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            let mut buf = Vec::new();
            put_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_i64(&mut buf, -50);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(get_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert!(get_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn bytes_round_trip_and_bounds_check() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        put_bytes(&mut buf, b"");
        let mut pos = 0;
        assert_eq!(get_bytes(&buf, &mut pos).unwrap(), b"hello");
        assert_eq!(get_bytes(&buf, &mut pos).unwrap(), b"");
        assert_eq!(pos, buf.len());

        let mut bad = Vec::new();
        put_u64(&mut bad, 1000);
        let mut pos = 0;
        assert!(get_bytes(&bad, &mut pos).is_err());
    }
}
