//! A small in-tree LZ77 block compressor.
//!
//! The workspace builds offline, so the store cannot pull zstd/lz4;
//! this module provides the "simple LZ-style codec" the chunk layer
//! applies after varint encoding. Design goals are correctness and
//! decode speed, not ratio records:
//!
//! * greedy hash-chain matching over a 64 KiB window (chunks are
//!   ~64 KiB, so the window always covers the whole block);
//! * token stream: a control byte carries 8 flags (LSB first;
//!   0 = literal byte follows, 1 = match follows), a match is
//!   `offset:u16le` + `len-MIN_MATCH:u8` (match lengths 4..=259);
//! * decompression verifies every offset/length against the already
//!   produced output, so corrupt blocks fail loudly instead of
//!   reading out of bounds.

use crate::varint::CodecError;

/// Shortest match worth a 3-byte token (a 3-byte match would break
/// even only at flag-bit granularity; 4 keeps the encoder simple).
const MIN_MATCH: usize = 4;
/// `MIN_MATCH + u8::MAX`.
const MAX_MATCH: usize = MIN_MATCH + 255;
/// Window = maximum back-reference distance (u16 offset, 0 invalid).
const MAX_OFFSET: usize = u16::MAX as usize;

const HASH_BITS: u32 = 15;

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` into a token stream. The empty input compresses
/// to the empty output.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // head[h] = most recent position with hash h (+1; 0 = none).
    let mut head = vec![0u32; 1 << HASH_BITS];

    let mut flags_at = usize::MAX;
    let mut flags = 0u8;
    let mut nflags = 0u8;
    let mut push_token = |out: &mut Vec<u8>, is_match: bool| {
        if nflags == 0 {
            flags_at = out.len();
            out.push(0);
            flags = 0;
        }
        if is_match {
            flags |= 1 << nflags;
        }
        nflags += 1;
        out[flags_at] = flags;
        if nflags == 8 {
            nflags = 0;
        }
    };

    let mut i = 0usize;
    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(&input[i..]);
            let cand = head[h] as usize;
            head[h] = (i + 1) as u32;
            if cand > 0 {
                let cand = cand - 1;
                let off = i - cand;
                if off <= MAX_OFFSET && off > 0 {
                    let limit = (input.len() - i).min(MAX_MATCH);
                    let mut l = 0usize;
                    while l < limit && input[cand + l] == input[i + l] {
                        l += 1;
                    }
                    if l >= MIN_MATCH {
                        best_len = l;
                        best_off = off;
                    }
                }
            }
        }
        if best_len >= MIN_MATCH {
            push_token(&mut out, true);
            out.extend_from_slice(&(best_off as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Seed the hash table inside the match so later data can
            // reference positions we skipped over (bounded to keep the
            // encoder O(n)).
            let seed_end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH));
            let mut j = i + 1;
            while j < seed_end && j < i + 16 {
                head[hash4(&input[j..])] = (j + 1) as u32;
                j += 1;
            }
            i += best_len;
        } else {
            push_token(&mut out, false);
            out.push(input[i]);
            i += 1;
        }
    }
    out
}

/// Decompress a [`compress`]-produced stream; `expected_len` is the
/// raw length recorded next to the block (the format always stores
/// it), used to pre-size and to verify termination.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let err = |offset: usize, message: &str| CodecError { offset, message: message.into() };
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0usize;
    while out.len() < expected_len {
        let flags = *input.get(i).ok_or_else(|| err(i, "truncated control byte"))?;
        i += 1;
        for bit in 0..8 {
            if out.len() == expected_len {
                break;
            }
            if flags & (1 << bit) == 0 {
                let b = *input.get(i).ok_or_else(|| err(i, "truncated literal"))?;
                i += 1;
                out.push(b);
            } else {
                if i + 3 > input.len() {
                    return Err(err(i, "truncated match token"));
                }
                let off = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
                let len = input[i + 2] as usize + MIN_MATCH;
                i += 3;
                if off == 0 || off > out.len() {
                    return Err(err(i, "match offset out of range"));
                }
                if out.len() + len > expected_len {
                    return Err(err(i, "match overruns declared length"));
                }
                let start = out.len() - off;
                // Byte-by-byte: overlapping matches (off < len) are
                // legal and replicate the just-written bytes, RLE-style.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if i != input.len() {
        return Err(err(i, "trailing garbage after final token"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data: Vec<u8> = b"E 100 0 ENTER 3 1,2,3,4,5,6,7,8,9,10,11,12\n".repeat(200);
        let c = compress(&data);
        assert!(c.len() < data.len() / 3, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn rle_overlapping_matches() {
        let data = vec![7u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 200, "run-length-like compression: {}", c.len());
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_data_survives() {
        // A simple LCG as a deterministic pseudo-random stream.
        let mut x = 0x2545F491_4F6CDD1Du64;
        let data: Vec<u8> = (0..65_536)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn corrupt_offset_is_rejected() {
        // One match token referencing before the start of output.
        let stream = vec![0b0000_0001u8, 0xFF, 0xFF, 0x00];
        assert!(decompress(&stream, 100).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let data: Vec<u8> = b"abcdabcdabcdabcd".to_vec();
        let mut c = compress(&data);
        c.pop();
        assert!(decompress(&c, data.len()).is_err());
    }

    #[test]
    fn wrong_expected_len_is_rejected() {
        let data = vec![1u8; 64];
        let c = compress(&data);
        assert!(decompress(&c, 63).is_err(), "trailing token detected");
    }
}
