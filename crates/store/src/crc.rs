//! In-tree CRC32C (Castagnoli, reflected polynomial 0x82F63B78).
//!
//! Format v3 checksums every chunk frame, chunk payload, the header
//! blob and the footer index with CRC32C. The store stays
//! dependency-free (matching the in-tree LZ77 ethos), so the
//! implementation lives here: a hardware path built on the SSE4.2
//! `crc32` instruction where the CPU has it, and a slicing-by-8
//! software fallback everywhere else. Both produce the standard
//! CRC32C (init `0xFFFF_FFFF`, final xor, e.g. `crc32c(b"123456789")
//! == 0xE306_9283`).

const POLY: u32 = 0x82F6_3B78;

/// Eight 256-entry tables for slicing-by-8: `TABLES[k][b]` folds byte
/// `b` sitting `k` bytes ahead of the current CRC window.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// `SHIFT_POWERS[k]` is the GF(2) matrix (32 column vectors) that
/// advances a CRC register past `2^k` zero bytes — the building block
/// of [`shift`], which lets the hardware path run three independent
/// `crc32q` chains and stitch their registers back together.
static SHIFT_POWERS: [[u32; 32]; 48] = build_shift_powers();

/// Apply a bit matrix to a register: XOR of the columns selected by
/// the set bits of `v`.
const fn mat_apply(m: &[u32; 32], mut v: u32) -> u32 {
    let mut r = 0u32;
    let mut i = 0;
    while v != 0 {
        if v & 1 != 0 {
            r ^= m[i];
        }
        v >>= 1;
        i += 1;
    }
    r
}

const fn mat_mult(a: &[u32; 32], b: &[u32; 32]) -> [u32; 32] {
    let mut c = [0u32; 32];
    let mut i = 0;
    while i < 32 {
        c[i] = mat_apply(a, b[i]);
        i += 1;
    }
    c
}

const fn build_shift_powers() -> [[u32; 32]; 48] {
    // Advancing the register past one zero byte is
    // `reg' = (reg >> 8) ^ TABLES[0][reg & 0xFF]` — linear in `reg`,
    // so its matrix columns are the images of the unit vectors.
    let mut m1 = [0u32; 32];
    let mut i = 0;
    while i < 32 {
        let v = 1u32 << i;
        m1[i] = (v >> 8) ^ TABLES[0][(v & 0xFF) as usize];
        i += 1;
    }
    let mut powers = [[0u32; 32]; 48];
    powers[0] = m1;
    let mut k = 1;
    while k < 48 {
        powers[k] = mat_mult(&powers[k - 1], &powers[k - 1]);
        k += 1;
    }
    powers
}

/// Advance `reg` as if `nbytes` zero bytes followed (O(log n)).
fn shift(mut reg: u32, mut nbytes: u64) -> u32 {
    let mut k = 0;
    while nbytes != 0 && k < SHIFT_POWERS.len() {
        if nbytes & 1 != 0 {
            reg = mat_apply(&SHIFT_POWERS[k], reg);
        }
        nbytes >>= 1;
        k += 1;
    }
    reg
}

fn update_soft(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw_serial(mut crc: u32, data: &[u8]) -> u32 {
    use core::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut chunks = data.chunks_exact(8);
    let mut crc64 = crc as u64;
    for c in chunks.by_ref() {
        let word = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        crc64 = _mm_crc32_u64(crc64, word);
    }
    crc = crc64 as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

/// `crc32q` has a 3-cycle latency, so one serial chain tops out near
/// 2.7 GB/s regardless of the instruction's 1/cycle throughput. Large
/// buffers are split into three equal lanes whose chains interleave
/// (hiding the latency), then the per-lane registers are merged with
/// [`shift`]: `update(r, A‖B‖C) = shift(shift(update(r, A), |B|) ^
/// update(0, B), |C|) ^ update(0, C)` — valid because the raw
/// register update is linear over GF(2).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw(crc: u32, data: &[u8]) -> u32 {
    use core::arch::x86_64::_mm_crc32_u64;
    if data.len() < 3 * 128 {
        return update_hw_serial(crc, data);
    }
    #[inline(always)]
    unsafe fn word(lane: &[u8], i: usize) -> u64 {
        (lane.as_ptr().add(i * 8) as *const u64).read_unaligned().to_le()
    }
    let lane = (data.len() / 3) & !7;
    let words = lane / 8;
    let (a, rest) = data.split_at(lane);
    let (b, c) = rest.split_at(lane); // `c` is the longest lane
    let mut ra = crc as u64;
    let mut rb = 0u64;
    let mut rc = 0u64;
    for i in 0..words {
        ra = _mm_crc32_u64(ra, word(a, i));
        rb = _mm_crc32_u64(rb, word(b, i));
        rc = _mm_crc32_u64(rc, word(c, i));
    }
    let rc = update_hw_serial(rc as u32, &c[words * 8..]);
    shift(shift(ra as u32, lane as u64) ^ rb as u32, c.len() as u64) ^ rc
}

fn update(crc: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // Safety: feature presence checked at runtime just above.
            return unsafe { update_hw(crc, data) };
        }
    }
    update_soft(crc, data)
}

/// One-shot CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    Crc32c::new().chain(data).finish()
}

/// Incremental CRC32C, for checksums spanning non-contiguous slices
/// (e.g. the header-blob compression byte followed by the blob).
#[derive(Clone, Copy)]
pub struct Crc32c(u32);

impl Crc32c {
    pub fn new() -> Self {
        Crc32c(0xFFFF_FFFF)
    }

    pub fn update(&mut self, data: &[u8]) {
        self.0 = update(self.0, data);
    }

    #[must_use]
    pub fn chain(mut self, data: &[u8]) -> Self {
        self.update(data);
        self
    }

    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 3720 appendix B test vectors for CRC32C.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C);
    }

    #[test]
    fn hardware_and_software_agree() {
        // Exercise every alignment/remainder combination across both
        // paths; on non-SSE4.2 hosts this degenerates to soft==soft.
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for start in 0..8 {
            for len in [0, 1, 7, 8, 9, 63, 64, 65, 255, 1000] {
                let slice = &data[start..start + len];
                let soft = update_soft(0xFFFF_FFFF, slice) ^ 0xFFFF_FFFF;
                assert_eq!(crc32c(slice), soft, "start {start} len {len}");
            }
        }
    }

    #[test]
    fn interleaved_hw_path_agrees_on_large_buffers() {
        // Past the 3-lane threshold the hardware path splits and
        // recombines with `shift`; every length/alignment must still
        // match the software answer bit for bit.
        let data: Vec<u8> =
            (0..200_000u32).map(|i| (i.wrapping_mul(2654435761) >> 11) as u8).collect();
        for start in [0, 1, 5] {
            for len in [383, 384, 385, 1000, 4096, 65_537, 199_993] {
                let slice = &data[start..start + len];
                let soft = update_soft(0xFFFF_FFFF, slice) ^ 0xFFFF_FFFF;
                assert_eq!(crc32c(slice), soft, "start {start} len {len}");
            }
        }
    }

    #[test]
    fn shift_matches_feeding_zero_bytes() {
        let zeros = vec![0u8; 5000];
        for n in [0usize, 1, 7, 8, 9, 255, 256, 4999] {
            let reg = update_soft(0xDEAD_BEEF, &zeros[..n]);
            assert_eq!(shift(0xDEAD_BEEF, n as u64), reg, "n {n}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..300u16).map(|i| i as u8).collect();
        for split in [0, 1, 8, 17, 299, 300] {
            let inc = Crc32c::new().chain(&data[..split]).chain(&data[split..]).finish();
            assert_eq!(inc, crc32c(&data), "split {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0xA5u8; 257];
        let clean = crc32c(&data);
        for byte in [0, 1, 128, 255, 256] {
            for bit in 0..8 {
                let mut dirty = data.clone();
                dirty[byte] ^= 1 << bit;
                assert_ne!(crc32c(&dirty), clean, "flip byte {byte} bit {bit} undetected");
            }
        }
    }
}
