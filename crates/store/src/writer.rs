//! The append-only store writer.
//!
//! File layout (`.mps`, format v4 — v3 differs only in the chunk
//! payload codec and the `3` in both magics):
//!
//! ```text
//! +-----------------+ offset 0
//! | magic MPSTORE4  | 8 bytes (MPSTORE1/2/3 remain readable)
//! +-----------------+
//! | frame 0         | 28-byte self-delimiting chunk header:
//! | chunk payload 0 |   length + CRC32C of payload + CRC of itself
//! | frame 1         | v4 stream-vbyte columns, raw or LZ (~64 KiB
//! | chunk payload 1 |   each; v3 files carry v2 LEB128 columns)
//! | ...             |
//! +-----------------+
//! | header blob     | compression code + header_sections() text
//! |                 |   + CRC32C of both
//! +-----------------+ <- index_off
//! | footer index    | chunk count, ChunkMeta per chunk,
//! |                 | header blob location
//! +-----------------+
//! | trailer         | index_off:u64le + index CRC32C + magic
//! |                 | MPSEND04  (20 bytes)
//! +-----------------+
//! ```
//!
//! Chunks stream out as the run progresses — nothing before the
//! footer is ever rewritten, so a writer needs O(chunk) memory no
//! matter how long the trace is (the footer index grows at ~40 bytes
//! per 64 KiB chunk). The header — symbols, objects, region names,
//! which are only complete at the end of the run — goes *behind* the
//! chunks, mirroring how Extrae's merger appends global information
//! post-mortem.
//!
//! # Crash safety
//!
//! Every run of this writer is atomic and durable: bytes go to
//! `<path>.tmp`, and [`StoreWriter::finish`] flushes, fsyncs the file,
//! renames it onto the final path and fsyncs the parent directory — a
//! reader can never observe a half-written store at the final path,
//! and a crash leaves at most an orphaned `.tmp` (removed by the
//! writer's `Drop` on in-process error paths, salvageable by
//! `mempersp recover` after a hard kill). The per-chunk frames and the
//! checksummed footer are what make that salvage possible: a
//! footer-less `.tmp` is recovered by forward-scanning frames, each
//! self-validating via its own CRC32C. See `DESIGN.md` §12.
//!
//! # Pipelined compression
//!
//! With `threads ≥ 2` ([`StoreWriter::with_threads`]) the LZ pass
//! comes off the ingest thread: sealed chunks are handed to a bounded
//! pool of compressor workers, and a dedicated committer thread writes
//! the finished payloads to the file **strictly in seal order**, so
//! the produced bytes are identical at any thread count — ingest
//! overlaps compression instead of stalling on it. Backpressure is the
//! channel bound: at most a few chunks are ever in flight, keeping the
//! writer's memory O(threads × chunk).

use crate::chunk::{ChunkFrame, ChunkMeta, Compression, FRAME_LEN};
use crate::codec::ChunkBuilder;
use crate::codec_v4::ChunkBuilderV4;
use crate::crc::{crc32c, Crc32c};
use crate::fault::StoreFile;
use crate::lz;
use mempersp_extrae::events::TraceEvent;
use mempersp_extrae::stream_writer::EventSink;
use mempersp_extrae::tracer::Trace;
use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Leading file magic of the stream-vbyte v4 format (what this writer
/// emits by default). The container framing is v3's — only the chunk
/// payload codec differs.
pub const MAGIC_V4: &[u8; 8] = b"MPSTORE4";
/// Leading file magic of the checksummed v3 format (still writable
/// via [`StoreFormat::V3`]).
pub const MAGIC: &[u8; 8] = b"MPSTORE3";
/// Leading magic of the columnar v2 format; the reader still accepts
/// it.
pub const MAGIC_V2: &[u8; 8] = b"MPSTORE2";
/// Leading magic of the original row-oriented format; the reader
/// still accepts it.
pub const MAGIC_V1: &[u8; 8] = b"MPSTORE1";
/// Trailing file magic of v4 (after the index offset + index CRC).
pub const TRAILER_MAGIC_V4: &[u8; 8] = b"MPSEND04";
/// Trailing file magic of v3 (after the index offset + index CRC).
pub const TRAILER_MAGIC: &[u8; 8] = b"MPSEND03";
/// Trailing file magic shared by v1 and v2 (after the index offset).
pub const TRAILER_MAGIC_V2: &[u8; 8] = b"MPSEND01";
/// v3 trailer size: index_off u64le + index CRC32C + magic.
pub const TRAILER_LEN: usize = 20;
/// v1/v2 trailer size: index_off u64le + magic.
pub const TRAILER_LEN_V2: usize = 16;
/// Default target for one chunk's *raw* encoded payload.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;
/// Default in-flight chunk budget per compressor thread (sealed but
/// not yet committed). The product `threads × this` bounds the
/// pipelined writer's buffered chunks, and with it peak memory.
pub const DEFAULT_INFLIGHT_PER_THREAD: usize = 2;

/// The temp-file twin of a final store path (`trace.mps` →
/// `trace.mps.tmp`): where a writer streams until its atomic rename.
pub fn tmp_path(dest: &Path) -> PathBuf {
    let mut name = dest.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    dest.with_file_name(name)
}

/// fsync the directory holding `entry`, making a just-renamed name
/// durable. (An fsync of the file alone persists its *contents*; the
/// directory entry pointing at them needs its own.)
pub fn sync_parent_dir(entry: &Path) -> io::Result<()> {
    let parent = match entry.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    std::fs::File::open(&parent)
        .and_then(|d| d.sync_all())
        .map_err(|e| io::Error::new(e.kind(), format!("fsync dir {}: {e}", parent.display())))
}

/// Which chunk codec (and magic pair) a [`StoreWriter`] emits. The
/// container — frames, CRCs, footer, trailer shape, salvage — is
/// identical; only the chunk payload encoding differs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum StoreFormat {
    /// LEB128 columnar chunks (`MPSTORE3`/`MPSEND03`).
    V3,
    /// Stream-vbyte columnar chunks (`MPSTORE4`/`MPSEND04`).
    #[default]
    V4,
}

impl StoreFormat {
    pub fn magic(self) -> &'static [u8; 8] {
        match self {
            StoreFormat::V3 => MAGIC,
            StoreFormat::V4 => MAGIC_V4,
        }
    }

    pub fn trailer_magic(self) -> &'static [u8; 8] {
        match self {
            StoreFormat::V3 => TRAILER_MAGIC,
            StoreFormat::V4 => TRAILER_MAGIC_V4,
        }
    }
}

/// The open chunk's encoder, picked by [`StoreFormat`].
enum Builder {
    // Boxed: the builders carry inline column buffers (up to ~1.9 KiB for
    // v4) and there is one Builder per writer shard, so the indirection
    // is free and keeps the enum itself pointer-sized.
    V2(Box<ChunkBuilder>),
    V4(Box<ChunkBuilderV4>),
}

impl Builder {
    fn new(format: StoreFormat) -> Builder {
        match format {
            StoreFormat::V3 => Builder::V2(Box::new(ChunkBuilder::new())),
            StoreFormat::V4 => Builder::V4(Box::new(ChunkBuilderV4::new())),
        }
    }

    fn push(&mut self, e: &TraceEvent) {
        match self {
            Builder::V2(b) => b.push(e),
            Builder::V4(b) => b.push(e),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            Builder::V2(b) => b.encoded_len(),
            Builder::V4(b) => b.encoded_len(),
        }
    }

    fn serialize(&mut self) -> Vec<u8> {
        match self {
            Builder::V2(b) => b.serialize(),
            Builder::V4(b) => b.serialize(),
        }
    }
}

/// What a finished store contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    pub events: u64,
    pub chunks: u64,
    /// Total raw encoded payload bytes (before compression).
    pub raw_bytes: u64,
    /// Total stored payload bytes (after compression).
    pub stored_bytes: u64,
}

/// A sealed chunk travelling to the compressor pool.
struct Job {
    seq: u64,
    raw: Vec<u8>,
    meta: ChunkMeta,
}

/// A compressed chunk travelling to the committer.
struct Done {
    seq: u64,
    payload: Vec<u8>,
    compression: Compression,
    payload_crc: u32,
    meta: ChunkMeta,
}

/// What the committer hands back once every chunk is on disk.
struct CommitDone {
    out: io::BufWriter<Box<dyn StoreFile>>,
    pos: u64,
    metas: Vec<ChunkMeta>,
    raw_bytes: u64,
}

/// Minimum fraction of a chunk LZ must save before it beats `Raw`
/// (1/8 = 12.5%). A `Raw` chunk is served zero-copy straight out of
/// the mmap; an `Lz` chunk pays a full decompression pass on every
/// cold read. Stream-vbyte payloads often shave only a few percent
/// under LZ (width padding compresses, the data bytes do not), and
/// trading a single-digit size win for a decompression pass on the
/// scan path is a loss for a decode-bound store.
const MIN_COMPRESS_DENOM: usize = 8;

/// Compress one sealed chunk, keeping LZ only when it saves at least
/// 1/[`MIN_COMPRESS_DENOM`] of the raw bytes, and checksum the stored
/// bytes — the single pure function both the inline path and the
/// worker pool run, so output bytes never depend on the thread count.
fn compress_chunk(raw: Vec<u8>, mut meta: ChunkMeta) -> (Vec<u8>, Compression, u32, ChunkMeta) {
    meta.raw_len = raw.len() as u32;
    let compressed = lz::compress(&raw);
    let (payload, compression) = if compressed.len() <= raw.len() - raw.len() / MIN_COMPRESS_DENOM {
        (compressed, Compression::Lz)
    } else {
        (raw, Compression::Raw)
    };
    let payload_crc = crc32c(&payload);
    (payload, compression, payload_crc, meta)
}

/// Write one framed chunk at `pos`, returning the finalized meta and
/// the new position. Shared by the inline sink and the committer.
fn write_framed_chunk(
    out: &mut impl io::Write,
    pos: u64,
    payload: &[u8],
    compression: Compression,
    payload_crc: u32,
    mut meta: ChunkMeta,
) -> io::Result<(ChunkMeta, u64)> {
    let frame = ChunkFrame {
        stored_len: payload.len() as u32,
        raw_len: meta.raw_len,
        events: meta.events,
        compression,
        payload_crc,
    };
    out.write_all(&frame.encode())?;
    out.write_all(payload)?;
    meta.offset = pos + FRAME_LEN as u64;
    meta.stored_len = payload.len() as u32;
    meta.compression = compression;
    Ok((meta, pos + (FRAME_LEN + payload.len()) as u64))
}

struct Pipeline {
    jobs: Option<mpsc::SyncSender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    committer: Option<std::thread::JoinHandle<io::Result<CommitDone>>>,
    next_seq: u64,
}

impl Pipeline {
    fn spawn(
        out: io::BufWriter<Box<dyn StoreFile>>,
        pos: u64,
        threads: usize,
        max_inflight: usize,
    ) -> Pipeline {
        // Two bounded hand-off points; together they cap how many
        // sealed chunks can exist between the ingest thread and the
        // committed file, which is what bounds the writer's RSS when a
        // simulation streams into it. The bound never changes the
        // bytes — only how early `append` feels backpressure.
        let max_inflight = max_inflight.max(1);
        let (jobs_tx, jobs_rx) = mpsc::sync_channel::<Job>(max_inflight);
        let (done_tx, done_rx) = mpsc::sync_channel::<Done>(max_inflight);
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));

        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&jobs_rx);
                let tx = done_tx.clone();
                std::thread::spawn(move || loop {
                    // Holding the lock across `recv` serializes job
                    // *hand-off*, not compression, which runs after
                    // the guard drops.
                    let job = match rx.lock().expect("job queue poisoned").recv() {
                        Ok(j) => j,
                        Err(_) => return,
                    };
                    let (payload, compression, payload_crc, meta) = compress_chunk(job.raw, job.meta);
                    if tx
                        .send(Done { seq: job.seq, payload, compression, payload_crc, meta })
                        .is_err()
                    {
                        return; // committer failed; drain and exit
                    }
                })
            })
            .collect();
        drop(done_tx);

        let committer = std::thread::spawn(move || -> io::Result<CommitDone> {
            let mut out = out;
            let mut pos = pos;
            let mut metas = Vec::new();
            let mut raw_bytes = 0u64;
            let mut pending: BTreeMap<u64, Done> = BTreeMap::new();
            let mut next = 0u64;
            for done in done_rx.iter() {
                pending.insert(done.seq, done);
                // Deterministic in-order commit: write only the
                // contiguous prefix, hold later chunks until the gap
                // fills (the channel bound caps how many can wait).
                while let Some(d) = pending.remove(&next) {
                    let (meta, new_pos) =
                        write_framed_chunk(&mut out, pos, &d.payload, d.compression, d.payload_crc, d.meta)?;
                    pos = new_pos;
                    raw_bytes += meta.raw_len as u64;
                    metas.push(meta);
                    next += 1;
                }
            }
            assert!(pending.is_empty(), "compressor pool dropped chunk {next}");
            Ok(CommitDone { out, pos, metas, raw_bytes })
        });

        Pipeline { jobs: Some(jobs_tx), workers, committer: Some(committer), next_seq: 0 }
    }

    fn join(mut self) -> io::Result<CommitDone> {
        drop(self.jobs.take());
        for w in self.workers.drain(..) {
            w.join().expect("compressor worker panicked");
        }
        self.committer
            .take()
            .expect("pipeline joined twice")
            .join()
            .expect("committer panicked")
    }
}

enum Sink {
    /// Chunks compressed and written on the caller thread.
    Inline { out: io::BufWriter<Box<dyn StoreFile>>, pos: u64 },
    /// Chunks compressed on the worker pool, committed in order.
    Pipelined(Pipeline),
    /// Transitional state while swapping sinks (and post-drop).
    Draining,
}

/// Where the finished bytes land: the temp file they stream into and
/// the final path `finish` renames onto.
struct Target {
    tmp: PathBuf,
    dest: PathBuf,
}

/// Streaming writer of the chunked binary container.
pub struct StoreWriter {
    sink: Sink,
    target: Option<Target>,
    chunk_target: usize,
    format: StoreFormat,
    /// Columnar encoder of the open chunk.
    builder: Builder,
    /// Summary of the open chunk.
    open_meta: ChunkMeta,
    /// Sealed-chunk index entries, in commit order (populated lazily
    /// for the pipelined sink — harvested when the pipeline drains).
    metas: Vec<ChunkMeta>,
    total_events: u64,
    raw_bytes: u64,
    finished: bool,
}

impl StoreWriter {
    /// Create a store at `path` with the default ~64 KiB chunk target,
    /// compressing inline on the caller thread.
    pub fn create(path: &Path) -> io::Result<StoreWriter> {
        Self::with_chunk_target(path, DEFAULT_CHUNK_BYTES)
    }

    /// Create with an explicit raw-payload chunk target (tests use
    /// small targets to force many chunks from small traces).
    pub fn with_chunk_target(path: &Path, chunk_target: usize) -> io::Result<StoreWriter> {
        Self::with_threads(path, chunk_target, 1)
    }

    /// Create with `threads` compressor workers. `threads ≤ 1` keeps
    /// compression inline; more moves it onto a bounded pool with a
    /// deterministic in-order committer — the file bytes are identical
    /// either way.
    pub fn with_threads(path: &Path, chunk_target: usize, threads: usize) -> io::Result<StoreWriter> {
        Self::with_options(path, chunk_target, threads, threads * DEFAULT_INFLIGHT_PER_THREAD)
    }

    /// [`StoreWriter::with_threads`] with an explicit in-flight chunk
    /// budget: at most `max_inflight` sealed chunks wait in each of
    /// the pipeline's two queues, so a producer that outruns the
    /// compressor pool blocks in `append` instead of growing the heap.
    /// Output bytes do not depend on the budget (or the thread count).
    pub fn with_options(
        path: &Path,
        chunk_target: usize,
        threads: usize,
        max_inflight: usize,
    ) -> io::Result<StoreWriter> {
        Self::with_format(path, chunk_target, threads, max_inflight, StoreFormat::default())
    }

    /// [`StoreWriter::with_options`] with an explicit on-disk format —
    /// the seam `convert --format v3` and the v3-vs-v4 benches use to
    /// emit the previous codec.
    pub fn with_format(
        path: &Path,
        chunk_target: usize,
        threads: usize,
        max_inflight: usize,
        format: StoreFormat,
    ) -> io::Result<StoreWriter> {
        let tmp = tmp_path(path);
        let file = std::fs::File::create(&tmp).map_err(|e| {
            io::Error::new(e.kind(), format!("creating store {}: {e}", tmp.display()))
        })?;
        Self::with_backend_format(
            Box::new(file),
            tmp,
            path.to_path_buf(),
            chunk_target,
            threads,
            max_inflight,
            format,
        )
    }

    /// Build a writer over an explicit backing file — the seam the
    /// fault-injection tests use to slide a
    /// [`crate::fault::FailingFile`] under the production write path.
    /// `tmp` must be where `file` actually lives; `finish` renames it
    /// onto `dest`.
    pub fn with_backend(
        file: Box<dyn StoreFile>,
        tmp: PathBuf,
        dest: PathBuf,
        chunk_target: usize,
        threads: usize,
        max_inflight: usize,
    ) -> io::Result<StoreWriter> {
        Self::with_backend_format(
            file,
            tmp,
            dest,
            chunk_target,
            threads,
            max_inflight,
            StoreFormat::default(),
        )
    }

    /// [`StoreWriter::with_backend`] with an explicit on-disk format.
    #[allow(clippy::too_many_arguments)]
    pub fn with_backend_format(
        file: Box<dyn StoreFile>,
        tmp: PathBuf,
        dest: PathBuf,
        chunk_target: usize,
        threads: usize,
        max_inflight: usize,
        format: StoreFormat,
    ) -> io::Result<StoreWriter> {
        let mut out = io::BufWriter::new(file);
        if let Err(e) = out.write_all(format.magic()).and_then(|()| out.flush()) {
            drop(out);
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        let pos = format.magic().len() as u64;
        let sink = if threads > 1 {
            Sink::Pipelined(Pipeline::spawn(out, pos, threads, max_inflight))
        } else {
            Sink::Inline { out, pos }
        };
        Ok(StoreWriter {
            sink,
            target: Some(Target { tmp, dest }),
            chunk_target: chunk_target.max(1024),
            format,
            builder: Builder::new(format),
            open_meta: ChunkMeta::summarize(&[]),
            metas: Vec::new(),
            total_events: 0,
            raw_bytes: 0,
            finished: false,
        })
    }

    /// Append one event; seals and writes a chunk whenever the raw
    /// encoding crosses the chunk target.
    pub fn append(&mut self, event: &TraceEvent) -> io::Result<()> {
        assert!(!self.finished, "append after finish");
        self.builder.push(event);
        self.open_meta.observe(event);
        self.open_meta.events += 1;
        self.total_events += 1;
        if self.builder.encoded_len() >= self.chunk_target {
            self.seal_chunk()?;
        }
        Ok(())
    }

    /// Number of chunks sealed so far (for the pipelined sink this
    /// counts chunks handed to the pool, including in-flight ones).
    pub fn chunks_written(&self) -> usize {
        match &self.sink {
            Sink::Pipelined(p) => p.next_seq as usize,
            _ => self.metas.len(),
        }
    }

    fn seal_chunk(&mut self) -> io::Result<()> {
        if self.open_meta.events == 0 {
            return Ok(());
        }
        let meta = std::mem::replace(&mut self.open_meta, ChunkMeta::summarize(&[]));
        let raw = self.builder.serialize();
        self.raw_bytes += raw.len() as u64;
        match &mut self.sink {
            Sink::Inline { out, pos } => {
                let (payload, compression, payload_crc, meta) = compress_chunk(raw, meta);
                let (meta, new_pos) =
                    write_framed_chunk(out, *pos, &payload, compression, payload_crc, meta)?;
                *pos = new_pos;
                self.metas.push(meta);
                Ok(())
            }
            Sink::Pipelined(p) => {
                let seq = p.next_seq;
                let jobs = p.jobs.as_ref().expect("pipeline already drained");
                if jobs.send(Job { seq, raw, meta }).is_err() {
                    // The committer died (an I/O error); surface its
                    // real error by draining now.
                    self.drain_pipeline()?;
                    return Err(io::Error::other(
                        "chunk pipeline disconnected without reporting an error",
                    ));
                }
                p.next_seq = seq + 1;
                Ok(())
            }
            Sink::Draining => unreachable!("seal while draining"),
        }
    }

    /// Seal the open chunk and, for a pipelined writer, wait for every
    /// in-flight chunk to be compressed and committed. Afterwards the
    /// writer behaves like an inline one (the footer path).
    pub(crate) fn seal_events(&mut self) -> io::Result<()> {
        self.seal_chunk()?;
        self.drain_pipeline()
    }

    fn drain_pipeline(&mut self) -> io::Result<()> {
        if matches!(self.sink, Sink::Pipelined(_)) {
            let Sink::Pipelined(p) = std::mem::replace(&mut self.sink, Sink::Draining) else {
                unreachable!()
            };
            let sealed = p.next_seq;
            let done = p.join()?;
            assert_eq!(done.metas.len() as u64, sealed, "committer lost chunks");
            debug_assert!(self.metas.is_empty());
            self.metas = done.metas;
            debug_assert_eq!(self.raw_bytes, done.raw_bytes);
            self.sink = Sink::Inline { out: done.out, pos: done.pos };
        }
        Ok(())
    }

    /// Seal the open chunk, append the header blob + footer index +
    /// trailer, fsync, and atomically rename the temp file onto the
    /// final path (then fsync the directory). Only a `finish` that
    /// returns `Ok` puts a file at the final path; every earlier
    /// failure leaves the destination untouched. `trace_for_header`
    /// contributes only its header sections; its event list is ignored
    /// (the streamed chunks are the record of truth).
    pub fn finish(&mut self, trace_for_header: &Trace) -> io::Result<StoreSummary> {
        assert!(!self.finished, "finish called twice");
        self.seal_events()?;
        let Sink::Inline { out, pos } = &mut self.sink else {
            unreachable!("seal_events leaves an inline sink")
        };

        // Header blob: the text header behind a compression byte,
        // closed by a CRC32C of both.
        let header_text = mempersp_extrae::trace_format::header_sections(trace_for_header);
        let header_raw = header_text.as_bytes();
        let header_lz = lz::compress(header_raw);
        let header_off = *pos;
        let (blob, code): (&[u8], u8) = if header_lz.len() < header_raw.len() {
            (&header_lz, Compression::Lz.code())
        } else {
            (header_raw, Compression::Raw.code())
        };
        let header_crc = Crc32c::new().chain(&[code]).chain(blob).finish();
        out.write_all(&[code])?;
        out.write_all(blob)?;
        out.write_all(&header_crc.to_le_bytes())?;
        *pos += 1 + blob.len() as u64 + 4;

        // Footer index, checksummed as one unit.
        let index_off = *pos;
        let mut index = Vec::with_capacity(self.metas.len() * 48 + 32);
        crate::varint::put_u64(&mut index, self.metas.len() as u64);
        for m in &self.metas {
            m.encode(&mut index);
        }
        crate::varint::put_u64(&mut index, header_off);
        crate::varint::put_u64(&mut index, header_raw.len() as u64);
        crate::varint::put_u64(&mut index, blob.len() as u64);
        out.write_all(&index)?;

        // Fixed-size trailer so a reader can find the index from EOF.
        out.write_all(&index_off.to_le_bytes())?;
        out.write_all(&crc32c(&index).to_le_bytes())?;
        out.write_all(self.format.trailer_magic())?;
        out.flush()?;

        // Durability, then atomicity: contents hit stable storage
        // before the rename publishes them, and the directory fsync
        // makes the new name itself survive a crash.
        out.get_mut().sync_all()?;
        if let Some(t) = &self.target {
            std::fs::rename(&t.tmp, &t.dest).map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!("renaming {} -> {}: {e}", t.tmp.display(), t.dest.display()),
                )
            })?;
            sync_parent_dir(&t.dest)?;
        }
        self.finished = true;

        Ok(StoreSummary {
            events: self.total_events,
            chunks: self.metas.len() as u64,
            raw_bytes: self.raw_bytes,
            stored_bytes: self.metas.iter().map(|m| m.stored_len as u64).sum(),
        })
    }

    /// Walk away from an unfinished write *keeping* the temp file on
    /// disk — what a `kill -9` leaves behind. Returns the temp path
    /// (None if the writer already finished). Test harnesses pair this
    /// with [`crate::fault::FailingFile`] kill offsets and then point
    /// `recover` at the returned path.
    pub fn abandon(mut self) -> Option<PathBuf> {
        let _ = self.drain_pipeline();
        self.finished = true; // disarm the Drop cleanup
        self.target.take().map(|t| t.tmp)
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        // An abandoned-by-error writer: release the file (the
        // committer thread may still hold it) and remove the orphaned
        // temp so failed runs don't litter the trace directory.
        let _ = self.drain_pipeline();
        self.sink = Sink::Draining;
        if let Some(t) = &self.target {
            let _ = std::fs::remove_file(&t.tmp);
        }
    }
}

impl EventSink for StoreWriter {
    fn append_event(&mut self, event: &TraceEvent) -> io::Result<()> {
        self.append(event)
    }

    fn finish(&mut self, trace_for_header: &Trace) -> io::Result<()> {
        StoreWriter::finish(self, trace_for_header).map(|_| ())
    }
}

/// Write a complete in-memory trace as a store file.
pub fn write_store(path: &Path, trace: &Trace) -> io::Result<StoreSummary> {
    write_store_chunked(path, trace, DEFAULT_CHUNK_BYTES)
}

/// [`write_store`] with an explicit chunk target.
pub fn write_store_chunked(path: &Path, trace: &Trace, chunk_target: usize) -> io::Result<StoreSummary> {
    write_store_with(path, trace, chunk_target, 1)
}

/// Write `trace` in the legacy row-oriented v1 format (`MPSTORE1`
/// magic, [`crate::codec::encode_event`] records). Kept so the
/// reader's v1 path stays covered and as the pre-v2 comparator in the
/// store benchmarks; new traces should use [`write_store`].
pub fn write_store_v1(path: &Path, trace: &Trace, chunk_target: usize) -> io::Result<StoreSummary> {
    let file = std::fs::File::create(path).map_err(|e| {
        io::Error::new(e.kind(), format!("creating store {}: {e}", path.display()))
    })?;
    let mut out = io::BufWriter::new(file);
    out.write_all(MAGIC_V1)?;
    let mut pos = MAGIC_V1.len() as u64;
    let chunk_target = chunk_target.max(1024);

    let mut metas = Vec::new();
    let mut enc = Vec::new();
    let mut prev_cycles = 0u64;
    let mut open = ChunkMeta::summarize(&[]);
    let mut raw_bytes = 0u64;
    let mut seal = |enc: &mut Vec<u8>,
                    open: &mut ChunkMeta,
                    out: &mut io::BufWriter<std::fs::File>,
                    pos: &mut u64|
     -> io::Result<()> {
        if open.events == 0 {
            return Ok(());
        }
        let mut meta = std::mem::replace(open, ChunkMeta::summarize(&[]));
        let raw = std::mem::take(enc);
        raw_bytes += raw.len() as u64;
        let (payload, compression, _crc, m) = compress_chunk(raw, meta);
        meta = m;
        meta.offset = *pos;
        meta.stored_len = payload.len() as u32;
        meta.compression = compression;
        out.write_all(&payload)?;
        *pos += payload.len() as u64;
        metas.push(meta);
        Ok(())
    };
    for e in &trace.events {
        crate::codec::encode_event(&mut enc, e, &mut prev_cycles);
        open.observe(e);
        open.events += 1;
        if enc.len() >= chunk_target {
            seal(&mut enc, &mut open, &mut out, &mut pos)?;
            prev_cycles = 0; // v1 deltas restart at each chunk
        }
    }
    seal(&mut enc, &mut open, &mut out, &mut pos)?;

    let (header_off, header_raw_len, blob_len) = write_header_blob_v2(&mut out, &mut pos, trace)?;
    write_footer_v2(&mut out, pos, &metas, header_off, header_raw_len, blob_len)?;

    Ok(StoreSummary {
        events: trace.events.len() as u64,
        chunks: metas.len() as u64,
        raw_bytes,
        stored_bytes: metas.iter().map(|m| m.stored_len as u64).sum(),
    })
}

/// Write `trace` in the columnar-but-unchecksummed v2 format
/// (`MPSTORE2` magic, no chunk frames, `MPSEND01` trailer). Kept so
/// the reader's v2 path and the v2→v3 `convert`/`recover` upgrade
/// paths stay covered by tests and benches; new traces use v3.
pub fn write_store_v2(path: &Path, trace: &Trace, chunk_target: usize) -> io::Result<StoreSummary> {
    let file = std::fs::File::create(path).map_err(|e| {
        io::Error::new(e.kind(), format!("creating store {}: {e}", path.display()))
    })?;
    let mut out = io::BufWriter::new(file);
    out.write_all(MAGIC_V2)?;
    let mut pos = MAGIC_V2.len() as u64;
    let chunk_target = chunk_target.max(1024);

    let mut metas = Vec::new();
    let mut builder = ChunkBuilder::new();
    let mut open = ChunkMeta::summarize(&[]);
    let mut raw_bytes = 0u64;
    let mut total_events = 0u64;
    let mut seal = |builder: &mut ChunkBuilder,
                    open: &mut ChunkMeta,
                    out: &mut io::BufWriter<std::fs::File>,
                    pos: &mut u64|
     -> io::Result<()> {
        if open.events == 0 {
            return Ok(());
        }
        let mut meta = std::mem::replace(open, ChunkMeta::summarize(&[]));
        let raw = builder.serialize();
        raw_bytes += raw.len() as u64;
        let (payload, compression, _crc, m) = compress_chunk(raw, meta);
        meta = m;
        meta.offset = *pos;
        meta.stored_len = payload.len() as u32;
        meta.compression = compression;
        out.write_all(&payload)?;
        *pos += payload.len() as u64;
        metas.push(meta);
        Ok(())
    };
    for e in &trace.events {
        builder.push(e);
        open.observe(e);
        open.events += 1;
        total_events += 1;
        if builder.encoded_len() >= chunk_target {
            seal(&mut builder, &mut open, &mut out, &mut pos)?;
        }
    }
    seal(&mut builder, &mut open, &mut out, &mut pos)?;

    let (header_off, header_raw_len, blob_len) = write_header_blob_v2(&mut out, &mut pos, trace)?;
    write_footer_v2(&mut out, pos, &metas, header_off, header_raw_len, blob_len)?;

    Ok(StoreSummary {
        events: total_events,
        chunks: metas.len() as u64,
        raw_bytes,
        stored_bytes: metas.iter().map(|m| m.stored_len as u64).sum(),
    })
}

/// The unchecksummed v1/v2 header blob: compression code + blob.
fn write_header_blob_v2(
    out: &mut io::BufWriter<std::fs::File>,
    pos: &mut u64,
    trace: &Trace,
) -> io::Result<(u64, u64, u64)> {
    let header_text = mempersp_extrae::trace_format::header_sections(trace);
    let header_raw = header_text.as_bytes();
    let header_lz = lz::compress(header_raw);
    let header_off = *pos;
    let (blob, code): (&[u8], u8) = if header_lz.len() < header_raw.len() {
        (&header_lz, Compression::Lz.code())
    } else {
        (header_raw, Compression::Raw.code())
    };
    out.write_all(&[code])?;
    out.write_all(blob)?;
    *pos += 1 + blob.len() as u64;
    Ok((header_off, header_raw.len() as u64, blob.len() as u64))
}

/// The unchecksummed v1/v2 footer index + 16-byte trailer.
fn write_footer_v2(
    out: &mut io::BufWriter<std::fs::File>,
    index_off: u64,
    metas: &[ChunkMeta],
    header_off: u64,
    header_raw_len: u64,
    blob_len: u64,
) -> io::Result<()> {
    let mut index = Vec::with_capacity(metas.len() * 48 + 32);
    crate::varint::put_u64(&mut index, metas.len() as u64);
    for m in metas {
        m.encode(&mut index);
    }
    crate::varint::put_u64(&mut index, header_off);
    crate::varint::put_u64(&mut index, header_raw_len);
    crate::varint::put_u64(&mut index, blob_len);
    out.write_all(&index)?;
    out.write_all(&index_off.to_le_bytes())?;
    out.write_all(TRAILER_MAGIC_V2)?;
    out.flush()
}

/// Write `trace` in the checksummed LEB128 v3 format (`MPSTORE3`).
/// Kept so the reader's v3 path, the v3↔v4 `convert` round trip and
/// the v4-vs-v3 bench comparator stay covered; new traces use v4.
pub fn write_store_v3(path: &Path, trace: &Trace, chunk_target: usize) -> io::Result<StoreSummary> {
    let mut w = StoreWriter::with_format(path, chunk_target, 1, 1, StoreFormat::V3)?;
    for e in &trace.events {
        w.append(e)?;
    }
    w.finish(trace)
}

/// [`write_store_chunked`] with a compressor pool of `threads`.
pub fn write_store_with(
    path: &Path,
    trace: &Trace,
    chunk_target: usize,
    threads: usize,
) -> io::Result<StoreSummary> {
    write_store_format(path, trace, chunk_target, threads, StoreFormat::default())
}

/// [`write_store_with`] with an explicit on-disk format — `convert
/// --format v3` goes through here.
pub fn write_store_format(
    path: &Path,
    trace: &Trace,
    chunk_target: usize,
    threads: usize,
    format: StoreFormat,
) -> io::Result<StoreSummary> {
    let inflight = threads.max(1) * DEFAULT_INFLIGHT_PER_THREAD;
    let mut w = StoreWriter::with_format(path, chunk_target, threads, inflight, format)?;
    for e in &trace.events {
        w.append(e)?;
    }
    w.finish(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn trace(n: u64) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 2);
        let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
        for i in 0..n {
            t.enter((i % 2) as usize, "R", c, i * 10);
            t.exit((i % 2) as usize, "R", c, i * 10 + 5);
        }
        t.finish("writer test")
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_store_w_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn v1_store_round_trips_through_reader() {
        let path = tmp("legacy.mps");
        let t = trace(1500);
        let s = write_store_v1(&path, &t, 4096).unwrap();
        assert_eq!(s.events, 3000);
        assert!(s.chunks > 1, "small target forces multiple chunks, got {}", s.chunks);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], MAGIC_V1);
        let r = crate::reader::StoreReader::open(&path).unwrap();
        let back = r.materialize().unwrap();
        assert_eq!(back.events, t.events, "v1 files must stay readable");
    }

    #[test]
    fn v2_store_round_trips_through_reader() {
        let path = tmp("legacy_v2.mps");
        let t = trace(1500);
        let s = write_store_v2(&path, &t, 4096).unwrap();
        assert_eq!(s.events, 3000);
        assert!(s.chunks > 1, "small target forces multiple chunks, got {}", s.chunks);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], MAGIC_V2);
        assert_eq!(&bytes[bytes.len() - 8..], TRAILER_MAGIC_V2);
        let r = crate::reader::StoreReader::open(&path).unwrap();
        let back = r.materialize().unwrap();
        assert_eq!(back.events, t.events, "v2 files must stay readable");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_store_round_trips_through_reader() {
        let path = tmp("legacy_v3.mps");
        let t = trace(1500);
        let s = write_store_v3(&path, &t, 4096).unwrap();
        assert_eq!(s.events, 3000);
        assert!(s.chunks > 1, "small target forces multiple chunks, got {}", s.chunks);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], MAGIC);
        assert_eq!(&bytes[bytes.len() - 8..], TRAILER_MAGIC);
        let r = crate::reader::StoreReader::open(&path).unwrap();
        let back = r.materialize().unwrap();
        assert_eq!(back.events, t.events, "v3 files must stay readable");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_and_v4_stores_decode_identically() {
        let t = trace(1500);
        let p3 = tmp("fmt3.mps");
        let p4 = tmp("fmt4.mps");
        write_store_v3(&p3, &t, 4096).unwrap();
        write_store_chunked(&p4, &t, 4096).unwrap();
        let t3 = crate::reader::StoreReader::open(&p3).unwrap().materialize().unwrap();
        let t4 = crate::reader::StoreReader::open(&p4).unwrap().materialize().unwrap();
        assert_eq!(t3.events, t4.events);
        assert_eq!(t3.events, t.events);
        std::fs::remove_file(&p3).ok();
        std::fs::remove_file(&p4).ok();
    }

    #[test]
    fn file_shape_magic_frames_and_trailer() {
        let path = tmp("shape.mps");
        let t = trace(2000);
        let s = write_store_chunked(&path, &t, 4096).unwrap();
        assert_eq!(s.events, 4000);
        assert!(s.chunks > 1, "small target forces multiple chunks, got {}", s.chunks);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], MAGIC_V4);
        assert_eq!(&bytes[bytes.len() - 8..], TRAILER_MAGIC_V4);
        let index_off = u64::from_le_bytes(
            bytes[bytes.len() - TRAILER_LEN..bytes.len() - TRAILER_LEN + 8].try_into().unwrap(),
        );
        assert!((index_off as usize) < bytes.len() - TRAILER_LEN);
        let index_crc = u32::from_le_bytes(
            bytes[bytes.len() - 12..bytes.len() - 8].try_into().unwrap(),
        );
        assert_eq!(index_crc, crc32c(&bytes[index_off as usize..bytes.len() - TRAILER_LEN]));
        // The first chunk frame sits right behind the magic and
        // self-validates.
        let frame = ChunkFrame::decode(&bytes[8..8 + FRAME_LEN]).unwrap();
        assert!(frame.events > 0);
        assert_eq!(frame.payload_crc, crc32c(&bytes[8 + FRAME_LEN..8 + FRAME_LEN + frame.stored_len as usize]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compression_pays_off_on_repetitive_traces() {
        let path = tmp("ratio.mps");
        let t = trace(5000);
        let s = write_store(&path, &t).unwrap();
        assert!(
            s.stored_bytes < s.raw_bytes,
            "LZ pass should shrink repetitive region events: {} vs {}",
            s.stored_bytes,
            s.raw_bytes
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_still_produces_valid_container() {
        let path = tmp("empty.mps");
        let t = Tracer::new(TracerConfig::default(), 1).finish("empty");
        let s = write_store(&path, &t).unwrap();
        assert_eq!(s.events, 0);
        assert_eq!(s.chunks, 0);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[bytes.len() - 8..], TRAILER_MAGIC_V4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipelined_writer_is_byte_identical_to_inline() {
        let t = trace(6000);
        let inline = tmp("pipe_inline.mps");
        let s1 = write_store_with(&inline, &t, 4096, 1).unwrap();
        let inline_bytes = std::fs::read(&inline).unwrap();
        for threads in [2, 3, 8] {
            let path = tmp(&format!("pipe_{threads}.mps"));
            let s = write_store_with(&path, &t, 4096, threads).unwrap();
            assert_eq!(s, s1, "summary must not depend on threads");
            assert_eq!(
                std::fs::read(&path).unwrap(),
                inline_bytes,
                "threads={threads} produced different bytes"
            );
            std::fs::remove_file(&path).ok();
        }
        assert!(s1.chunks >= 8, "want many in-flight chunks, got {}", s1.chunks);
        std::fs::remove_file(&inline).ok();
    }

    #[test]
    fn pipelined_empty_trace() {
        let path = tmp("pipe_empty.mps");
        let t = Tracer::new(TracerConfig::default(), 1).finish("empty");
        let mut w = StoreWriter::with_threads(&path, 4096, 4).unwrap();
        let s = w.finish(&t).unwrap();
        assert_eq!((s.events, s.chunks), (0, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn finish_leaves_no_temp_file() {
        let path = tmp("atomic.mps");
        let t = trace(500);
        write_store(&path, &t).unwrap();
        assert!(path.exists());
        assert!(!tmp_path(&path).exists(), "finish must clean up the temp file via rename");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dropped_writer_removes_orphaned_temp_and_final_path_stays_absent() {
        let path = tmp("dropped.mps");
        std::fs::remove_file(&path).ok();
        let t = trace(500);
        {
            let mut w = StoreWriter::with_threads(&path, 2048, 2).unwrap();
            for e in &t.events {
                w.append(e).unwrap();
            }
            assert!(tmp_path(&path).exists(), "unfinished bytes live in the temp file");
            // No finish: simulate an in-process error path unwinding.
        }
        assert!(!tmp_path(&path).exists(), "Drop must remove the orphaned temp");
        assert!(!path.exists(), "an unfinished write must never appear at the final path");
    }

    #[test]
    fn abandon_keeps_the_temp_for_salvage() {
        let path = tmp("abandoned.mps");
        std::fs::remove_file(&path).ok();
        let t = trace(500);
        let mut w = StoreWriter::with_chunk_target(&path, 1024).unwrap();
        for e in &t.events {
            w.append(e).unwrap();
        }
        let tmp_file = w.abandon().unwrap();
        assert!(tmp_file.exists(), "abandon keeps the torn temp file");
        assert!(!path.exists());
        std::fs::remove_file(&tmp_file).ok();
    }
}
