//! The append-only store writer.
//!
//! File layout (`.mps`):
//!
//! ```text
//! +-----------------+ offset 0
//! | magic MPSTORE1  | 8 bytes
//! +-----------------+
//! | chunk payload 0 | varint events, raw or LZ      (~64 KiB each)
//! | chunk payload 1 |
//! | ...             |
//! +-----------------+
//! | header blob     | compression code + header_sections() text
//! +-----------------+ <- index_off
//! | footer index    | chunk count, ChunkMeta per chunk,
//! |                 | header blob location
//! +-----------------+
//! | trailer         | index_off:u64le + magic MPSEND01  (16 bytes)
//! +-----------------+
//! ```
//!
//! Chunks stream out as the run progresses — nothing before the
//! footer is ever rewritten, so a writer needs O(chunk) memory no
//! matter how long the trace is (the footer index grows at ~40 bytes
//! per 64 KiB chunk). The header — symbols, objects, region names,
//! which are only complete at the end of the run — goes *behind* the
//! chunks, mirroring how Extrae's merger appends global information
//! post-mortem.

use crate::chunk::{ChunkMeta, Compression};
use crate::codec::encode_event;
use crate::lz;
use mempersp_extrae::events::TraceEvent;
use mempersp_extrae::stream_writer::EventSink;
use mempersp_extrae::tracer::Trace;
use std::io::{self, Write as _};
use std::path::Path;

/// Leading file magic.
pub const MAGIC: &[u8; 8] = b"MPSTORE1";
/// Trailing file magic (after the index offset).
pub const TRAILER_MAGIC: &[u8; 8] = b"MPSEND01";
/// Default target for one chunk's *raw* encoded payload.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// What a finished store contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    pub events: u64,
    pub chunks: u64,
    /// Total raw encoded payload bytes (before compression).
    pub raw_bytes: u64,
    /// Total stored payload bytes (after compression).
    pub stored_bytes: u64,
}

/// Streaming writer of the chunked binary container.
pub struct StoreWriter {
    out: io::BufWriter<std::fs::File>,
    /// Next payload write position.
    pos: u64,
    chunk_target: usize,
    /// Raw encoding of the open chunk.
    enc: Vec<u8>,
    /// Timestamp-delta state of the open chunk.
    prev_cycles: u64,
    /// Summary of the open chunk.
    open_meta: ChunkMeta,
    metas: Vec<ChunkMeta>,
    total_events: u64,
    raw_bytes: u64,
    finished: bool,
}

impl StoreWriter {
    /// Create a store at `path` with the default ~64 KiB chunk target.
    pub fn create(path: &Path) -> io::Result<StoreWriter> {
        Self::with_chunk_target(path, DEFAULT_CHUNK_BYTES)
    }

    /// Create with an explicit raw-payload chunk target (tests use
    /// small targets to force many chunks from small traces).
    pub fn with_chunk_target(path: &Path, chunk_target: usize) -> io::Result<StoreWriter> {
        let file = std::fs::File::create(path).map_err(|e| {
            io::Error::new(e.kind(), format!("creating store {}: {e}", path.display()))
        })?;
        let mut out = io::BufWriter::new(file);
        out.write_all(MAGIC)?;
        Ok(StoreWriter {
            out,
            pos: MAGIC.len() as u64,
            chunk_target: chunk_target.max(1024),
            enc: Vec::with_capacity(chunk_target + 256),
            prev_cycles: 0,
            open_meta: ChunkMeta::summarize(&[]),
            metas: Vec::new(),
            total_events: 0,
            raw_bytes: 0,
            finished: false,
        })
    }

    /// Append one event; seals and writes a chunk whenever the raw
    /// encoding crosses the chunk target.
    pub fn append(&mut self, event: &TraceEvent) -> io::Result<()> {
        assert!(!self.finished, "append after finish");
        encode_event(&mut self.enc, event, &mut self.prev_cycles);
        self.open_meta.observe(event);
        self.open_meta.events += 1;
        self.total_events += 1;
        if self.enc.len() >= self.chunk_target {
            self.seal_chunk()?;
        }
        Ok(())
    }

    /// Number of sealed chunks so far.
    pub fn chunks_written(&self) -> usize {
        self.metas.len()
    }

    fn seal_chunk(&mut self) -> io::Result<()> {
        if self.open_meta.events == 0 {
            return Ok(());
        }
        let raw_len = self.enc.len();
        let compressed = lz::compress(&self.enc);
        let (payload, compression): (&[u8], Compression) = if compressed.len() < raw_len {
            (&compressed, Compression::Lz)
        } else {
            (&self.enc, Compression::Raw)
        };
        let mut meta = std::mem::replace(&mut self.open_meta, ChunkMeta::summarize(&[]));
        meta.offset = self.pos;
        meta.stored_len = payload.len() as u32;
        meta.raw_len = raw_len as u32;
        meta.compression = compression;
        self.out.write_all(payload)?;
        self.pos += payload.len() as u64;
        self.raw_bytes += raw_len as u64;
        self.metas.push(meta);
        self.enc.clear();
        self.prev_cycles = 0;
        Ok(())
    }

    /// Seal the open chunk, append the header blob + footer index +
    /// trailer, and flush. `trace_for_header` contributes only its
    /// header sections; its event list is ignored (the streamed chunks
    /// are the record of truth).
    pub fn finish(&mut self, trace_for_header: &Trace) -> io::Result<StoreSummary> {
        assert!(!self.finished, "finish called twice");
        self.seal_chunk()?;

        // Header blob: the text header behind a compression byte.
        let header_text = mempersp_extrae::trace_format::header_sections(trace_for_header);
        let header_raw = header_text.as_bytes();
        let header_lz = lz::compress(header_raw);
        let header_off = self.pos;
        let (blob, code): (&[u8], u8) = if header_lz.len() < header_raw.len() {
            (&header_lz, Compression::Lz.code())
        } else {
            (header_raw, Compression::Raw.code())
        };
        self.out.write_all(&[code])?;
        self.out.write_all(blob)?;
        self.pos += 1 + blob.len() as u64;

        // Footer index.
        let index_off = self.pos;
        let mut index = Vec::with_capacity(self.metas.len() * 48 + 32);
        crate::varint::put_u64(&mut index, self.metas.len() as u64);
        for m in &self.metas {
            m.encode(&mut index);
        }
        crate::varint::put_u64(&mut index, header_off);
        crate::varint::put_u64(&mut index, header_raw.len() as u64);
        crate::varint::put_u64(&mut index, blob.len() as u64);
        self.out.write_all(&index)?;

        // Fixed-size trailer so a reader can find the index from EOF.
        self.out.write_all(&index_off.to_le_bytes())?;
        self.out.write_all(TRAILER_MAGIC)?;
        self.out.flush()?;
        self.finished = true;

        Ok(StoreSummary {
            events: self.total_events,
            chunks: self.metas.len() as u64,
            raw_bytes: self.raw_bytes,
            stored_bytes: self.metas.iter().map(|m| m.stored_len as u64).sum(),
        })
    }
}

impl EventSink for StoreWriter {
    fn append_event(&mut self, event: &TraceEvent) -> io::Result<()> {
        self.append(event)
    }

    fn finish(&mut self, trace_for_header: &Trace) -> io::Result<()> {
        StoreWriter::finish(self, trace_for_header).map(|_| ())
    }
}

/// Write a complete in-memory trace as a store file.
pub fn write_store(path: &Path, trace: &Trace) -> io::Result<StoreSummary> {
    write_store_chunked(path, trace, DEFAULT_CHUNK_BYTES)
}

/// [`write_store`] with an explicit chunk target.
pub fn write_store_chunked(path: &Path, trace: &Trace, chunk_target: usize) -> io::Result<StoreSummary> {
    let mut w = StoreWriter::with_chunk_target(path, chunk_target)?;
    for e in &trace.events {
        w.append(e)?;
    }
    w.finish(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn trace(n: u64) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 2);
        let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
        for i in 0..n {
            t.enter((i % 2) as usize, "R", c, i * 10);
            t.exit((i % 2) as usize, "R", c, i * 10 + 5);
        }
        t.finish("writer test")
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_store_w_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn file_shape_magic_and_trailer() {
        let path = tmp("shape.mps");
        let t = trace(2000);
        let s = write_store_chunked(&path, &t, 4096).unwrap();
        assert_eq!(s.events, 4000);
        assert!(s.chunks > 1, "small target forces multiple chunks, got {}", s.chunks);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], MAGIC);
        assert_eq!(&bytes[bytes.len() - 8..], TRAILER_MAGIC);
        let index_off =
            u64::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 8].try_into().unwrap());
        assert!((index_off as usize) < bytes.len() - 16);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compression_pays_off_on_repetitive_traces() {
        let path = tmp("ratio.mps");
        let t = trace(5000);
        let s = write_store(&path, &t).unwrap();
        assert!(
            s.stored_bytes < s.raw_bytes,
            "LZ pass should shrink repetitive region events: {} vs {}",
            s.stored_bytes,
            s.raw_bytes
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_still_produces_valid_container() {
        let path = tmp("empty.mps");
        let t = Tracer::new(TracerConfig::default(), 1).finish("empty");
        let s = write_store(&path, &t).unwrap();
        assert_eq!(s.events, 0);
        assert_eq!(s.chunks, 0);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[bytes.len() - 8..], TRAILER_MAGIC);
        std::fs::remove_file(&path).ok();
    }
}
