//! Read-only file mappings for the zero-copy reader path.
//!
//! The workspace builds offline, so neither `memmap2` nor `libc` is
//! available; on Linux (x86_64 / aarch64) the mapping is made with a
//! raw `mmap` syscall, which is all the reader needs: one `PROT_READ`,
//! `MAP_PRIVATE` mapping of the whole store file, alive for the
//! reader's lifetime. Everywhere else — and when `MEMPERSP_NO_MMAP=1`
//! is set, which the tests use to cover both paths — the file is read
//! into an owned buffer instead. Either way callers see a plain
//! `&[u8]` of the file's bytes; uncompressed chunks decode straight
//! out of it with no copy in between.

use std::fs::File;
use std::io;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    use std::os::unix::io::RawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack)
            );
        }
        ret
    }

    /// Map `len` bytes of `fd` read-only. Returns the mapping address
    /// or a negative errno.
    pub unsafe fn mmap_readonly(fd: RawFd, len: usize) -> isize {
        unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) }
    }

    pub unsafe fn munmap(addr: usize, len: usize) -> isize {
        unsafe { syscall6(SYS_MUNMAP, addr, len, 0, 0, 0, 0) }
    }
}

enum Backing {
    /// A live `mmap` region (Linux fast path).
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Map { ptr: *const u8, len: usize },
    /// The whole file read into memory (portable fallback).
    Heap(Vec<u8>),
}

/// An immutable view of a whole file.
pub struct Mapping {
    backing: Backing,
}

// The mapped region is read-only for the mapping's whole lifetime and
// nothing mutates through the raw pointer, so shared access is sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Map (or read) `file`, whose current length is `len`.
    pub fn of_file(file: &File, len: u64) -> io::Result<Mapping> {
        let len_usize = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, format!("file of {len} bytes exceeds the address space"))
        })?;
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            let forced_off = std::env::var_os("MEMPERSP_NO_MMAP").is_some_and(|v| v == "1");
            if len_usize > 0 && !forced_off {
                use std::os::unix::io::AsRawFd;
                let ret = unsafe { sys::mmap_readonly(file.as_raw_fd(), len_usize) };
                // The kernel signals failure with a negative errno in
                // [-4095, -1]; anything else is the mapping address.
                if !(-4095..=-1).contains(&ret) {
                    return Ok(Mapping {
                        backing: Backing::Map { ptr: ret as *const u8, len: len_usize },
                    });
                }
                // mmap failed (e.g. a pseudo-file): fall through to
                // the buffered path rather than erroring.
            }
        }
        let mut buf = Vec::new();
        let mut f = file.try_clone()?;
        use std::io::{Read as _, Seek as _, SeekFrom};
        f.seek(SeekFrom::Start(0))?;
        f.take(len).read_to_end(&mut buf)?;
        if buf.len() != len_usize {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("file shrank while reading: got {} of {len} bytes", buf.len()),
            ));
        }
        Ok(Mapping { backing: Backing::Heap(buf) })
    }

    /// The file's bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backing::Map { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(v) => v,
        }
    }

    /// Is this a real `mmap` (as opposed to the buffered fallback)?
    pub fn is_mmap(&self) -> bool {
        match &self.backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backing::Map { .. } => true,
            Backing::Heap(_) => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        if let Backing::Map { ptr, len } = self.backing {
            unsafe {
                sys::munmap(ptr as usize, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn maps_whole_file() {
        let path = tmp("map.bin");
        let data: Vec<u8> = (0..100_000u32).map(|i| i.wrapping_mul(2654435761) as u8).collect();
        std::fs::File::create(&path).unwrap().write_all(&data).unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let m = Mapping::of_file(&f, data.len() as u64).unwrap();
        assert_eq!(m.bytes(), &data[..]);
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        assert!(m.is_mmap() || std::env::var_os("MEMPERSP_NO_MMAP").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_uses_heap_backing() {
        let path = tmp("empty.bin");
        std::fs::File::create(&path).unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let m = Mapping::of_file(&f, 0).unwrap();
        assert!(m.bytes().is_empty());
        assert!(!m.is_mmap());
        std::fs::remove_file(&path).ok();
    }
}
