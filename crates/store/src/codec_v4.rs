//! The v4 chunk payload codec: stream-vbyte columns and the
//! selection-vector scan.
//!
//! v4 keeps v2/v3's chunk skeleton — the 10-uvarint section table,
//! the tag column, one payload section per event class — but every
//! varint run becomes a [stream-vbyte column](crate::svb): a control
//! stream that says how wide each value is and a data stream of plain
//! little-endian bytes, decoded four values per `pshufb`. Payload
//! sections are themselves columnar *per field* (all `ip`s, then all
//! `addr`s, …), so a field's column can be range-decoded — or skipped
//! entirely — without touching its neighbours:
//!
//! ```text
//! chunk := section lengths (10 uvarints: deltas, cores, stream 0..7)
//!          tags    — one byte per event, in stored order
//!          deltas  — svb column of zig-zag timestamp deltas
//!          cores   — svb column of core ids
//!          stream[k] — class-k fields, one svb column per field
//!                      (byte-wide fields — PEBS flags/level, mux
//!                      label bytes — stay raw byte runs)
//! ```
//!
//! Per-class field columns (`n` = class-k events in the chunk):
//!
//! * RegionEnter/Exit: `region`, 12 counter columns
//! * CounterSample: `ip`, 12 counters, `stack_len`, then one flattened
//!   `stack` column of Σ`stack_len` region ids
//! * Pebs: raw `flags[n]`, `ip`, `addr`, `size`, `latency`, raw
//!   `level[n]`, `object` (0 where absent; presence lives in `flags`)
//! * Alloc: `base`, `size`, `callsite` — Free: `base`
//! * MuxSwitch: `event_index`, `label_len`, raw concatenated labels
//! * User: `kind`, `value`
//!
//! The scan is **late-materializing**: it decodes only the tag, delta
//! and core columns, evaluates the pushed-down time/core/kind
//! predicates into a selection vector of `(row, class-occurrence)`
//! pairs, and then decodes payload columns only for classes with
//! selected rows — and only the control-byte groups covering the
//! selected occurrence range. `TraceEvent` records are built for
//! selected rows alone; unfiltered scans take the classic
//! materialize-everything path. The bytes actually read are counted
//! into [`ScanOutcome::payload_bytes`], which is how the "filtered
//! queries decode strictly fewer payload bytes" invariant is asserted.

use crate::codec::{
    level_code, level_from, split_sections, DecodeScratch, ScanOutcome, NCOUNTERS, NSTREAMS,
};
use crate::svb::{zigzag, ColBuf, SvbColumn};
use crate::varint::{put_u64, CodecError};
use mempersp_extrae::events::{EventPayload, RegionId, TraceEvent};
use mempersp_extrae::objects::ObjectId;
use mempersp_extrae::query::{EventClass, KindMask, Query};
use mempersp_extrae::source::Ip;
use mempersp_pebs::{CounterSnapshot, PebsSample};

fn err(offset: usize, message: String) -> CodecError {
    CodecError { offset, message }
}

// ---------------------------------------------------------------- encode

#[derive(Default)]
struct RegionCols {
    region: ColBuf,
    counters: [ColBuf; NCOUNTERS],
}

impl RegionCols {
    fn push(&mut self, region: RegionId, counters: &CounterSnapshot) {
        self.region.push(region.0 as u64);
        for (col, v) in self.counters.iter_mut().zip(counters.values()) {
            col.push(*v);
        }
    }

    fn encoded_len(&self) -> usize {
        self.region.encoded_len()
            + self.counters.iter().map(ColBuf::encoded_len).sum::<usize>()
    }

    fn write_into(&self, out: &mut Vec<u8>) {
        self.region.write_into(out);
        for c in &self.counters {
            c.write_into(out);
        }
    }

    fn clear(&mut self) {
        self.region.clear();
        for c in &mut self.counters {
            c.clear();
        }
    }
}

#[derive(Default)]
struct SampleCols {
    ip: ColBuf,
    counters: [ColBuf; NCOUNTERS],
    stack_len: ColBuf,
    stack: ColBuf,
}

#[derive(Default)]
struct PebsCols {
    flags: Vec<u8>,
    ip: ColBuf,
    addr: ColBuf,
    size: ColBuf,
    latency: ColBuf,
    level: Vec<u8>,
    object: ColBuf,
}

#[derive(Default)]
struct AllocCols {
    base: ColBuf,
    size: ColBuf,
    callsite: ColBuf,
}

#[derive(Default)]
struct MuxCols {
    event_index: ColBuf,
    label_len: ColBuf,
    labels: Vec<u8>,
}

#[derive(Default)]
struct UserCols {
    kind: ColBuf,
    value: ColBuf,
}

/// Incremental encoder of one v4 chunk, the stream-vbyte counterpart
/// of [`ChunkBuilder`](crate::codec::ChunkBuilder): the writer feeds
/// it events one at a time, each field lands in its own column, and
/// sealing concatenates the columns.
#[derive(Default)]
pub struct ChunkBuilderV4 {
    tags: Vec<u8>,
    deltas: ColBuf,
    cores: ColBuf,
    prev_cycles: u64,
    regions: [RegionCols; 2],
    sample: SampleCols,
    pebs: PebsCols,
    alloc: AllocCols,
    free: ColBuf,
    mux: MuxCols,
    user: UserCols,
}

impl ChunkBuilderV4 {
    pub fn new() -> ChunkBuilderV4 {
        ChunkBuilderV4::default()
    }

    /// Events appended since the last [`ChunkBuilderV4::serialize`].
    pub fn events(&self) -> usize {
        self.tags.len()
    }

    /// Raw encoded size if the chunk were sealed now (excluding the
    /// ~11-byte section-length prefix).
    pub fn encoded_len(&self) -> usize {
        self.tags.len()
            + self.deltas.encoded_len()
            + self.cores.encoded_len()
            + self.regions.iter().map(RegionCols::encoded_len).sum::<usize>()
            + self.sample.ip.encoded_len()
            + self.sample.counters.iter().map(ColBuf::encoded_len).sum::<usize>()
            + self.sample.stack_len.encoded_len()
            + self.sample.stack.encoded_len()
            + self.pebs.flags.len()
            + self.pebs.ip.encoded_len()
            + self.pebs.addr.encoded_len()
            + self.pebs.size.encoded_len()
            + self.pebs.latency.encoded_len()
            + self.pebs.level.len()
            + self.pebs.object.encoded_len()
            + self.alloc.base.encoded_len()
            + self.alloc.size.encoded_len()
            + self.alloc.callsite.encoded_len()
            + self.free.encoded_len()
            + self.mux.event_index.encoded_len()
            + self.mux.label_len.encoded_len()
            + self.mux.labels.len()
            + self.user.kind.encoded_len()
            + self.user.value.encoded_len()
    }

    /// Append one event's fields to the columns.
    pub fn push(&mut self, e: &TraceEvent) {
        let class = EventClass::of(&e.payload);
        self.tags.push(class as u8);
        self.deltas.push(zigzag(e.cycles.wrapping_sub(self.prev_cycles) as i64));
        self.prev_cycles = e.cycles;
        self.cores.push(e.core as u64);
        match &e.payload {
            EventPayload::RegionEnter { region, counters } => {
                self.regions[0].push(*region, counters);
            }
            EventPayload::RegionExit { region, counters } => {
                self.regions[1].push(*region, counters);
            }
            EventPayload::CounterSample { ip, counters, stack } => {
                self.sample.ip.push(ip.0);
                for (col, v) in self.sample.counters.iter_mut().zip(counters.values()) {
                    col.push(*v);
                }
                self.sample.stack_len.push(stack.len() as u64);
                for r in stack {
                    self.sample.stack.push(r.0 as u64);
                }
            }
            EventPayload::Pebs { sample, object } => {
                let flags = u8::from(sample.is_store)
                    | (u8::from(sample.tlb_miss) << 1)
                    | (u8::from(object.is_some()) << 2);
                self.pebs.flags.push(flags);
                self.pebs.ip.push(sample.ip);
                self.pebs.addr.push(sample.addr);
                self.pebs.size.push(sample.size as u64);
                self.pebs.latency.push(sample.latency as u64);
                self.pebs.level.push(level_code(sample.source));
                self.pebs.object.push(object.map_or(0, |o| o.0 as u64));
            }
            EventPayload::Alloc { base, size, callsite } => {
                self.alloc.base.push(*base);
                self.alloc.size.push(*size);
                self.alloc.callsite.push(callsite.0);
            }
            EventPayload::Free { base } => {
                self.free.push(*base);
            }
            EventPayload::MuxSwitch { event_index, label } => {
                self.mux.event_index.push(*event_index as u64);
                self.mux.label_len.push(label.len() as u64);
                self.mux.labels.extend_from_slice(label.as_bytes());
            }
            EventPayload::User { kind, value } => {
                self.user.kind.push(*kind as u64);
                self.user.value.push(*value);
            }
        }
    }

    fn write_stream(&self, k: usize, out: &mut Vec<u8>) {
        match EventClass::ALL[k] {
            EventClass::RegionEnter => self.regions[0].write_into(out),
            EventClass::RegionExit => self.regions[1].write_into(out),
            EventClass::CounterSample => {
                self.sample.ip.write_into(out);
                for c in &self.sample.counters {
                    c.write_into(out);
                }
                self.sample.stack_len.write_into(out);
                self.sample.stack.write_into(out);
            }
            EventClass::Pebs => {
                out.extend_from_slice(&self.pebs.flags);
                self.pebs.ip.write_into(out);
                self.pebs.addr.write_into(out);
                self.pebs.size.write_into(out);
                self.pebs.latency.write_into(out);
                out.extend_from_slice(&self.pebs.level);
                self.pebs.object.write_into(out);
            }
            EventClass::Alloc => {
                self.alloc.base.write_into(out);
                self.alloc.size.write_into(out);
                self.alloc.callsite.write_into(out);
            }
            EventClass::Free => self.free.write_into(out),
            EventClass::MuxSwitch => {
                self.mux.event_index.write_into(out);
                self.mux.label_len.write_into(out);
                out.extend_from_slice(&self.mux.labels);
            }
            EventClass::User => {
                self.user.kind.write_into(out);
                self.user.value.write_into(out);
            }
        }
    }

    fn stream_len(&self, k: usize) -> usize {
        match EventClass::ALL[k] {
            EventClass::RegionEnter => self.regions[0].encoded_len(),
            EventClass::RegionExit => self.regions[1].encoded_len(),
            EventClass::CounterSample => {
                self.sample.ip.encoded_len()
                    + self.sample.counters.iter().map(ColBuf::encoded_len).sum::<usize>()
                    + self.sample.stack_len.encoded_len()
                    + self.sample.stack.encoded_len()
            }
            EventClass::Pebs => {
                self.pebs.flags.len()
                    + self.pebs.ip.encoded_len()
                    + self.pebs.addr.encoded_len()
                    + self.pebs.size.encoded_len()
                    + self.pebs.latency.encoded_len()
                    + self.pebs.level.len()
                    + self.pebs.object.encoded_len()
            }
            EventClass::Alloc => {
                self.alloc.base.encoded_len()
                    + self.alloc.size.encoded_len()
                    + self.alloc.callsite.encoded_len()
            }
            EventClass::Free => self.free.encoded_len(),
            EventClass::MuxSwitch => {
                self.mux.event_index.encoded_len()
                    + self.mux.label_len.encoded_len()
                    + self.mux.labels.len()
            }
            EventClass::User => {
                self.user.kind.encoded_len() + self.user.value.encoded_len()
            }
        }
    }

    /// Serialize the accumulated columns as one chunk payload and
    /// reset the builder (buffers keep their capacity).
    pub fn serialize(&mut self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() + 16);
        put_u64(&mut out, self.deltas.encoded_len() as u64);
        put_u64(&mut out, self.cores.encoded_len() as u64);
        for k in 0..NSTREAMS {
            put_u64(&mut out, self.stream_len(k) as u64);
        }
        out.extend_from_slice(&self.tags);
        self.deltas.write_into(&mut out);
        self.cores.write_into(&mut out);
        for k in 0..NSTREAMS {
            self.write_stream(k, &mut out);
        }

        self.tags.clear();
        self.deltas.clear();
        self.cores.clear();
        self.prev_cycles = 0;
        for r in &mut self.regions {
            r.clear();
        }
        self.sample.ip.clear();
        for c in &mut self.sample.counters {
            c.clear();
        }
        self.sample.stack_len.clear();
        self.sample.stack.clear();
        self.pebs.flags.clear();
        self.pebs.ip.clear();
        self.pebs.addr.clear();
        self.pebs.size.clear();
        self.pebs.latency.clear();
        self.pebs.level.clear();
        self.pebs.object.clear();
        self.alloc.base.clear();
        self.alloc.size.clear();
        self.alloc.callsite.clear();
        self.free.clear();
        self.mux.event_index.clear();
        self.mux.label_len.clear();
        self.mux.labels.clear();
        self.user.kind.clear();
        self.user.value.clear();
        out
    }
}

/// Encode a whole event slice as one v4 chunk payload.
pub fn encode_events_v4(events: &[TraceEvent]) -> Vec<u8> {
    let mut b = ChunkBuilderV4::new();
    for e in events {
        b.push(e);
    }
    b.serialize()
}

// ---------------------------------------------------------------- decode

/// Number of numeric column slots a class needs in the scratch
/// (CounterSample: ip + 12 counters + stack_len + stack + offsets).
fn num_cols(k: usize) -> usize {
    match EventClass::ALL[k] {
        EventClass::RegionEnter | EventClass::RegionExit => 1 + NCOUNTERS,
        EventClass::CounterSample => 1 + NCOUNTERS + 2 + 1, // + stack offsets
        EventClass::Pebs => 5,
        EventClass::Alloc => 3,
        EventClass::Free => 1,
        EventClass::MuxSwitch => 2 + 1, // + label offsets
        EventClass::User => 2,
    }
}

/// Parse the next column and decode it — fully (`range == None`) or
/// just the control-byte groups covering `range` — into `out`,
/// charging the touched bytes to `bytes`. Returns the occurrence
/// index of `out[0]`.
fn decode_col(
    sec: &[u8],
    pos: &mut usize,
    n: usize,
    range: Option<(usize, usize)>,
    out: &mut Vec<u64>,
    bytes: &mut u64,
) -> Result<usize, CodecError> {
    let col = SvbColumn::parse(sec, pos, n)?;
    match range {
        None => {
            col.decode_into(out);
            *bytes += col.total_len() as u64;
            Ok(0)
        }
        Some((lo, hi)) => {
            let base = col.decode_range_into(lo, hi, out);
            *bytes += (col.ctrl_len() + col.range_data_len(lo, hi)) as u64;
            Ok(base)
        }
    }
}

fn take_raw<'a>(sec: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CodecError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= sec.len())
        .ok_or_else(|| err(*pos, format!("byte column of {n} overruns section")))?;
    let s = &sec[*pos..end];
    *pos = end;
    Ok(s)
}

fn expect_end(sec: &[u8], pos: usize, k: usize) -> Result<(), CodecError> {
    if pos != sec.len() {
        return Err(err(
            pos,
            format!("{} trailing bytes in payload stream {k}", sec.len() - pos),
        ));
    }
    Ok(())
}

/// Exclusive-prefix offsets of a length column (`offs[j]` = start of
/// record `j` in the flattened value column); returns the total.
fn prefix_offsets(lens: &[u64], offs: &mut Vec<u64>) -> Result<usize, CodecError> {
    offs.clear();
    offs.reserve(lens.len());
    let mut total = 0u64;
    for (j, &l) in lens.iter().enumerate() {
        offs.push(total);
        total = total
            .checked_add(l)
            .ok_or_else(|| err(j, "length column overflows".to_string()))?;
    }
    usize::try_from(total).map_err(|_| err(0, "length column overflows".to_string()))
}

/// Everything the materialization loop needs about one decoded class:
/// where its numeric columns start (`base`) and its raw byte columns.
#[derive(Default, Clone, Copy)]
struct ClassView<'a> {
    base: usize,
    raw_a: &'a [u8], // PEBS flags / mux labels
    raw_b: &'a [u8], // PEBS level
}

/// Decode the payload columns of class `k` (fully, or the groups
/// covering `range`) into `scratch.class_cols[k]`.
fn decode_class<'a>(
    k: usize,
    sec: &'a [u8],
    n: usize,
    range: Option<(usize, usize)>,
    cols: &mut [Vec<u64>],
    tmp: &mut Vec<u64>,
    bytes: &mut u64,
) -> Result<ClassView<'a>, CodecError> {
    let mut pos = 0usize;
    let mut view = ClassView::default();
    let raw_cols = |range: Option<(usize, usize)>, n: usize, cols: usize| -> u64 {
        match range {
            None => (cols * n) as u64,
            Some((lo, hi)) => (cols * (hi.min(n).saturating_sub(lo))) as u64,
        }
    };
    match EventClass::ALL[k] {
        EventClass::RegionEnter | EventClass::RegionExit => {
            for col in cols.iter_mut().take(1 + NCOUNTERS) {
                view.base = decode_col(sec, &mut pos, n, range, col, bytes)?;
            }
        }
        EventClass::CounterSample => {
            // The flattened stack column's length is only known after
            // the stack_len column decodes, so this class always
            // decodes fully (`range` is ignored by the caller).
            for col in cols.iter_mut().take(1 + NCOUNTERS + 1) {
                decode_col(sec, &mut pos, n, None, col, bytes)?;
            }
            let (head, tail) = cols.split_at_mut(1 + NCOUNTERS + 1);
            let total = prefix_offsets(&head[1 + NCOUNTERS], &mut tail[1])?;
            decode_col(sec, &mut pos, total, None, &mut tail[0], bytes)?;
        }
        EventClass::Pebs => {
            let flags = take_raw(sec, &mut pos, n)?;
            for col in cols.iter_mut().take(4) {
                view.base = decode_col(sec, &mut pos, n, range, col, bytes)?;
            }
            let level = take_raw(sec, &mut pos, n)?;
            decode_col(sec, &mut pos, n, range, &mut cols[4], bytes)?;
            *bytes += raw_cols(range, n, 2);
            view.raw_a = flags;
            view.raw_b = level;
        }
        EventClass::Alloc => {
            for col in cols.iter_mut().take(3) {
                view.base = decode_col(sec, &mut pos, n, range, col, bytes)?;
            }
        }
        EventClass::Free => {
            view.base = decode_col(sec, &mut pos, n, range, &mut cols[0], bytes)?;
        }
        EventClass::MuxSwitch => {
            // Label offsets require the whole length column; decoded
            // fully like CounterSample.
            decode_col(sec, &mut pos, n, None, &mut cols[0], bytes)?;
            decode_col(sec, &mut pos, n, None, &mut cols[1], bytes)?;
            let (head, tail) = cols.split_at_mut(2);
            let total = prefix_offsets(&head[1], &mut tail[0])?;
            view.raw_a = take_raw(sec, &mut pos, total)?;
            *bytes += total as u64;
        }
        EventClass::User => {
            for col in cols.iter_mut().take(2) {
                view.base = decode_col(sec, &mut pos, n, range, col, bytes)?;
            }
        }
    }
    // Every column walk above ends exactly at the section end: column
    // lengths are functions of their control bytes, so any slack or
    // shortfall is corruption.
    expect_end(sec, pos, k)?;
    let _ = tmp;
    Ok(view)
}

/// Scan a v4 chunk. Decodes the tag/timestamp/core columns, builds a
/// selection vector from the pushed-down time/core/kind predicates,
/// then decodes payload columns only for classes — and control-byte
/// group ranges — with selected rows, materializing just those events
/// (the residual `Query::matches` runs on each before it is emitted).
/// With `query == None` every section is decoded and validated — the
/// `materialize()` / deep-verify path.
pub fn scan_events_v4(
    buf: &[u8],
    count: usize,
    query: Option<&Query>,
    scratch: &mut DecodeScratch,
    out: &mut Vec<TraceEvent>,
) -> Result<ScanOutcome, CodecError> {
    let s = split_sections(buf, count)?;

    let mut pos = 0usize;
    let dcol = SvbColumn::parse(s.deltas, &mut pos, count)?;
    if pos != s.deltas.len() {
        return Err(err(pos, "trailing bytes in delta column".to_string()));
    }
    dcol.decode_zigzag_prefix_into(0, &mut scratch.cycles);

    let mut pos = 0usize;
    let ccol = SvbColumn::parse(s.cores, &mut pos, count)?;
    if pos != s.cores.len() {
        return Err(err(pos, "trailing bytes in core column".to_string()));
    }
    ccol.decode_into(&mut scratch.tmp);
    scratch.cores.clear();
    scratch.cores.extend(scratch.tmp.iter().map(|&v| v as u32));

    // Class populations (needed to parse any payload section).
    let mut nk = [0usize; NSTREAMS];
    for (i, &t) in s.tags.iter().enumerate() {
        if t as usize >= NSTREAMS {
            return Err(err(i, format!("unknown event tag {t}")));
        }
        nk[t as usize] += 1;
    }

    let (time, kinds, core_set) = match query {
        Some(q) => (q.time, q.kinds, q.cores.as_deref()),
        None => (None, KindMask::ALL, None),
    };
    let active: [bool; NSTREAMS] = std::array::from_fn(|k| kinds.0 & (1u8 << k) != 0);

    // Selection pass: record (row, class-occurrence) for every row
    // that survives the column predicates, and the occurrence hull
    // per class so payload decode can stay range-bounded.
    //
    // Traces are written time-sorted, so the reconstructed cycles
    // column is almost always non-decreasing and a time window is a
    // contiguous row range found by binary search: rows before it
    // only bump the occurrence counters, rows after it are never
    // visited, and rows inside skip the per-row time compare. The
    // format itself permits out-of-order timestamps (deltas are
    // signed), so an unsorted column falls back to per-row checks.
    let (ilo, ihi, row_time) = match time {
        Some((lo, hi)) if scratch.cycles[..count].is_sorted() => {
            let c = &scratch.cycles[..count];
            (c.partition_point(|&x| x < lo), c.partition_point(|&x| x <= hi), None)
        }
        other => (0, count, other),
    };
    scratch.sel.clear();
    let mut jmin = [usize::MAX; NSTREAMS];
    let mut jmax = [0usize; NSTREAMS];
    let mut occ = [0u32; NSTREAMS];
    for i in 0..ilo {
        occ[s.tags[i] as usize] += 1;
    }
    for i in ilo..ihi {
        let k = s.tags[i] as usize;
        let j = occ[k];
        occ[k] += 1;
        if !active[k] {
            continue;
        }
        let keep = row_time.is_none_or(|(lo, hi)| {
            let c = scratch.cycles[i];
            c >= lo && c <= hi
        }) && core_set.is_none_or(|cs| cs.contains(&(scratch.cores[i] as usize)));
        if keep {
            scratch.sel.push((i as u32, j));
            jmin[k] = jmin[k].min(j as usize);
            jmax[k] = j as usize;
        }
    }

    // Payload decode: full scans touch every section (and validate
    // classes with no events against stray bytes); filtered scans
    // touch only classes with selected rows.
    let full = query.is_none_or(|q| q.is_full_scan());
    let mut payload_bytes = 0u64;
    let mut views = [ClassView::default(); NSTREAMS];
    for k in 0..NSTREAMS {
        let wanted = if full { active[k] } else { jmin[k] != usize::MAX };
        if !wanted {
            if full && active[k] && !s.streams[k].is_empty() {
                // full decode is the integrity path: an empty class
                // must have an empty section
            } else {
                continue;
            }
        }
        // Classes with flattened sub-columns can't range-decode
        // without their whole length column; everything else decodes
        // just the groups covering the selected occurrence hull.
        let range = if full
            || matches!(EventClass::ALL[k], EventClass::CounterSample | EventClass::MuxSwitch)
        {
            None
        } else {
            Some((jmin[k], jmax[k] + 1))
        };
        let cols = &mut scratch.class_cols[k];
        cols.resize_with(num_cols(k), Vec::new);
        views[k] = decode_class(
            k,
            s.streams[k],
            nk[k],
            range,
            cols,
            &mut scratch.tmp,
            &mut payload_bytes,
        )?;
    }

    // Late materialization: build TraceEvents for selected rows only.
    // The selection pass enforced the time/core/kind predicates
    // exactly, so the per-event residual check is only needed for the
    // one predicate that lives in the payload: the PEBS object id.
    let residual = query.is_some_and(|q| q.object.is_some());
    out.reserve(scratch.sel.len());
    let mut matched = 0u64;
    for &(i, j) in &scratch.sel {
        let (i, j) = (i as usize, j as usize);
        let k = s.tags[i] as usize;
        let cycles = scratch.cycles[i];
        let core = scratch.cores[i] as usize;
        let cols = &scratch.class_cols[k];
        let jj = j - views[k].base;
        let payload = match EventClass::ALL[k] {
            class @ (EventClass::RegionEnter | EventClass::RegionExit) => {
                let region = RegionId(cols[0][jj] as u32);
                let mut vals = [0u64; NCOUNTERS];
                for (c, v) in vals.iter_mut().enumerate() {
                    *v = cols[1 + c][jj];
                }
                let counters = CounterSnapshot::from_values(vals);
                if class == EventClass::RegionEnter {
                    EventPayload::RegionEnter { region, counters }
                } else {
                    EventPayload::RegionExit { region, counters }
                }
            }
            EventClass::CounterSample => {
                let ip = Ip(cols[0][jj]);
                let mut vals = [0u64; NCOUNTERS];
                for (c, v) in vals.iter_mut().enumerate() {
                    *v = cols[1 + c][jj];
                }
                let len = cols[1 + NCOUNTERS][jj] as usize;
                let off = cols[1 + NCOUNTERS + 2][jj] as usize;
                let stack =
                    cols[1 + NCOUNTERS + 1][off..off + len].iter().map(|&r| RegionId(r as u32)).collect();
                EventPayload::CounterSample {
                    ip,
                    counters: CounterSnapshot::from_values(vals),
                    stack,
                }
            }
            EventClass::Pebs => {
                let flags = views[k].raw_a[j];
                let source = level_from(views[k].raw_b[j], j)?;
                let object =
                    if flags & 0b100 != 0 { Some(ObjectId(cols[4][jj] as u32)) } else { None };
                EventPayload::Pebs {
                    sample: PebsSample {
                        timestamp: cycles,
                        core,
                        ip: cols[0][jj],
                        addr: cols[1][jj],
                        size: cols[2][jj] as u32,
                        is_store: flags & 0b001 != 0,
                        latency: cols[3][jj] as u32,
                        source,
                        tlb_miss: flags & 0b010 != 0,
                    },
                    object,
                }
            }
            EventClass::Alloc => EventPayload::Alloc {
                base: cols[0][jj],
                size: cols[1][jj],
                callsite: Ip(cols[2][jj]),
            },
            EventClass::Free => EventPayload::Free { base: cols[0][jj] },
            EventClass::MuxSwitch => {
                let len = cols[1][jj] as usize;
                let off = cols[2][jj] as usize;
                let label = std::str::from_utf8(&views[k].raw_a[off..off + len])
                    .map_err(|_| err(off, "mux label is not UTF-8".to_string()))?
                    .to_string();
                EventPayload::MuxSwitch { event_index: cols[0][jj] as usize, label }
            }
            EventClass::User => {
                EventPayload::User { kind: cols[0][jj] as u32, value: cols[1][jj] }
            }
        };
        let event = TraceEvent { cycles, core, payload };
        if !residual || query.is_some_and(|q| q.matches(&event)) {
            matched += 1;
            out.push(event);
        }
    }
    Ok(ScanOutcome { scanned: count as u64, matched, payload_bytes })
}

/// Decode exactly `count` events from a v4 chunk payload.
pub fn decode_events_v4(buf: &[u8], count: usize) -> Result<Vec<TraceEvent>, CodecError> {
    let mut out = Vec::with_capacity(count);
    let mut scratch = DecodeScratch::default();
    scan_events_v4(buf, count, None, &mut scratch, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::query::EventClass;
    use mempersp_memsim::MemLevel;

    fn events() -> Vec<TraceEvent> {
        let c = CounterSnapshot::from_values([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        vec![
            TraceEvent {
                cycles: 1_000,
                core: 0,
                payload: EventPayload::RegionEnter { region: RegionId(3), counters: c },
            },
            TraceEvent {
                cycles: 900, // out-of-order: negative delta
                core: 1,
                payload: EventPayload::CounterSample {
                    ip: Ip(0x400010),
                    counters: c,
                    stack: vec![RegionId(0), RegionId(3)],
                },
            },
            TraceEvent {
                cycles: 1_100,
                core: 1,
                payload: EventPayload::Pebs {
                    sample: PebsSample {
                        timestamp: 1_100,
                        core: 1,
                        ip: 0x400020,
                        addr: 0xDEAD_BEEF_00,
                        size: 8,
                        is_store: true,
                        latency: 233,
                        source: MemLevel::Dram,
                        tlb_miss: true,
                    },
                    object: Some(ObjectId(7)),
                },
            },
            TraceEvent {
                cycles: 1_150,
                core: 2,
                payload: EventPayload::Pebs {
                    sample: PebsSample {
                        timestamp: 1_150,
                        core: 2,
                        ip: 0x400024,
                        addr: 0x20,
                        size: 4,
                        is_store: false,
                        latency: 9,
                        source: MemLevel::L1,
                        tlb_miss: false,
                    },
                    object: None,
                },
            },
            TraceEvent {
                cycles: 1_200,
                core: 0,
                payload: EventPayload::Alloc { base: 1 << 40, size: 4096, callsite: Ip(0x400030) },
            },
            TraceEvent { cycles: 1_300, core: 0, payload: EventPayload::Free { base: 1 << 40 } },
            TraceEvent {
                cycles: 1_400,
                core: 2,
                payload: EventPayload::MuxSwitch { event_index: 1, label: "stores — ω".into() },
            },
            TraceEvent {
                cycles: 1_500,
                core: 0,
                payload: EventPayload::User { kind: 9, value: u64::MAX },
            },
            TraceEvent {
                cycles: 1_600,
                core: 3,
                payload: EventPayload::RegionExit { region: RegionId(3), counters: c },
            },
        ]
    }

    #[test]
    fn v4_round_trip_every_payload_kind() {
        let evs = events();
        let buf = encode_events_v4(&evs);
        let back = decode_events_v4(&buf, evs.len()).expect("decode v4");
        assert_eq!(back, evs);
    }

    #[test]
    fn v4_incremental_builder_resets_cleanly() {
        let evs = events();
        let mut b = ChunkBuilderV4::new();
        for e in &evs {
            b.push(e);
        }
        assert_eq!(b.events(), evs.len());
        let payload = b.serialize();
        assert_eq!(payload, encode_events_v4(&evs));
        assert_eq!(b.events(), 0);
        for e in &evs {
            b.push(e);
        }
        assert_eq!(b.serialize(), payload, "reset builder must re-encode identically");
    }

    #[test]
    fn v4_encoded_len_is_exact() {
        let evs = events();
        let mut b = ChunkBuilderV4::new();
        for e in &evs {
            b.push(e);
        }
        let polled = b.encoded_len();
        let payload = b.serialize();
        // The section table (10 uvarints) is the only part not polled.
        let mut pos = 0usize;
        for _ in 0..10 {
            crate::varint::get_u64(&payload, &mut pos).unwrap();
        }
        assert_eq!(polled, payload.len() - pos);
    }

    #[test]
    fn v4_filtered_scan_equals_decode_then_filter() {
        let evs = events();
        let buf = encode_events_v4(&evs);
        let queries = [
            Query::all(),
            Query::all().in_time(1_000, 1_300),
            Query::all().with_kinds(&[EventClass::Pebs, EventClass::User]),
            Query::all().on_cores(&[1, 3]),
            Query::all().touching_object(ObjectId(7)),
            Query::all().touching_object(ObjectId(8)),
            Query::all().in_time(0, 0),
            Query::all().in_time(1_100, 1_150).with_kinds(&[EventClass::Pebs]),
        ];
        for q in &queries {
            let mut scratch = DecodeScratch::default();
            let mut got = Vec::new();
            let outcome =
                scan_events_v4(&buf, evs.len(), Some(q), &mut scratch, &mut got).unwrap();
            let want: Vec<_> = evs.iter().filter(|e| q.matches(e)).cloned().collect();
            assert_eq!(got, want, "{q:?}");
            assert_eq!(outcome.scanned, evs.len() as u64);
            assert_eq!(outcome.matched, want.len() as u64);
        }
    }

    #[test]
    fn v4_filtered_scan_reads_fewer_payload_bytes() {
        let evs = events();
        let buf = encode_events_v4(&evs);
        let mut scratch = DecodeScratch::default();
        let mut all = Vec::new();
        let full =
            scan_events_v4(&buf, evs.len(), None, &mut scratch, &mut all).unwrap();
        let q = Query::all().with_kinds(&[EventClass::Pebs]);
        let mut some = Vec::new();
        let filtered =
            scan_events_v4(&buf, evs.len(), Some(&q), &mut scratch, &mut some).unwrap();
        assert!(
            filtered.payload_bytes < full.payload_bytes,
            "filtered {} vs full {}",
            filtered.payload_bytes,
            full.payload_bytes
        );
        assert!(filtered.payload_bytes > 0);
    }

    #[test]
    fn v4_scratch_reuse_is_deterministic() {
        // One scratch across chunks and queries — the reader pool path.
        let evs = events();
        let buf = encode_events_v4(&evs);
        let mut scratch = DecodeScratch::default();
        for _ in 0..3 {
            for q in [Query::all(), Query::all().with_kinds(&[EventClass::Free])] {
                let mut got = Vec::new();
                scan_events_v4(&buf, evs.len(), Some(&q), &mut scratch, &mut got).unwrap();
                let want: Vec<_> = evs.iter().filter(|e| q.matches(e)).cloned().collect();
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn v4_rejects_wrong_count_and_corrupt_sections() {
        let evs = events();
        let buf = encode_events_v4(&evs);
        assert!(decode_events_v4(&buf, evs.len() - 1).is_err());
        assert!(decode_events_v4(&buf, evs.len() + 1).is_err());
        assert!(decode_events_v4(&buf[..buf.len() - 1], evs.len()).is_err());
        let mut bad = buf.clone();
        let mut pos = 0usize;
        for _ in 0..10 {
            crate::varint::get_u64(&bad, &mut pos).unwrap();
        }
        bad[pos] = 0xEE; // tag column
        assert!(decode_events_v4(&bad, evs.len()).is_err());
    }

    #[test]
    fn v4_truncation_never_panics() {
        let evs = events();
        let buf = encode_events_v4(&evs);
        for cut in 0..buf.len() {
            let _ = decode_events_v4(&buf[..cut], evs.len());
        }
    }

    #[test]
    fn v4_empty_chunk() {
        let buf = encode_events_v4(&[]);
        assert_eq!(decode_events_v4(&buf, 0).unwrap(), Vec::new());
    }

    #[test]
    fn v4_size_stays_close_to_v2_on_wide_values() {
        // Stream-vbyte trades a little size for fixed-width loads: a
        // 47-bit value costs 8 data bytes where LEB128 spends 7, but
        // 9–10-byte LEB128 addresses shrink to 8. Net, a PEBS-heavy
        // chunk must stay within a few percent of the v2 encoding —
        // the speedup must not be bought with a fatter file.
        let evs: Vec<TraceEvent> = (0..512u64)
            .map(|i| TraceEvent {
                cycles: i * 37,
                core: (i % 4) as usize,
                payload: EventPayload::Pebs {
                    sample: PebsSample {
                        timestamp: i * 37,
                        core: (i % 4) as usize,
                        ip: 0x7fff_ffff_4000 + i,
                        addr: 0xffff_8800_0000_0000 + i * 64,
                        size: 8,
                        is_store: i % 3 == 0,
                        latency: 100 + (i % 200) as u32,
                        source: MemLevel::L3,
                        tlb_miss: false,
                    },
                    object: None,
                },
            })
            .collect();
        let v2 = crate::codec::encode_events_v2(&evs);
        let v4 = encode_events_v4(&evs);
        assert!(v4.len() < v2.len() + v2.len() / 10, "v4 {} vs v2 {}", v4.len(), v2.len());
    }
}
