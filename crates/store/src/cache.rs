//! A sharded LRU cache of decompressed chunk payloads.
//!
//! The cache holds **bytes**, not decoded events: only LZ-compressed
//! chunks earn a slot (their decompressed payload), because
//! uncompressed chunks already decode zero-copy straight out of the
//! reader's file mapping — caching them would just duplicate the page
//! cache. Bytes are also ~5–10x smaller than materialized
//! `TraceEvent`s, so the same memory budget keeps far more of a
//! gigabyte-scale trace warm. The cache is sharded — each shard is its
//! own mutex + map — so the parallel scan path contends only when two
//! workers touch chunks of the same shard, not on one global lock.
//! Eviction is LRU per shard via monotone access stamps.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of independent shards (lock domains).
    pub shards: usize,
    /// Decoded chunks retained per shard.
    pub chunks_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 8 × 32 = 256 resident decompressed payloads ≈ 16 MiB at the
        // default chunk target — bounded regardless of trace size, and
        // cheap now that entries are bytes rather than fat events.
        CacheConfig { shards: 8, chunks_per_shard: 32 }
    }
}

struct Shard {
    /// chunk index → (last-access stamp, decoded events).
    map: HashMap<usize, (u64, Arc<Vec<u8>>)>,
    tick: u64,
}

/// Hit/miss/eviction counters, for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries displaced by LRU pressure (reinsertions don't count).
    pub evictions: u64,
    /// Distinct insertions, so occupancy churn is derivable.
    pub insertions: u64,
}

impl CacheStats {
    /// Element-wise sum, for aggregating shards of a [`ShardedReader`]
    /// or every store in a repository.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            insertions: self.insertions + other.insertions,
        }
    }
}

/// The sharded block cache.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    cap_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl ShardedCache {
    pub fn new(cfg: CacheConfig) -> ShardedCache {
        let shards = cfg.shards.max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), tick: 0 }))
                .collect(),
            cap_per_shard: cfg.chunks_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: usize) -> &Mutex<Shard> {
        &self.shards[key % self.shards.len()]
    }

    /// Look a chunk up, refreshing its recency on hit.
    pub fn get(&self, key: usize) -> Option<Arc<Vec<u8>>> {
        let mut s = self.shard(key).lock().expect("cache shard poisoned");
        s.tick += 1;
        let tick = s.tick;
        match s.map.get_mut(&key) {
            Some((stamp, v)) => {
                *stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a decompressed chunk payload, evicting the shard's
    /// least-recently used entry when full.
    pub fn insert(&self, key: usize, value: Arc<Vec<u8>>) {
        let mut s = self.shard(key).lock().expect("cache shard poisoned");
        s.tick += 1;
        let tick = s.tick;
        if !s.map.contains_key(&key) {
            if s.map.len() >= self.cap_per_shard {
                if let Some((&victim, _)) = s.map.iter().min_by_key(|(_, (stamp, _))| *stamp) {
                    s.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        s.map.insert(key, (tick, value));
    }

    /// Entries currently resident (all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tag: u64) -> Arc<Vec<u8>> {
        Arc::new(tag.to_le_bytes().to_vec())
    }

    #[test]
    fn hit_miss_accounting() {
        let c = ShardedCache::new(CacheConfig { shards: 2, chunks_per_shard: 2 });
        assert!(c.get(0).is_none());
        c.insert(0, ev(0));
        assert!(c.get(0).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        // One shard so every key collides into the same LRU domain.
        let c = ShardedCache::new(CacheConfig { shards: 1, chunks_per_shard: 2 });
        c.insert(1, ev(1));
        c.insert(2, ev(2));
        assert!(c.get(1).is_some(), "refresh 1 so 2 becomes LRU");
        c.insert(3, ev(3));
        assert!(c.get(2).is_none(), "2 was evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
        let s = c.stats();
        assert_eq!(s.evictions, 1, "exactly one entry was displaced");
        assert_eq!(s.insertions, 3);
    }

    #[test]
    fn merged_sums_every_counter() {
        let a = CacheStats { hits: 1, misses: 2, evictions: 3, insertions: 4 };
        let b = CacheStats { hits: 10, misses: 20, evictions: 30, insertions: 40 };
        assert_eq!(
            a.merged(b),
            CacheStats { hits: 11, misses: 22, evictions: 33, insertions: 44 }
        );
    }

    #[test]
    fn reinsert_does_not_evict() {
        let c = ShardedCache::new(CacheConfig { shards: 1, chunks_per_shard: 2 });
        c.insert(1, ev(1));
        c.insert(2, ev(2));
        c.insert(2, ev(22));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_some());
        assert_eq!(c.get(2).unwrap()[0], 22);
        assert_eq!(c.stats().evictions, 0, "overwrite is not an eviction");
    }

    #[test]
    fn shards_are_independent() {
        let c = ShardedCache::new(CacheConfig { shards: 4, chunks_per_shard: 1 });
        for k in 0..4 {
            c.insert(k, ev(k as u64));
        }
        assert_eq!(c.len(), 4, "one entry per shard, no cross-shard eviction");
    }
}
