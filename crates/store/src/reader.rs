//! The out-of-core store reader.
//!
//! [`StoreReader::open`] maps the whole file ([`crate::mmap`]) and
//! parses only the footer — the fixed trailer, the chunk index and the
//! (small) header blob; chunk payloads stay untouched pages until a
//! query needs them. Every chunk's offset/length is validated against
//! the file bounds up front, so a corrupt index is an open error, not
//! a scan-time panic.
//!
//! [`StoreReader::query`] walks the index, skips every chunk whose
//! [`ChunkMeta`] proves it cannot match, and scans the survivors:
//!
//! - **Raw chunks** decode straight out of the mapping — zero copies,
//!   zero cache traffic.
//! - **LZ chunks** decompress into the sharded byte-block [`cache`];
//!   repeat queries reuse the decompressed block. `chunks_decoded`
//!   counts paid decompressions, `chunks_cached` covers both cache
//!   hits and raw-from-mapping chunks (neither pays a decompression).
//!
//! [`StoreReader::query_parallel`] fans the surviving chunks out over
//! worker threads, preserving trace order in the merged result — and
//! falls back to the sequential scan below
//! [`PARALLEL_MIN_CHUNKS`] candidates, where thread spawn + merge
//! costs more than the scan itself.
//!
//! # Integrity and recovery
//!
//! v3/v4 stores checksum everything (see [`crate::writer`]). On the
//! read side that shows up twice:
//!
//! - Each chunk's payload CRC32C is verified **lazily**, the first
//!   time a query touches the chunk, and the verdict is memoized — a
//!   warm scan re-pays nothing. [`StoreReader::set_verify`] disables
//!   the check for benchmarking (`query --no-verify`).
//! - [`RecoveryMode`] picks the failure policy.
//!   [`RecoveryMode::Strict`] (the default) fails closed: corruption
//!   is an error. [`RecoveryMode::Salvage`] degrades: damaged chunks
//!   are skipped and reported ([`StoreReader::damage_report`], the
//!   `chunks_damaged` count in [`ScanStats`]), and a v3 file whose
//!   footer never made it to disk (a killed run) is recovered by
//!   forward-scanning the self-delimiting chunk frames.

use crate::cache::{CacheConfig, CacheStats, ShardedCache};
use crate::cancel::CancelToken;
use crate::chunk::{ChunkFrame, ChunkMeta, Compression, FRAME_LEN};
use crate::codec::{decode_events, scan_events_v2, DecodeScratch};
use crate::codec_v4::scan_events_v4;
use crate::crc::{crc32c, Crc32c};
use crate::lz;
use crate::mmap::Mapping;
use crate::varint::get_u64;
use crate::writer::{
    MAGIC, MAGIC_V1, MAGIC_V2, MAGIC_V4, TRAILER_LEN, TRAILER_LEN_V2, TRAILER_MAGIC,
    TRAILER_MAGIC_V2, TRAILER_MAGIC_V4,
};
use mempersp_extrae::events::TraceEvent;
use mempersp_extrae::query::Query;
use mempersp_extrae::trace_source::ScanStats;
use mempersp_extrae::tracer::{Trace, TraceMeta};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Below this many surviving chunks a parallel query runs
/// sequentially: spawning + merging costs more than the scan.
pub const PARALLEL_MIN_CHUNKS: usize = 64;

/// Upper bound on one chunk's claimed raw payload — a corrupt or
/// hostile index must not turn into a multi-gigabyte allocation.
const MAX_CHUNK_RAW: u32 = 256 * 1024 * 1024;

/// Upper bound on the header blob's claimed raw size, same rationale.
const MAX_HEADER_RAW: usize = 256 * 1024 * 1024;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// What the reader does when it meets corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Fail closed: any checksum mismatch, truncation or decode error
    /// is an `InvalidData` error.
    #[default]
    Strict,
    /// Degrade gracefully: skip damaged chunks (recording them in the
    /// damage report and `ScanStats::chunks_damaged`), and recover a
    /// footer-less v3 file by forward-scanning its chunk frames.
    Salvage,
}

/// One diagnosed defect in a store file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkDamage {
    /// Chunk index for chunk-scoped damage; `None` for file-level
    /// damage (trailer, footer index, header blob).
    pub chunk: Option<usize>,
    /// File offset of the damaged region (the chunk payload, or 0 for
    /// file-level damage discovered from the trailer).
    pub offset: u64,
    pub reason: String,
}

impl std::fmt::Display for ChunkDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.chunk {
            Some(i) => write!(f, "chunk {i} @ offset {}: {}", self.offset, self.reason),
            None => write!(f, "file: {}", self.reason),
        }
    }
}

/// Per-chunk verification memo states.
const VERIFY_UNKNOWN: u8 = 0;
const VERIFY_OK: u8 = 1;
const VERIFY_BAD: u8 = 2;

/// Which chunk codec the file uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// `MPSTORE1`: row-oriented per-event records.
    V1,
    /// `MPSTORE2`: columnar tag/delta/core/payload sections.
    V2,
    /// `MPSTORE3`: v2 columnar payloads behind checksummed chunk
    /// frames, checksummed footer.
    V3,
    /// `MPSTORE4`: stream-vbyte columnar payloads in the v3 container
    /// (same frames, checksums and salvage story).
    V4,
}

/// One chunk's raw (decompressed) payload — either borrowed from the
/// mapping (raw chunks, zero-copy) or shared out of the block cache
/// (LZ chunks).
enum ChunkData<'a> {
    Mapped(&'a [u8]),
    Cached(Arc<Vec<u8>>),
}

impl std::ops::Deref for ChunkData<'_> {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            ChunkData::Mapped(s) => s,
            ChunkData::Cached(a) => a,
        }
    }
}

/// Damage found so far: deduplicated per chunk so repeated queries
/// over a bad chunk report it once.
#[derive(Default)]
struct DamageLog {
    seen: BTreeSet<usize>,
    list: Vec<ChunkDamage>,
}

impl DamageLog {
    fn record_file(&mut self, offset: u64, reason: String) {
        self.list.push(ChunkDamage { chunk: None, offset, reason });
    }

    fn record_chunk(&mut self, chunk: usize, offset: u64, reason: String) {
        if self.seen.insert(chunk) {
            // Error strings from the scan path already carry a
            // "chunk N: " prefix; Display adds its own.
            let prefix = format!("chunk {chunk}: ");
            let reason = reason.strip_prefix(&prefix).map(str::to_string).unwrap_or(reason);
            self.list.push(ChunkDamage { chunk: Some(chunk), offset, reason });
        }
    }
}

/// The parsed footer of a healthy store.
struct FooterInfo {
    metas: Vec<ChunkMeta>,
    header_off: usize,
    header_raw_len: usize,
    header_stored_len: usize,
}

/// A store opened for querying. Cheap to open; thread-safe (`&self`
/// queries may run concurrently).
pub struct StoreReader {
    map: Mapping,
    format: Format,
    mode: RecoveryMode,
    /// Verify v3 payload checksums on first touch? (`--no-verify`
    /// turns this off for benchmarking.)
    verify: bool,
    metas: Vec<ChunkMeta>,
    /// Memoized per-chunk CRC verdicts (v3): unknown / ok / bad.
    verified: Vec<AtomicU8>,
    /// Parsed header: meta, region names, symbols, objects,
    /// resolution — with an empty event list.
    header: Trace,
    /// Was the header blob readable (vs. synthesized by salvage)?
    header_intact: bool,
    damage: Mutex<DamageLog>,
    cache: ShardedCache,
    /// Lifetime count of chunk payloads actually decompressed (cache
    /// misses on LZ chunks); the acceptance counter for "decoded
    /// strictly fewer chunks than a full scan".
    decoded_total: AtomicU64,
    /// Reusable [`DecodeScratch`]es: every scan path borrows one here
    /// and returns it, so a reader's steady state allocates zero
    /// scratches per query regardless of chunk count.
    scratch_pool: Mutex<Vec<DecodeScratch>>,
    /// Lifetime count of scratches actually constructed (pool misses);
    /// the bench's allocation-count report.
    scratch_allocs: AtomicU64,
}

/// The header a salvage open serves when the real one never reached
/// the disk: structurally valid, visibly synthetic.
fn salvage_header() -> Trace {
    Trace {
        meta: TraceMeta {
            freq_mhz: 2500,
            num_cores: 1,
            aslr_slide: 0,
            description: "salvaged store (header lost)".into(),
        },
        events: Vec::new(),
        source: Default::default(),
        objects: Default::default(),
        region_names: Vec::new(),
        resolution: Default::default(),
    }
}

impl StoreReader {
    /// Open with the default cache configuration, strict mode.
    pub fn open(path: &Path) -> io::Result<StoreReader> {
        Self::open_with(path, CacheConfig::default())
    }

    /// Open with explicit cache sizing, strict mode.
    pub fn open_with(path: &Path, cache: CacheConfig) -> io::Result<StoreReader> {
        Self::open_with_mode(path, cache, RecoveryMode::Strict)
    }

    /// Open in salvage mode with the default cache configuration.
    pub fn open_salvage(path: &Path) -> io::Result<StoreReader> {
        Self::open_with_mode(path, CacheConfig::default(), RecoveryMode::Salvage)
    }

    /// Open with an explicit [`RecoveryMode`].
    pub fn open_with_mode(
        path: &Path,
        cache: CacheConfig,
        mode: RecoveryMode,
    ) -> io::Result<StoreReader> {
        let file = std::fs::File::open(path).map_err(|e| {
            io::Error::new(e.kind(), format!("opening store {}: {e}", path.display()))
        })?;
        let len = file.metadata()?.len();
        if len < MAGIC.len() as u64 {
            return Err(bad_data(format!("{}: too short for a store file", path.display())));
        }
        let map = Mapping::of_file(&file, len)?;
        drop(file); // the mapping outlives the descriptor
        let bytes = map.bytes();

        let format = match &bytes[..8] {
            m if m == MAGIC_V4 => Format::V4,
            m if m == MAGIC => Format::V3,
            m if m == MAGIC_V2 => Format::V2,
            m if m == MAGIC_V1 => Format::V1,
            _ => {
                return Err(bad_data(format!("{}: not a trace store (bad magic)", path.display())))
            }
        };

        let mut damage = DamageLog::default();
        let mut verified: Vec<AtomicU8> = Vec::new();
        let (metas, header, header_intact) = match parse_footer(bytes, format, path) {
            Ok(footer) => {
                let header = parse_header_blob(bytes, format, &footer, path);
                match header {
                    Ok(h) => (footer.metas, h, true),
                    Err(e) if mode == RecoveryMode::Salvage => {
                        damage.record_file(footer.header_off as u64, e.to_string());
                        (footer.metas, salvage_header(), false)
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(e) if mode == RecoveryMode::Salvage && matches!(format, Format::V3 | Format::V4) => {
                // No trustworthy footer: rebuild the chunk list from
                // the self-delimiting frames. Payloads are fully
                // CRC-checked during the scan, so mark survivors
                // verified up front.
                damage.record_file(0, e.to_string());
                let metas = forward_scan_v3(bytes, &mut damage);
                verified = metas.iter().map(|_| AtomicU8::new(VERIFY_OK)).collect();
                (metas, salvage_header(), false)
            }
            Err(e) if mode == RecoveryMode::Salvage => {
                return Err(bad_data(format!(
                    "{e} (pre-v3 store: no chunk frames to salvage from)"
                )));
            }
            Err(e) => return Err(e),
        };
        if verified.len() != metas.len() {
            verified = metas.iter().map(|_| AtomicU8::new(VERIFY_UNKNOWN)).collect();
        }

        Ok(StoreReader {
            map,
            format,
            mode,
            verify: true,
            metas,
            verified,
            header,
            header_intact,
            damage: Mutex::new(damage),
            cache: ShardedCache::new(cache),
            decoded_total: AtomicU64::new(0),
            scratch_pool: Mutex::new(Vec::new()),
            scratch_allocs: AtomicU64::new(0),
        })
    }

    /// Borrow a decode scratch from the pool (or build one, counted in
    /// [`StoreReader::scratch_allocs_total`]). Pair with
    /// [`StoreReader::put_scratch`].
    fn take_scratch(&self) -> DecodeScratch {
        match self.scratch_pool.lock().expect("scratch pool poisoned").pop() {
            Some(s) => s,
            None => {
                self.scratch_allocs.fetch_add(1, Ordering::Relaxed);
                DecodeScratch::default()
            }
        }
    }

    fn put_scratch(&self, scratch: DecodeScratch) {
        self.scratch_pool.lock().expect("scratch pool poisoned").push(scratch);
    }

    /// Lifetime count of `DecodeScratch` constructions — pool misses.
    /// A warm reader's queries should not move this.
    pub fn scratch_allocs_total(&self) -> u64 {
        self.scratch_allocs.load(Ordering::Relaxed)
    }

    /// The chunk index.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.metas
    }

    /// Total events across all chunks.
    pub fn num_events(&self) -> u64 {
        self.metas.iter().map(|m| m.events as u64).sum()
    }

    /// The header trace (empty event list).
    pub fn header(&self) -> &Trace {
        &self.header
    }

    /// False when the header was lost and this reader serves the
    /// synthesized salvage header.
    pub fn header_intact(&self) -> bool {
        self.header_intact
    }

    /// Container format version: 1, 2, 3, or 4.
    pub fn format_version(&self) -> u32 {
        match self.format {
            Format::V1 => 1,
            Format::V2 => 2,
            Format::V3 => 3,
            Format::V4 => 4,
        }
    }

    /// Does the file carry per-chunk checksums (v3/v4)?
    pub fn is_checksummed(&self) -> bool {
        matches!(self.format, Format::V3 | Format::V4)
    }

    /// Toggle lazy payload-CRC verification (v3 only; on by default).
    pub fn set_verify(&mut self, verify: bool) {
        self.verify = verify;
    }

    /// Every defect diagnosed so far: at open (salvage) plus anything
    /// queries have tripped over since.
    pub fn damage_report(&self) -> Vec<ChunkDamage> {
        self.damage.lock().expect("damage log poisoned").list.clone()
    }

    /// Is the file served by a real `mmap` (vs. the buffered
    /// fallback)?
    pub fn is_mmap(&self) -> bool {
        self.map.is_mmap()
    }

    /// Lifetime count of chunk decompressions (LZ cache misses).
    pub fn chunks_decoded_total(&self) -> u64 {
        self.decoded_total.load(Ordering::Relaxed)
    }

    /// Block-cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Verify chunk `idx`'s frame + payload CRC (v3), memoizing the
    /// verdict so each chunk pays for its checksum at most once.
    fn check_chunk(&self, idx: usize) -> io::Result<()> {
        if !self.is_checksummed() || !self.verify {
            return Ok(());
        }
        match self.verified[idx].load(Ordering::Acquire) {
            VERIFY_OK => return Ok(()),
            VERIFY_BAD => {
                return Err(bad_data(format!("chunk {idx}: checksum mismatch (cached verdict)")))
            }
            _ => {}
        }
        let m = &self.metas[idx];
        let res = self.check_chunk_uncached(idx, m);
        let verdict = if res.is_ok() { VERIFY_OK } else { VERIFY_BAD };
        self.verified[idx].store(verdict, Ordering::Release);
        res
    }

    fn check_chunk_uncached(&self, idx: usize, m: &ChunkMeta) -> io::Result<()> {
        let bytes = self.map.bytes();
        let frame_off = m.offset as usize - FRAME_LEN;
        let frame = ChunkFrame::decode(&bytes[frame_off..m.offset as usize])
            .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
        if frame.stored_len != m.stored_len
            || frame.raw_len != m.raw_len
            || frame.events != m.events
            || frame.compression != m.compression
        {
            return Err(bad_data(format!(
                "chunk {idx}: frame disagrees with footer index \
                 (frame {}x{} raw, index {}x{} raw)",
                frame.events, frame.raw_len, m.events, m.raw_len
            )));
        }
        let stored = &bytes[m.offset as usize..m.offset as usize + m.stored_len as usize];
        let got = crc32c(stored);
        if got != frame.payload_crc {
            return Err(bad_data(format!(
                "chunk {idx}: payload checksum mismatch (stored {:#010x}, computed {got:#010x})",
                frame.payload_crc
            )));
        }
        Ok(())
    }

    /// Fetch one chunk's raw payload; `true` when this call paid for a
    /// decompression (LZ cache miss). Raw chunks are served zero-copy
    /// from the mapping and never enter the cache.
    fn chunk_data(&self, idx: usize) -> io::Result<(ChunkData<'_>, bool)> {
        self.check_chunk(idx)?;
        let m = &self.metas[idx];
        let stored =
            &self.map.bytes()[m.offset as usize..m.offset as usize + m.stored_len as usize];
        match m.compression {
            Compression::Raw => Ok((ChunkData::Mapped(stored), false)),
            Compression::Lz => {
                if let Some(hit) = self.cache.get(idx) {
                    return Ok((ChunkData::Cached(hit), false));
                }
                let raw = Arc::new(lz::decompress(stored, m.raw_len as usize)?);
                self.cache.insert(idx, raw.clone());
                self.decoded_total.fetch_add(1, Ordering::Relaxed);
                Ok((ChunkData::Cached(raw), true))
            }
        }
    }

    /// Indices of chunks the footer cannot rule out for `q`.
    fn candidates(&self, q: &Query) -> (Vec<usize>, u64) {
        let mut keep = Vec::new();
        let mut skipped = 0u64;
        for (i, m) in self.metas.iter().enumerate() {
            if m.may_match(q) {
                keep.push(i);
            } else {
                skipped += 1;
            }
        }
        (keep, skipped)
    }

    /// Scan one chunk into `out`, updating `stats`. In salvage mode a
    /// damaged chunk contributes nothing (and is recorded) instead of
    /// failing the query.
    fn scan_chunk(
        &self,
        idx: usize,
        q: &Query,
        scratch: &mut DecodeScratch,
        out: &mut Vec<TraceEvent>,
        stats: &mut ScanStats,
    ) -> io::Result<()> {
        let mark = out.len();
        match self.scan_chunk_strict(idx, q, scratch, out, stats) {
            Ok(()) => Ok(()),
            Err(e) if self.mode == RecoveryMode::Salvage => {
                out.truncate(mark); // drop any partially-decoded events
                stats.chunks_damaged += 1;
                self.damage
                    .lock()
                    .expect("damage log poisoned")
                    .record_chunk(idx, self.metas[idx].offset, e.to_string());
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn scan_chunk_strict(
        &self,
        idx: usize,
        q: &Query,
        scratch: &mut DecodeScratch,
        out: &mut Vec<TraceEvent>,
        stats: &mut ScanStats,
    ) -> io::Result<()> {
        let (data, decoded) = self.chunk_data(idx)?;
        if decoded {
            stats.chunks_decoded += 1;
        } else {
            stats.chunks_cached += 1;
        }
        let m = &self.metas[idx];
        match self.format {
            Format::V4 => {
                let o = scan_events_v4(&data, m.events as usize, Some(q), scratch, out)
                    .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
                stats.events_scanned += o.scanned;
                stats.events_matched += o.matched;
                stats.payload_bytes_decoded += o.payload_bytes;
            }
            Format::V2 | Format::V3 => {
                let o = scan_events_v2(&data, m.events as usize, Some(q), scratch, out)
                    .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
                stats.events_scanned += o.scanned;
                stats.events_matched += o.matched;
                stats.payload_bytes_decoded += o.payload_bytes;
            }
            Format::V1 => {
                let events = decode_events(&data, m.events as usize)
                    .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
                stats.events_scanned += events.len() as u64;
                stats.payload_bytes_decoded += m.raw_len as u64;
                for e in events {
                    if q.matches(&e) {
                        stats.events_matched += 1;
                        out.push(e);
                    }
                }
            }
        }
        Ok(())
    }

    fn scan_candidates(
        &self,
        candidates: &[usize],
        q: &Query,
        skipped: u64,
        cancel: &CancelToken,
    ) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        let mut stats = ScanStats { chunks_skipped: skipped, ..Default::default() };
        let mut scratch = self.take_scratch();
        let mut out = Vec::new();
        let res = (|| -> io::Result<()> {
            for &idx in candidates {
                cancel.check()?;
                self.scan_chunk(idx, q, &mut scratch, &mut out, &mut stats)?;
            }
            Ok(())
        })();
        self.put_scratch(scratch);
        res?;
        Ok((out, stats))
    }

    /// Run a query sequentially. Returns matching events in stored
    /// (trace) order plus the scan's cost accounting.
    pub fn query(&self, q: &Query) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        self.query_cancel(q, &CancelToken::new())
    }

    /// [`StoreReader::query`] with a cancellation token checked at
    /// every chunk boundary. An expired deadline surfaces as
    /// `ErrorKind::TimedOut`, an explicit cancel as `Interrupted`.
    pub fn query_cancel(
        &self,
        q: &Query,
        cancel: &CancelToken,
    ) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        let (candidates, skipped) = self.candidates(q);
        self.scan_candidates(&candidates, q, skipped, cancel)
    }

    /// Run a query with the surviving chunks spread over `threads`
    /// workers. The result is identical to [`StoreReader::query`] —
    /// chunks are partitioned contiguously and re-concatenated in
    /// index order, so event order is preserved deterministically.
    /// Below [`PARALLEL_MIN_CHUNKS`] surviving chunks the scan runs
    /// sequentially — at that size thread spawn + merge dominates.
    pub fn query_parallel(&self, q: &Query, threads: usize) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        self.query_parallel_cancel(q, threads, &CancelToken::new())
    }

    /// [`StoreReader::query_parallel`] with a cancellation token; every
    /// worker checks it at its own chunk boundaries.
    pub fn query_parallel_cancel(
        &self,
        q: &Query,
        threads: usize,
        cancel: &CancelToken,
    ) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        let (candidates, skipped) = self.candidates(q);
        let threads = threads.clamp(1, candidates.len().max(1));
        if threads <= 1 || candidates.len() < PARALLEL_MIN_CHUNKS {
            return self.scan_candidates(&candidates, q, skipped, cancel);
        }

        let per_worker = candidates.len().div_ceil(threads);
        let parts: Vec<io::Result<(Vec<TraceEvent>, ScanStats)>> = std::thread::scope(|s| {
            let handles: Vec<_> = candidates
                .chunks(per_worker)
                .map(|slice| {
                    s.spawn(move || {
                        let mut stats = ScanStats::default();
                        let mut scratch = self.take_scratch();
                        let mut out = Vec::new();
                        let res = (|| -> io::Result<()> {
                            for &idx in slice {
                                cancel.check()?;
                                self.scan_chunk(idx, q, &mut scratch, &mut out, &mut stats)?;
                            }
                            Ok(())
                        })();
                        self.put_scratch(scratch);
                        res?;
                        Ok((out, stats))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
        });

        let mut stats = ScanStats { chunks_skipped: skipped, ..Default::default() };
        let mut out = Vec::new();
        for part in parts {
            let (events, p) = part?;
            out.extend(events);
            stats.events_matched += p.events_matched;
            stats.events_scanned += p.events_scanned;
            stats.chunks_decoded += p.chunks_decoded;
            stats.chunks_cached += p.chunks_cached;
            stats.chunks_damaged += p.chunks_damaged;
            stats.payload_bytes_decoded += p.payload_bytes_decoded;
        }
        Ok((out, stats))
    }

    /// Run several queries in **one pass** over the store: a chunk is
    /// pruned only when *no* query's predicate can match it, decoded
    /// at most once, and its events routed to every query whose
    /// predicate they satisfy. Per-query results keep stored (trace)
    /// order. The shared [`ScanStats`] counts each surviving chunk's
    /// decode and scan once (`events_matched` sums across queries).
    pub fn query_multi(&self, qs: &[Query]) -> io::Result<(Vec<Vec<TraceEvent>>, ScanStats)> {
        self.query_multi_cancel(qs, &CancelToken::new())
    }

    /// [`StoreReader::query_multi`] with a cancellation token checked
    /// at every chunk boundary.
    pub fn query_multi_cancel(
        &self,
        qs: &[Query],
        cancel: &CancelToken,
    ) -> io::Result<(Vec<Vec<TraceEvent>>, ScanStats)> {
        let mut stats = ScanStats::default();
        let mut outs: Vec<Vec<TraceEvent>> = qs.iter().map(|_| Vec::new()).collect();
        if qs.is_empty() {
            stats.chunks_skipped = self.metas.len() as u64;
            return Ok((outs, stats));
        }
        let mut scratch = self.take_scratch();
        let mut events = Vec::new();
        for (idx, m) in self.metas.iter().enumerate() {
            if let Err(e) = cancel.check() {
                self.put_scratch(scratch);
                return Err(e);
            }
            if !qs.iter().any(|q| m.may_match(q)) {
                stats.chunks_skipped += 1;
                continue;
            }
            events.clear();
            let decode = (|| -> io::Result<bool> {
                let (data, decoded) = self.chunk_data(idx)?;
                match self.format {
                    Format::V4 => {
                        let o =
                            scan_events_v4(&data, m.events as usize, None, &mut scratch, &mut events)
                                .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
                        stats.payload_bytes_decoded += o.payload_bytes;
                    }
                    Format::V2 | Format::V3 => {
                        let o =
                            scan_events_v2(&data, m.events as usize, None, &mut scratch, &mut events)
                                .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
                        stats.payload_bytes_decoded += o.payload_bytes;
                    }
                    Format::V1 => {
                        events = decode_events(&data, m.events as usize)
                            .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
                        stats.payload_bytes_decoded += m.raw_len as u64;
                    }
                }
                Ok(decoded)
            })();
            match decode {
                Ok(decoded) => {
                    if decoded {
                        stats.chunks_decoded += 1;
                    } else {
                        stats.chunks_cached += 1;
                    }
                }
                Err(e) if self.mode == RecoveryMode::Salvage => {
                    events.clear();
                    stats.chunks_damaged += 1;
                    self.damage
                        .lock()
                        .expect("damage log poisoned")
                        .record_chunk(idx, m.offset, e.to_string());
                    continue;
                }
                Err(e) => {
                    self.put_scratch(scratch);
                    return Err(e);
                }
            }
            stats.events_scanned += events.len() as u64;
            for e in &events {
                for (q, out) in qs.iter().zip(&mut outs) {
                    if q.matches(e) {
                        stats.events_matched += 1;
                        out.push(e.clone());
                    }
                }
            }
        }
        self.put_scratch(scratch);
        Ok((outs, stats))
    }

    /// Materialize the whole trace: header plus every event, in
    /// stored order.
    pub fn materialize(&self) -> io::Result<Trace> {
        let (events, _) = self.query(&Query::all())?;
        let mut t = self.header.clone();
        t.events = events;
        Ok(t)
    }

    /// Verify the whole file — every chunk's frame + payload CRC (v3)
    /// plus a full decode of every payload — and return one entry per
    /// defect. This is the engine behind `mempersp fsck`; a clean file
    /// returns open-time damage only (empty for a strict open).
    pub fn verify_all(&self) -> Vec<ChunkDamage> {
        let mut scratch = self.take_scratch();
        let mut found = Vec::new();
        for idx in 0..self.metas.len() {
            if let Err(e) = self.verify_chunk_deep(idx, &mut scratch) {
                let reason = e.to_string();
                let prefix = format!("chunk {idx}: ");
                let reason = reason.strip_prefix(&prefix).map(str::to_string).unwrap_or(reason);
                found.push(ChunkDamage { chunk: Some(idx), offset: self.metas[idx].offset, reason });
            }
        }
        // Fold in anything already known (salvage open notes).
        self.put_scratch(scratch);
        let mut all = self.damage_report();
        for d in found {
            if !all.contains(&d) {
                all.push(d);
            }
        }
        all
    }

    fn verify_chunk_deep(&self, idx: usize, scratch: &mut DecodeScratch) -> io::Result<()> {
        self.check_chunk(idx)?;
        let (data, _) = self.chunk_data(idx)?;
        let m = &self.metas[idx];
        let mut sink = Vec::new();
        match self.format {
            Format::V4 => {
                scan_events_v4(&data, m.events as usize, None, scratch, &mut sink)
                    .map_err(|e| bad_data(format!("{e}")))?;
            }
            Format::V2 | Format::V3 => {
                scan_events_v2(&data, m.events as usize, None, scratch, &mut sink)
                    .map_err(|e| bad_data(format!("{e}")))?;
            }
            Format::V1 => {
                decode_events(&data, m.events as usize).map_err(|e| bad_data(format!("{e}")))?;
            }
        }
        Ok(())
    }
}

/// Parse the trailer + footer index, validating every chunk's bounds
/// (and, for v3, the index checksum).
fn parse_footer(bytes: &[u8], format: Format, path: &Path) -> io::Result<FooterInfo> {
    let len = bytes.len();
    let (trailer_len, trailer_magic): (usize, &[u8; 8]) = match format {
        Format::V4 => (TRAILER_LEN, TRAILER_MAGIC_V4),
        Format::V3 => (TRAILER_LEN, TRAILER_MAGIC),
        _ => (TRAILER_LEN_V2, TRAILER_MAGIC_V2),
    };
    if len < MAGIC.len() + trailer_len {
        return Err(bad_data(format!("{}: too short for a store file", path.display())));
    }
    let trailer = &bytes[len - trailer_len..];
    if &trailer[trailer_len - 8..] != trailer_magic {
        return Err(bad_data(format!(
            "{}: truncated store (missing trailer — writer not finalized?)",
            path.display()
        )));
    }
    let index_off = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
    if index_off < MAGIC.len() as u64 || index_off > (len - trailer_len) as u64 {
        return Err(bad_data(format!(
            "{}: index offset {index_off} out of bounds (file is {len} bytes)",
            path.display()
        )));
    }
    let index_off = index_off as usize;

    // Footer index, parsed straight from the mapping.
    let index = &bytes[index_off..len - trailer_len];
    if matches!(format, Format::V3 | Format::V4) {
        let want = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
        let got = crc32c(index);
        if want != got {
            return Err(bad_data(format!(
                "{}: footer index checksum mismatch (stored {want:#010x}, computed {got:#010x})",
                path.display()
            )));
        }
    }
    let mut pos = 0usize;
    let count = get_u64(index, &mut pos)? as usize;
    if count > len / 8 {
        return Err(bad_data(format!("{}: implausible chunk count {count}", path.display())));
    }
    // v3/v4 payloads sit behind their 28-byte frame.
    let min_payload_off = match format {
        Format::V3 | Format::V4 => (MAGIC.len() + FRAME_LEN) as u64,
        _ => MAGIC.len() as u64,
    };
    let mut metas = Vec::with_capacity(count);
    for i in 0..count {
        let m = ChunkMeta::decode(index, &mut pos)
            .map_err(|e| bad_data(format!("{}: chunk {i} index entry: {e}", path.display())))?;
        // Validate the payload location once, here, so every later
        // access can slice the mapping without checks.
        let end = m.offset.checked_add(m.stored_len as u64);
        if m.offset < min_payload_off || end.is_none_or(|e| e > index_off as u64) {
            return Err(bad_data(format!(
                "{}: chunk {i} payload [{}, +{}) outside the data region",
                path.display(),
                m.offset,
                m.stored_len
            )));
        }
        if m.compression == Compression::Raw && m.raw_len != m.stored_len {
            return Err(bad_data(format!(
                "{}: chunk {i} is raw but raw_len {} != stored_len {}",
                path.display(),
                m.raw_len,
                m.stored_len
            )));
        }
        if m.raw_len > MAX_CHUNK_RAW {
            return Err(bad_data(format!(
                "{}: chunk {i} claims a {}-byte raw payload (limit {MAX_CHUNK_RAW})",
                path.display(),
                m.raw_len
            )));
        }
        if m.events as u64 > m.raw_len as u64 {
            return Err(bad_data(format!(
                "{}: chunk {i} claims {} events in {} raw bytes",
                path.display(),
                m.events,
                m.raw_len
            )));
        }
        metas.push(m);
    }
    let header_off = get_u64(index, &mut pos)? as usize;
    let header_raw_len = get_u64(index, &mut pos)? as usize;
    let header_stored_len = get_u64(index, &mut pos)? as usize;

    // Header blob: compression byte + payload (+ CRC32C in v3/v4),
    // inside the data region like any chunk.
    let trail = match format {
        Format::V3 | Format::V4 => 4usize, // trailing header CRC
        _ => 0,
    };
    let blob_end = header_off
        .checked_add(1)
        .and_then(|p| p.checked_add(header_stored_len))
        .and_then(|p| p.checked_add(trail))
        .filter(|&e| header_off >= MAGIC.len() && e <= index_off)
        .map(|e| e - trail);
    if blob_end.is_none() {
        return Err(bad_data(format!(
            "{}: header blob [{header_off}, +{header_stored_len}) outside the data region",
            path.display()
        )));
    }
    if header_raw_len > MAX_HEADER_RAW {
        return Err(bad_data(format!(
            "{}: header blob claims {header_raw_len} raw bytes (limit {MAX_HEADER_RAW})",
            path.display()
        )));
    }
    Ok(FooterInfo { metas, header_off, header_raw_len, header_stored_len })
}

/// Decode (and for v3, checksum) the header blob into the header
/// trace.
fn parse_header_blob(
    bytes: &[u8],
    format: Format,
    footer: &FooterInfo,
    path: &Path,
) -> io::Result<Trace> {
    let header_off = footer.header_off;
    let blob_end = header_off + 1 + footer.header_stored_len;
    let code = bytes[header_off];
    let blob = &bytes[header_off + 1..blob_end];
    if matches!(format, Format::V3 | Format::V4) {
        let want = u32::from_le_bytes(bytes[blob_end..blob_end + 4].try_into().expect("4 bytes"));
        let got = Crc32c::new().chain(&[code]).chain(blob).finish();
        if want != got {
            return Err(bad_data(format!(
                "{}: header blob checksum mismatch (stored {want:#010x}, computed {got:#010x})",
                path.display()
            )));
        }
    }
    let header_bytes = match Compression::from_code(code).map_err(io::Error::from)? {
        Compression::Raw => blob.to_vec(),
        Compression::Lz => lz::decompress(blob, footer.header_raw_len)?,
    };
    let header_text = String::from_utf8(header_bytes)
        .map_err(|_| bad_data(format!("{}: header blob is not UTF-8", path.display())))?;
    mempersp_extrae::trace_format::parse_trace(&header_text)
        .map_err(|e| bad_data(format!("{}: bad header: {e}", path.display())))
}

/// Rebuild a chunk list from the self-delimiting v3 frames of a file
/// whose footer is missing or untrustworthy (a killed run's `.tmp`).
/// Every accepted chunk has a valid frame *and* a matching payload
/// CRC; everything else lands in the damage log. Returned metas carry
/// conservative (match-anything) content summaries.
fn forward_scan_v3(bytes: &[u8], damage: &mut DamageLog) -> Vec<ChunkMeta> {
    let len = bytes.len();
    let mut metas = Vec::new();
    let mut pos = MAGIC.len();
    while pos + FRAME_LEN <= len {
        match ChunkFrame::decode(&bytes[pos..pos + FRAME_LEN]) {
            Ok(frame) => {
                let payload_start = pos + FRAME_LEN;
                let payload_end = payload_start + frame.stored_len as usize;
                if payload_end > len {
                    damage.record_chunk(
                        metas.len(),
                        payload_start as u64,
                        format!(
                            "chunk truncated at end of file ({} of {} payload bytes present)",
                            len - payload_start,
                            frame.stored_len
                        ),
                    );
                    break;
                }
                let payload = &bytes[payload_start..payload_end];
                let plausible = frame.raw_len <= MAX_CHUNK_RAW
                    && frame.events as u64 <= frame.raw_len as u64
                    && (frame.compression != Compression::Raw || frame.raw_len == frame.stored_len);
                if !plausible {
                    damage.record_chunk(
                        metas.len(),
                        payload_start as u64,
                        "implausible chunk frame (bad raw/stored/event sizes)".into(),
                    );
                } else if crc32c(payload) != frame.payload_crc {
                    damage.record_chunk(
                        metas.len(),
                        payload_start as u64,
                        "payload checksum mismatch".into(),
                    );
                } else {
                    metas.push(frame.to_salvaged_meta(payload_start as u64));
                }
                pos = payload_end;
            }
            Err(_) => {
                // Lost framing: hunt for the next authentic frame. A
                // frame magic match alone is not trusted — the next
                // loop iteration re-validates via the frame CRC.
                match find_magic(&bytes[pos + 1..], crate::chunk::FRAME_MAGIC) {
                    Some(ahead) => {
                        let next = pos + 1 + ahead;
                        damage.record_chunk(
                            metas.len(),
                            pos as u64,
                            format!("skipped {} unreadable bytes", next - pos),
                        );
                        pos = next;
                    }
                    // No further frame: the rest is the (unreachable
                    // without an index) header/footer tail, or tail
                    // damage. Either way the chunk walk is done.
                    None => break,
                }
            }
        }
    }
    metas
}

fn find_magic(haystack: &[u8], needle: &[u8; 4]) -> Option<usize> {
    haystack.windows(4).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_store_chunked, TRAILER_LEN};
    use mempersp_extrae::query::EventClass;
    use mempersp_extrae::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_store_r_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trace_sized(iters: u64) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 4);
        let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
        for i in 0..iters {
            let core = (i % 4) as usize;
            t.enter(core, "R", c, i * 100);
            t.user_event(core, 1, i, i * 100 + 10);
            t.exit(core, "R", c, i * 100 + 50);
        }
        t.finish("reader test")
    }

    fn trace() -> Trace {
        trace_sized(3000)
    }

    #[test]
    fn materialize_equals_source_trace() {
        let path = tmp("mat.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.format_version(), 4);
        assert!(r.is_checksummed());
        let back = r.materialize().unwrap();
        assert_eq!(back.events, t.events);
        assert_eq!(back.meta, t.meta);
        assert_eq!(back.region_names, t.region_names);
        assert_eq!(back.resolution, t.resolution);
        assert!(r.damage_report().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn time_window_skips_chunks() {
        let path = tmp("window.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        assert!(r.chunks().len() >= 8, "need many chunks, got {}", r.chunks().len());
        let q = Query::all().in_time(0, 5_000);
        let (events, stats) = r.query(&q).unwrap();
        let expect: Vec<_> = t.events.iter().filter(|e| q.matches(e)).cloned().collect();
        assert_eq!(events, expect);
        assert!(stats.chunks_skipped > 0, "{stats:?}");
        assert!(
            stats.chunks_decoded < r.chunks().len() as u64,
            "decoded {} of {}",
            stats.chunks_decoded,
            r.chunks().len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn requery_hits_cache() {
        let path = tmp("cache.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let q = Query::all().in_time(0, 5_000);
        let (_, cold) = r.query(&q).unwrap();
        assert!(cold.chunks_decoded > 0);
        assert_eq!(cold.chunks_cached, 0);
        let (_, warm) = r.query(&q).unwrap();
        assert_eq!(warm.chunks_decoded, 0, "everything cached: {warm:?}");
        assert_eq!(warm.chunks_cached, cold.chunks_decoded);
        assert_eq!(r.chunks_decoded_total(), cold.chunks_decoded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let path = tmp("par.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let q = Query::all().with_kinds(&[EventClass::User]);
        let (seq, seq_stats) = r.query(&q).unwrap();
        for threads in [2, 3, 8] {
            let (par, par_stats) = r.query_parallel(&q, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_stats.events_matched, seq_stats.events_matched);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_merge_path_covers_many_chunks() {
        // Enough chunks to clear PARALLEL_MIN_CHUNKS so the real
        // fan-out + in-order merge runs (the test above stays under
        // the threshold and exercises the sequential fallback).
        let path = tmp("par_big.mps");
        let t = trace_sized(20_000);
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let q = Query::all();
        let (candidates, _) = r.candidates(&q);
        assert!(
            candidates.len() >= PARALLEL_MIN_CHUNKS,
            "need ≥{PARALLEL_MIN_CHUNKS} chunks, got {}",
            candidates.len()
        );
        let (seq, seq_stats) = r.query(&q).unwrap();
        assert_eq!(seq.len(), t.events.len());
        for threads in [2, 5] {
            let (par, par_stats) = r.query_parallel(&q, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_stats.events_matched, seq_stats.events_matched);
            assert_eq!(par_stats.events_scanned, seq_stats.events_scanned);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_query_matches_individual_queries_with_one_decode_pass() {
        let path = tmp("multi.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let qs = [
            Query::all().in_time(0, 5_000).with_kinds(&[EventClass::User]),
            Query::all().in_time(100_000, 150_000),
            Query::all().with_kinds(&[EventClass::RegionEnter]),
        ];
        // Individual baselines on a fresh reader (cold cache).
        let r1 = StoreReader::open(&path).unwrap();
        let mut individual = Vec::new();
        let mut decoded_sum = 0u64;
        for q in &qs {
            let (events, s) = r1.query(q).unwrap();
            decoded_sum += s.chunks_decoded;
            individual.push(events);
        }
        let r2 = StoreReader::open(&path).unwrap();
        let (outs, stats) = r2.query_multi(&qs).unwrap();
        assert_eq!(outs, individual);
        assert!(
            stats.chunks_decoded <= decoded_sum,
            "one pass ({}) must not decode more than {} per-query decodes",
            stats.chunks_decoded,
            decoded_sum
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_query_prunes_chunks_no_query_needs() {
        let path = tmp("multi_prune.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        // Two disjoint narrow windows leave most chunks untouched.
        let qs = [Query::all().in_time(0, 2_000), Query::all().in_time(200_000, 202_000)];
        let (outs, stats) = r.query_multi(&qs).unwrap();
        assert!(stats.chunks_skipped > 0, "{stats:?}");
        for (q, out) in qs.iter().zip(&outs) {
            let expect: Vec<_> = t.events.iter().filter(|e| q.matches(e)).cloned().collect();
            assert_eq!(out, &expect);
        }
        // No queries at all: everything skipped, nothing decoded.
        let (empty, s0) = r.query_multi(&[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(s0.chunks_decoded + s0.chunks_cached, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_non_store_files() {
        let path = tmp("bogus.mps");
        std::fs::write(&path, "#MEMPERSP-PRV 1\nMETA 2500 1 0 \"x\"\n").unwrap();
        let err = match StoreReader::open(&path) {
            Ok(_) => panic!("a .prv text file must not open as a store"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("magic") || err.to_string().contains("short"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_truncated_store() {
        let path = tmp("trunc.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();
        assert!(StoreReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_out_of_bounds_chunk_index() {
        // Craft a store, then corrupt the first chunk's offset in the
        // footer index to point past the data region; open must fail
        // with a descriptive error instead of a scan-time panic.
        let path = tmp("oob.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        assert!(!r.chunks().is_empty());
        drop(r);
        let mut bytes = std::fs::read(&path).unwrap();
        let index_off = u64::from_le_bytes(
            bytes[bytes.len() - TRAILER_LEN..bytes.len() - TRAILER_LEN + 8].try_into().unwrap(),
        ) as usize;
        // The index starts with a varint count, then chunk 0's offset
        // varint. Overwrite that offset with a huge 5-byte varint —
        // same length or longer keeps later bytes parseable enough to
        // reach the bounds check.
        let mut pos = index_off;
        crate::varint::get_u64(&bytes, &mut pos).unwrap(); // count
        bytes[pos] = 0xFF; // chunk 0 offset → continuation into garbage
        std::fs::write(&path, &bytes).unwrap();
        let err = match StoreReader::open(&path) {
            Ok(_) => panic!("corrupt index must not open"),
            Err(e) => e,
        };
        // v3: the index CRC catches the flip before the bounds checks
        // even run.
        assert!(
            err.to_string().contains("chunk")
                || err.to_string().contains("codec")
                || err.to_string().contains("checksum"),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_flip_is_caught_lazily_and_memoized() {
        let path = tmp("flip.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the first chunk's payload (well clear
        // of the frame).
        let victim = 8 + FRAME_LEN + 5;
        bytes[victim] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // Strict: the full scan errors when it reaches the bad chunk.
        let r = StoreReader::open(&path).unwrap();
        let err = r.query(&Query::all()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");

        // Salvage: the scan completes, skipping exactly one chunk.
        let s = StoreReader::open_salvage(&path).unwrap();
        let (events, stats) = s.query(&Query::all()).unwrap();
        assert_eq!(stats.chunks_damaged, 1, "{stats:?}");
        assert!(events.len() < t.events.len());
        assert!(!events.is_empty(), "undamaged chunks must survive");
        let report = s.damage_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].chunk, Some(0));
        // Re-query: memoized verdict, damage not duplicated.
        let (_, stats2) = s.query(&Query::all()).unwrap();
        assert_eq!(stats2.chunks_damaged, 1);
        assert_eq!(s.damage_report().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn no_verify_skips_crc_checking() {
        let path = tmp("noverify.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt a payload byte in a way LZ decompression tolerates?
        // Not guaranteed — so instead verify the *happy* path: with
        // verification off a clean store still answers correctly.
        let mut r = StoreReader::open(&path).unwrap();
        r.set_verify(false);
        let (events, _) = r.query(&Query::all()).unwrap();
        assert_eq!(events, t.events);

        // And the CRC path is genuinely off: flip a payload byte and
        // confirm strict+no-verify does NOT flag a checksum error
        // (decode may or may not succeed; it must not mention CRC).
        let victim = 8 + FRAME_LEN + 5;
        bytes[victim] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut r2 = StoreReader::open(&path).unwrap();
        r2.set_verify(false);
        if let Err(e) = r2.query(&Query::all()) {
            assert!(!e.to_string().contains("checksum mismatch"), "{e}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn footerless_file_salvages_via_forward_scan() {
        let path = tmp("footerless.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let clean = StoreReader::open(&path).unwrap();
        let chunks = clean.chunks().len();
        assert!(chunks >= 4);
        // Cut the file right after the last chunk payload — header,
        // index and trailer gone, exactly what a killed run leaves.
        let last = clean.chunks().last().unwrap();
        let cut = (last.offset + last.stored_len as u64) as usize;
        drop(clean);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..cut]).unwrap();

        assert!(StoreReader::open(&path).is_err(), "strict must reject a footer-less file");
        let s = StoreReader::open_salvage(&path).unwrap();
        assert_eq!(s.chunks().len(), chunks, "every full chunk is recoverable");
        assert!(!s.header_intact());
        let (events, stats) = s.query(&Query::all()).unwrap();
        assert_eq!(events, t.events, "salvage recovers every event of every full chunk");
        assert_eq!(stats.chunks_damaged, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_salvages_to_a_chunk_prefix() {
        let path = tmp("torn.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let clean = StoreReader::open(&path).unwrap();
        let chunks: Vec<ChunkMeta> = clean.chunks().to_vec();
        assert!(chunks.len() >= 4);
        // Tear mid-way through the third chunk's payload.
        let cut = chunks[2].offset as usize + chunks[2].stored_len as usize / 2;
        let expect_events: u64 = chunks[..2].iter().map(|m| m.events as u64).sum();
        drop(clean);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let s = StoreReader::open_salvage(&path).unwrap();
        assert_eq!(s.chunks().len(), 2, "two complete chunks precede the tear");
        let (events, _) = s.query(&Query::all()).unwrap();
        assert_eq!(events.len() as u64, expect_events);
        assert_eq!(events[..], t.events[..events.len()], "salvaged events are an exact prefix");
        assert!(
            s.damage_report().iter().any(|d| d.reason.contains("truncated")),
            "{:?}",
            s.damage_report()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_all_names_the_flipped_chunk() {
        let path = tmp("vfy.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let clean = StoreReader::open(&path).unwrap();
        assert!(clean.verify_all().is_empty(), "pristine file must verify clean");
        let chunks: Vec<ChunkMeta> = clean.chunks().to_vec();
        drop(clean);
        let mut bytes = std::fs::read(&path).unwrap();
        let victim_chunk = 3.min(chunks.len() - 1);
        bytes[chunks[victim_chunk].offset as usize + 1] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let damage = r.verify_all();
        assert_eq!(damage.len(), 1, "{damage:?}");
        assert_eq!(damage[0].chunk, Some(victim_chunk));
        assert!(damage[0].reason.contains("checksum"), "{}", damage[0].reason);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_and_v2_stores_cannot_forward_scan_but_error_cleanly() {
        let path = tmp("v2_salvage.mps");
        let t = trace();
        crate::writer::write_store_v2(&path, &t, 4096).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 30]).unwrap();
        let err = match StoreReader::open_salvage(&path) {
            Ok(_) => panic!("a truncated pre-v3 store must not salvage"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("pre-v3"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
