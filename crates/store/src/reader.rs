//! The out-of-core store reader.
//!
//! [`StoreReader::open`] reads only the footer — the fixed trailer,
//! the chunk index and the (small) header blob; chunk payloads stay on
//! disk until a query needs them. [`StoreReader::query`] walks the
//! index, skips every chunk whose [`ChunkMeta`] proves it cannot
//! match, and decodes the survivors through the sharded LRU block
//! cache. [`StoreReader::query_parallel`] fans the surviving chunks
//! out over worker threads (the CLI reuses the `--threads` knob),
//! preserving trace order in the merged result.

use crate::cache::{CacheConfig, CacheStats, ShardedCache};
use crate::chunk::{ChunkMeta, Compression};
use crate::codec::decode_events;
use crate::lz;
use crate::varint::get_u64;
use crate::writer::{MAGIC, TRAILER_MAGIC};
use mempersp_extrae::events::TraceEvent;
use mempersp_extrae::query::Query;
use mempersp_extrae::trace_source::ScanStats;
use mempersp_extrae::tracer::Trace;
use std::io::{self, Read as _, Seek as _, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A store opened for querying. Cheap to open; thread-safe (`&self`
/// queries may run concurrently).
pub struct StoreReader {
    file: Mutex<std::fs::File>,
    metas: Vec<ChunkMeta>,
    /// Parsed header: meta, region names, symbols, objects,
    /// resolution — with an empty event list.
    header: Trace,
    cache: ShardedCache,
    /// Lifetime count of chunk payloads actually decoded (cache
    /// misses); the acceptance counter for "decoded strictly fewer
    /// chunks than a full scan".
    decoded_total: AtomicU64,
}

impl StoreReader {
    /// Open with the default cache configuration.
    pub fn open(path: &Path) -> io::Result<StoreReader> {
        Self::open_with(path, CacheConfig::default())
    }

    /// Open with explicit cache sizing.
    pub fn open_with(path: &Path, cache: CacheConfig) -> io::Result<StoreReader> {
        let mut file = std::fs::File::open(path).map_err(|e| {
            io::Error::new(e.kind(), format!("opening store {}: {e}", path.display()))
        })?;
        let len = file.metadata()?.len();
        let min = (MAGIC.len() + 16) as u64;
        if len < min {
            return Err(bad_data(format!("{}: too short for a store file", path.display())));
        }

        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad_data(format!("{}: not a trace store (bad magic)", path.display())));
        }

        // Trailer: index offset + trailing magic.
        file.seek(SeekFrom::End(-16))?;
        let mut trailer = [0u8; 16];
        file.read_exact(&mut trailer)?;
        if &trailer[8..] != TRAILER_MAGIC {
            return Err(bad_data(format!(
                "{}: truncated store (missing trailer — writer not finalized?)",
                path.display()
            )));
        }
        let index_off = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        if index_off < MAGIC.len() as u64 || index_off > len - 16 {
            return Err(bad_data(format!("{}: index offset out of bounds", path.display())));
        }

        // Footer index.
        file.seek(SeekFrom::Start(index_off))?;
        let mut index = vec![0u8; (len - 16 - index_off) as usize];
        file.read_exact(&mut index)?;
        let mut pos = 0usize;
        let count = get_u64(&index, &mut pos)? as usize;
        if count > (len / 8) as usize {
            return Err(bad_data(format!("{}: implausible chunk count {count}", path.display())));
        }
        let mut metas = Vec::with_capacity(count);
        for _ in 0..count {
            metas.push(ChunkMeta::decode(&index, &mut pos)?);
        }
        let header_off = get_u64(&index, &mut pos)?;
        let header_raw_len = get_u64(&index, &mut pos)? as usize;
        let header_stored_len = get_u64(&index, &mut pos)? as usize;

        // Header blob: compression byte + payload.
        file.seek(SeekFrom::Start(header_off))?;
        let mut code = [0u8; 1];
        file.read_exact(&mut code)?;
        let mut blob = vec![0u8; header_stored_len];
        file.read_exact(&mut blob)?;
        let header_bytes = match Compression::from_code(code[0]).map_err(io::Error::from)? {
            Compression::Raw => blob,
            Compression::Lz => lz::decompress(&blob, header_raw_len)?,
        };
        let header_text = String::from_utf8(header_bytes)
            .map_err(|_| bad_data(format!("{}: header blob is not UTF-8", path.display())))?;
        let header = mempersp_extrae::trace_format::parse_trace(&header_text)
            .map_err(|e| bad_data(format!("{}: bad header: {e}", path.display())))?;

        Ok(StoreReader {
            file: Mutex::new(file),
            metas,
            header,
            cache: ShardedCache::new(cache),
            decoded_total: AtomicU64::new(0),
        })
    }

    /// The chunk index.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.metas
    }

    /// Total events across all chunks.
    pub fn num_events(&self) -> u64 {
        self.metas.iter().map(|m| m.events as u64).sum()
    }

    /// The header trace (empty event list).
    pub fn header(&self) -> &Trace {
        &self.header
    }

    /// Lifetime count of chunk decodes (cache misses that hit disk).
    pub fn chunks_decoded_total(&self) -> u64 {
        self.decoded_total.load(Ordering::Relaxed)
    }

    /// Block-cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Fetch one chunk's decoded events; `true` when this call paid
    /// for a decode (cache miss).
    fn chunk(&self, idx: usize) -> io::Result<(Arc<Vec<TraceEvent>>, bool)> {
        if let Some(hit) = self.cache.get(idx) {
            return Ok((hit, false));
        }
        let m = &self.metas[idx];
        let mut stored = vec![0u8; m.stored_len as usize];
        {
            let mut f = self.file.lock().expect("store file lock poisoned");
            f.seek(SeekFrom::Start(m.offset))?;
            f.read_exact(&mut stored)?;
        }
        let raw = match m.compression {
            Compression::Raw => stored,
            Compression::Lz => lz::decompress(&stored, m.raw_len as usize)?,
        };
        let events = decode_events(&raw, m.events as usize)?;
        let arc = Arc::new(events);
        self.cache.insert(idx, arc.clone());
        self.decoded_total.fetch_add(1, Ordering::Relaxed);
        Ok((arc, true))
    }

    /// Indices of chunks the footer cannot rule out for `q`.
    fn candidates(&self, q: &Query) -> (Vec<usize>, u64) {
        let mut keep = Vec::new();
        let mut skipped = 0u64;
        for (i, m) in self.metas.iter().enumerate() {
            if m.may_match(q) {
                keep.push(i);
            } else {
                skipped += 1;
            }
        }
        (keep, skipped)
    }

    /// Scan one chunk into `out`, updating `stats`.
    fn scan_chunk(
        &self,
        idx: usize,
        q: &Query,
        out: &mut Vec<TraceEvent>,
        stats: &mut ScanStats,
    ) -> io::Result<()> {
        let (chunk, decoded) = self.chunk(idx)?;
        if decoded {
            stats.chunks_decoded += 1;
        } else {
            stats.chunks_cached += 1;
        }
        stats.events_scanned += chunk.len() as u64;
        for e in chunk.iter() {
            if q.matches(e) {
                stats.events_matched += 1;
                out.push(e.clone());
            }
        }
        Ok(())
    }

    /// Run a query sequentially. Returns matching events in stored
    /// (trace) order plus the scan's cost accounting.
    pub fn query(&self, q: &Query) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        let (candidates, skipped) = self.candidates(q);
        let mut stats = ScanStats { chunks_skipped: skipped, ..Default::default() };
        let mut out = Vec::new();
        for idx in candidates {
            self.scan_chunk(idx, q, &mut out, &mut stats)?;
        }
        Ok((out, stats))
    }

    /// Run a query with the surviving chunks spread over `threads`
    /// workers. The result is identical to [`StoreReader::query`] —
    /// chunks are partitioned contiguously and re-concatenated in
    /// index order, so event order is preserved deterministically.
    pub fn query_parallel(&self, q: &Query, threads: usize) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        let (candidates, skipped) = self.candidates(q);
        let threads = threads.clamp(1, candidates.len().max(1));
        if threads <= 1 {
            let mut stats = ScanStats { chunks_skipped: skipped, ..Default::default() };
            let mut out = Vec::new();
            for idx in candidates {
                self.scan_chunk(idx, q, &mut out, &mut stats)?;
            }
            return Ok((out, stats));
        }

        let per_worker = candidates.len().div_ceil(threads);
        let parts: Vec<io::Result<(Vec<TraceEvent>, ScanStats)>> = std::thread::scope(|s| {
            let handles: Vec<_> = candidates
                .chunks(per_worker)
                .map(|slice| {
                    s.spawn(move || {
                        let mut stats = ScanStats::default();
                        let mut out = Vec::new();
                        for &idx in slice {
                            self.scan_chunk(idx, q, &mut out, &mut stats)?;
                        }
                        Ok((out, stats))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
        });

        let mut stats = ScanStats { chunks_skipped: skipped, ..Default::default() };
        let mut out = Vec::new();
        for part in parts {
            let (events, p) = part?;
            out.extend(events);
            stats.events_matched += p.events_matched;
            stats.events_scanned += p.events_scanned;
            stats.chunks_decoded += p.chunks_decoded;
            stats.chunks_cached += p.chunks_cached;
        }
        Ok((out, stats))
    }

    /// Run several queries in **one pass** over the store: a chunk is
    /// pruned only when *no* query's predicate can match it, decoded
    /// at most once, and its events routed to every query whose
    /// predicate they satisfy. Per-query results keep stored (trace)
    /// order. The shared [`ScanStats`] counts each surviving chunk's
    /// decode and scan once (`events_matched` sums across queries).
    pub fn query_multi(&self, qs: &[Query]) -> io::Result<(Vec<Vec<TraceEvent>>, ScanStats)> {
        let mut stats = ScanStats::default();
        let mut outs: Vec<Vec<TraceEvent>> = qs.iter().map(|_| Vec::new()).collect();
        if qs.is_empty() {
            stats.chunks_skipped = self.metas.len() as u64;
            return Ok((outs, stats));
        }
        for (idx, m) in self.metas.iter().enumerate() {
            if !qs.iter().any(|q| m.may_match(q)) {
                stats.chunks_skipped += 1;
                continue;
            }
            let (chunk, decoded) = self.chunk(idx)?;
            if decoded {
                stats.chunks_decoded += 1;
            } else {
                stats.chunks_cached += 1;
            }
            stats.events_scanned += chunk.len() as u64;
            for e in chunk.iter() {
                for (q, out) in qs.iter().zip(&mut outs) {
                    if q.matches(e) {
                        stats.events_matched += 1;
                        out.push(e.clone());
                    }
                }
            }
        }
        Ok((outs, stats))
    }

    /// Materialize the whole trace: header plus every event, in
    /// stored order.
    pub fn materialize(&self) -> io::Result<Trace> {
        let (events, _) = self.query(&Query::all())?;
        let mut t = self.header.clone();
        t.events = events;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_store_chunked;
    use mempersp_extrae::query::EventClass;
    use mempersp_extrae::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_store_r_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trace() -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 4);
        let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
        for i in 0..3000u64 {
            let core = (i % 4) as usize;
            t.enter(core, "R", c, i * 100);
            t.user_event(core, 1, i, i * 100 + 10);
            t.exit(core, "R", c, i * 100 + 50);
        }
        t.finish("reader test")
    }

    #[test]
    fn materialize_equals_source_trace() {
        let path = tmp("mat.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let back = r.materialize().unwrap();
        assert_eq!(back.events, t.events);
        assert_eq!(back.meta, t.meta);
        assert_eq!(back.region_names, t.region_names);
        assert_eq!(back.resolution, t.resolution);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn time_window_skips_chunks() {
        let path = tmp("window.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        assert!(r.chunks().len() >= 8, "need many chunks, got {}", r.chunks().len());
        let q = Query::all().in_time(0, 5_000);
        let (events, stats) = r.query(&q).unwrap();
        let expect: Vec<_> = t.events.iter().filter(|e| q.matches(e)).cloned().collect();
        assert_eq!(events, expect);
        assert!(stats.chunks_skipped > 0, "{stats:?}");
        assert!(
            stats.chunks_decoded < r.chunks().len() as u64,
            "decoded {} of {}",
            stats.chunks_decoded,
            r.chunks().len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn requery_hits_cache() {
        let path = tmp("cache.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let q = Query::all().in_time(0, 5_000);
        let (_, cold) = r.query(&q).unwrap();
        assert!(cold.chunks_decoded > 0);
        assert_eq!(cold.chunks_cached, 0);
        let (_, warm) = r.query(&q).unwrap();
        assert_eq!(warm.chunks_decoded, 0, "everything cached: {warm:?}");
        assert_eq!(warm.chunks_cached, cold.chunks_decoded);
        assert_eq!(r.chunks_decoded_total(), cold.chunks_decoded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let path = tmp("par.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let q = Query::all().with_kinds(&[EventClass::User]);
        let (seq, seq_stats) = r.query(&q).unwrap();
        for threads in [2, 3, 8] {
            let (par, par_stats) = r.query_parallel(&q, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_stats.events_matched, seq_stats.events_matched);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_query_matches_individual_queries_with_one_decode_pass() {
        let path = tmp("multi.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let qs = [
            Query::all().in_time(0, 5_000).with_kinds(&[EventClass::User]),
            Query::all().in_time(100_000, 150_000),
            Query::all().with_kinds(&[EventClass::RegionEnter]),
        ];
        // Individual baselines on a fresh reader (cold cache).
        let r1 = StoreReader::open(&path).unwrap();
        let mut individual = Vec::new();
        let mut decoded_sum = 0u64;
        for q in &qs {
            let (events, s) = r1.query(q).unwrap();
            decoded_sum += s.chunks_decoded;
            individual.push(events);
        }
        let r2 = StoreReader::open(&path).unwrap();
        let (outs, stats) = r2.query_multi(&qs).unwrap();
        assert_eq!(outs, individual);
        assert!(
            stats.chunks_decoded <= decoded_sum,
            "one pass ({}) must not decode more than {} per-query decodes",
            stats.chunks_decoded,
            decoded_sum
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_query_prunes_chunks_no_query_needs() {
        let path = tmp("multi_prune.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        // Two disjoint narrow windows leave most chunks untouched.
        let qs = [Query::all().in_time(0, 2_000), Query::all().in_time(200_000, 202_000)];
        let (outs, stats) = r.query_multi(&qs).unwrap();
        assert!(stats.chunks_skipped > 0, "{stats:?}");
        for (q, out) in qs.iter().zip(&outs) {
            let expect: Vec<_> = t.events.iter().filter(|e| q.matches(e)).cloned().collect();
            assert_eq!(out, &expect);
        }
        // No queries at all: everything skipped, nothing decoded.
        let (empty, s0) = r.query_multi(&[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(s0.chunks_decoded + s0.chunks_cached, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_non_store_files() {
        let path = tmp("bogus.mps");
        std::fs::write(&path, "#MEMPERSP-PRV 1\nMETA 2500 1 0 \"x\"\n").unwrap();
        let err = match StoreReader::open(&path) {
            Ok(_) => panic!("a .prv text file must not open as a store"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("magic") || err.to_string().contains("short"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_truncated_store() {
        let path = tmp("trunc.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();
        assert!(StoreReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
