//! The out-of-core store reader.
//!
//! [`StoreReader::open`] maps the whole file ([`crate::mmap`]) and
//! parses only the footer — the fixed trailer, the chunk index and the
//! (small) header blob; chunk payloads stay untouched pages until a
//! query needs them. Every chunk's offset/length is validated against
//! the file bounds up front, so a corrupt index is an open error, not
//! a scan-time panic.
//!
//! [`StoreReader::query`] walks the index, skips every chunk whose
//! [`ChunkMeta`] proves it cannot match, and scans the survivors:
//!
//! - **Raw chunks** decode straight out of the mapping — zero copies,
//!   zero cache traffic.
//! - **LZ chunks** decompress into the sharded byte-block [`cache`];
//!   repeat queries reuse the decompressed block. `chunks_decoded`
//!   counts paid decompressions, `chunks_cached` covers both cache
//!   hits and raw-from-mapping chunks (neither pays a decompression).
//!
//! [`StoreReader::query_parallel`] fans the surviving chunks out over
//! worker threads, preserving trace order in the merged result — and
//! falls back to the sequential scan below
//! [`PARALLEL_MIN_CHUNKS`] candidates, where thread spawn + merge
//! costs more than the scan itself.

use crate::cache::{CacheConfig, CacheStats, ShardedCache};
use crate::chunk::{ChunkMeta, Compression};
use crate::codec::{decode_events, scan_events_v2, DecodeScratch};
use crate::lz;
use crate::mmap::Mapping;
use crate::varint::get_u64;
use crate::writer::{MAGIC, MAGIC_V1, TRAILER_MAGIC};
use mempersp_extrae::events::TraceEvent;
use mempersp_extrae::query::Query;
use mempersp_extrae::trace_source::ScanStats;
use mempersp_extrae::tracer::Trace;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Below this many surviving chunks a parallel query runs
/// sequentially: spawning + merging costs more than the scan.
pub const PARALLEL_MIN_CHUNKS: usize = 64;

/// Upper bound on one chunk's claimed raw payload — a corrupt or
/// hostile index must not turn into a multi-gigabyte allocation.
const MAX_CHUNK_RAW: u32 = 256 * 1024 * 1024;

/// Upper bound on the header blob's claimed raw size, same rationale.
const MAX_HEADER_RAW: usize = 256 * 1024 * 1024;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Which chunk codec the file uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// `MPSTORE1`: row-oriented per-event records.
    V1,
    /// `MPSTORE2`: columnar tag/delta/core/payload sections.
    V2,
}

/// One chunk's raw (decompressed) payload — either borrowed from the
/// mapping (raw chunks, zero-copy) or shared out of the block cache
/// (LZ chunks).
enum ChunkData<'a> {
    Mapped(&'a [u8]),
    Cached(Arc<Vec<u8>>),
}

impl std::ops::Deref for ChunkData<'_> {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            ChunkData::Mapped(s) => s,
            ChunkData::Cached(a) => a,
        }
    }
}

/// A store opened for querying. Cheap to open; thread-safe (`&self`
/// queries may run concurrently).
pub struct StoreReader {
    map: Mapping,
    format: Format,
    metas: Vec<ChunkMeta>,
    /// Parsed header: meta, region names, symbols, objects,
    /// resolution — with an empty event list.
    header: Trace,
    cache: ShardedCache,
    /// Lifetime count of chunk payloads actually decompressed (cache
    /// misses on LZ chunks); the acceptance counter for "decoded
    /// strictly fewer chunks than a full scan".
    decoded_total: AtomicU64,
}

impl StoreReader {
    /// Open with the default cache configuration.
    pub fn open(path: &Path) -> io::Result<StoreReader> {
        Self::open_with(path, CacheConfig::default())
    }

    /// Open with explicit cache sizing.
    pub fn open_with(path: &Path, cache: CacheConfig) -> io::Result<StoreReader> {
        let file = std::fs::File::open(path).map_err(|e| {
            io::Error::new(e.kind(), format!("opening store {}: {e}", path.display()))
        })?;
        let len = file.metadata()?.len();
        let min = (MAGIC.len() + 16) as u64;
        if len < min {
            return Err(bad_data(format!("{}: too short for a store file", path.display())));
        }
        let map = Mapping::of_file(&file, len)?;
        drop(file); // the mapping outlives the descriptor
        let bytes = map.bytes();
        let len = bytes.len();

        let format = match &bytes[..8] {
            m if m == MAGIC => Format::V2,
            m if m == MAGIC_V1 => Format::V1,
            _ => {
                return Err(bad_data(format!("{}: not a trace store (bad magic)", path.display())))
            }
        };

        // Trailer: index offset + trailing magic.
        let trailer = &bytes[len - 16..];
        if &trailer[8..] != TRAILER_MAGIC {
            return Err(bad_data(format!(
                "{}: truncated store (missing trailer — writer not finalized?)",
                path.display()
            )));
        }
        let index_off = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        if index_off < MAGIC.len() as u64 || index_off > (len - 16) as u64 {
            return Err(bad_data(format!(
                "{}: index offset {index_off} out of bounds (file is {len} bytes)",
                path.display()
            )));
        }
        let index_off = index_off as usize;

        // Footer index, parsed straight from the mapping.
        let index = &bytes[index_off..len - 16];
        let mut pos = 0usize;
        let count = get_u64(index, &mut pos)? as usize;
        if count > len / 8 {
            return Err(bad_data(format!("{}: implausible chunk count {count}", path.display())));
        }
        let mut metas = Vec::with_capacity(count);
        for i in 0..count {
            let m = ChunkMeta::decode(index, &mut pos).map_err(|e| {
                bad_data(format!("{}: chunk {i} index entry: {e}", path.display()))
            })?;
            // Validate the payload location once, here, so every later
            // access can slice the mapping without checks.
            let end = m.offset.checked_add(m.stored_len as u64);
            if m.offset < MAGIC.len() as u64 || end.is_none_or(|e| e > index_off as u64) {
                return Err(bad_data(format!(
                    "{}: chunk {i} payload [{}, +{}) outside the data region",
                    path.display(),
                    m.offset,
                    m.stored_len
                )));
            }
            if m.compression == Compression::Raw && m.raw_len != m.stored_len {
                return Err(bad_data(format!(
                    "{}: chunk {i} is raw but raw_len {} != stored_len {}",
                    path.display(),
                    m.raw_len,
                    m.stored_len
                )));
            }
            if m.raw_len > MAX_CHUNK_RAW {
                return Err(bad_data(format!(
                    "{}: chunk {i} claims a {}-byte raw payload (limit {MAX_CHUNK_RAW})",
                    path.display(),
                    m.raw_len
                )));
            }
            if m.events as u64 > m.raw_len as u64 {
                return Err(bad_data(format!(
                    "{}: chunk {i} claims {} events in {} raw bytes",
                    path.display(),
                    m.events,
                    m.raw_len
                )));
            }
            metas.push(m);
        }
        let header_off = get_u64(index, &mut pos)? as usize;
        let header_raw_len = get_u64(index, &mut pos)? as usize;
        let header_stored_len = get_u64(index, &mut pos)? as usize;

        // Header blob: compression byte + payload, inside the data
        // region like any chunk.
        let blob_end = header_off
            .checked_add(1)
            .and_then(|p| p.checked_add(header_stored_len))
            .filter(|&e| header_off >= MAGIC.len() && e <= index_off);
        let Some(blob_end) = blob_end else {
            return Err(bad_data(format!(
                "{}: header blob [{header_off}, +{header_stored_len}) outside the data region",
                path.display()
            )));
        };
        if header_raw_len > MAX_HEADER_RAW {
            return Err(bad_data(format!(
                "{}: header blob claims {header_raw_len} raw bytes (limit {MAX_HEADER_RAW})",
                path.display()
            )));
        }
        let code = bytes[header_off];
        let blob = &bytes[header_off + 1..blob_end];
        let header_bytes = match Compression::from_code(code).map_err(io::Error::from)? {
            Compression::Raw => blob.to_vec(),
            Compression::Lz => lz::decompress(blob, header_raw_len)?,
        };
        let header_text = String::from_utf8(header_bytes)
            .map_err(|_| bad_data(format!("{}: header blob is not UTF-8", path.display())))?;
        let header = mempersp_extrae::trace_format::parse_trace(&header_text)
            .map_err(|e| bad_data(format!("{}: bad header: {e}", path.display())))?;

        Ok(StoreReader {
            map,
            format,
            metas,
            header,
            cache: ShardedCache::new(cache),
            decoded_total: AtomicU64::new(0),
        })
    }

    /// The chunk index.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.metas
    }

    /// Total events across all chunks.
    pub fn num_events(&self) -> u64 {
        self.metas.iter().map(|m| m.events as u64).sum()
    }

    /// The header trace (empty event list).
    pub fn header(&self) -> &Trace {
        &self.header
    }

    /// Is the file served by a real `mmap` (vs. the buffered
    /// fallback)?
    pub fn is_mmap(&self) -> bool {
        self.map.is_mmap()
    }

    /// Lifetime count of chunk decompressions (LZ cache misses).
    pub fn chunks_decoded_total(&self) -> u64 {
        self.decoded_total.load(Ordering::Relaxed)
    }

    /// Block-cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Fetch one chunk's raw payload; `true` when this call paid for a
    /// decompression (LZ cache miss). Raw chunks are served zero-copy
    /// from the mapping and never enter the cache.
    fn chunk_data(&self, idx: usize) -> io::Result<(ChunkData<'_>, bool)> {
        let m = &self.metas[idx];
        let stored =
            &self.map.bytes()[m.offset as usize..m.offset as usize + m.stored_len as usize];
        match m.compression {
            Compression::Raw => Ok((ChunkData::Mapped(stored), false)),
            Compression::Lz => {
                if let Some(hit) = self.cache.get(idx) {
                    return Ok((ChunkData::Cached(hit), false));
                }
                let raw = Arc::new(lz::decompress(stored, m.raw_len as usize)?);
                self.cache.insert(idx, raw.clone());
                self.decoded_total.fetch_add(1, Ordering::Relaxed);
                Ok((ChunkData::Cached(raw), true))
            }
        }
    }

    /// Indices of chunks the footer cannot rule out for `q`.
    fn candidates(&self, q: &Query) -> (Vec<usize>, u64) {
        let mut keep = Vec::new();
        let mut skipped = 0u64;
        for (i, m) in self.metas.iter().enumerate() {
            if m.may_match(q) {
                keep.push(i);
            } else {
                skipped += 1;
            }
        }
        (keep, skipped)
    }

    /// Scan one chunk into `out`, updating `stats`.
    fn scan_chunk(
        &self,
        idx: usize,
        q: &Query,
        scratch: &mut DecodeScratch,
        out: &mut Vec<TraceEvent>,
        stats: &mut ScanStats,
    ) -> io::Result<()> {
        let (data, decoded) = self.chunk_data(idx)?;
        if decoded {
            stats.chunks_decoded += 1;
        } else {
            stats.chunks_cached += 1;
        }
        let m = &self.metas[idx];
        match self.format {
            Format::V2 => {
                let (scanned, matched) =
                    scan_events_v2(&data, m.events as usize, Some(q), scratch, out)
                        .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
                stats.events_scanned += scanned;
                stats.events_matched += matched;
            }
            Format::V1 => {
                let events = decode_events(&data, m.events as usize)
                    .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
                stats.events_scanned += events.len() as u64;
                for e in events {
                    if q.matches(&e) {
                        stats.events_matched += 1;
                        out.push(e);
                    }
                }
            }
        }
        Ok(())
    }

    fn scan_candidates(
        &self,
        candidates: &[usize],
        q: &Query,
        skipped: u64,
    ) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        let mut stats = ScanStats { chunks_skipped: skipped, ..Default::default() };
        let mut scratch = DecodeScratch::default();
        let mut out = Vec::new();
        for &idx in candidates {
            self.scan_chunk(idx, q, &mut scratch, &mut out, &mut stats)?;
        }
        Ok((out, stats))
    }

    /// Run a query sequentially. Returns matching events in stored
    /// (trace) order plus the scan's cost accounting.
    pub fn query(&self, q: &Query) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        let (candidates, skipped) = self.candidates(q);
        self.scan_candidates(&candidates, q, skipped)
    }

    /// Run a query with the surviving chunks spread over `threads`
    /// workers. The result is identical to [`StoreReader::query`] —
    /// chunks are partitioned contiguously and re-concatenated in
    /// index order, so event order is preserved deterministically.
    /// Below [`PARALLEL_MIN_CHUNKS`] surviving chunks the scan runs
    /// sequentially — at that size thread spawn + merge dominates.
    pub fn query_parallel(&self, q: &Query, threads: usize) -> io::Result<(Vec<TraceEvent>, ScanStats)> {
        let (candidates, skipped) = self.candidates(q);
        let threads = threads.clamp(1, candidates.len().max(1));
        if threads <= 1 || candidates.len() < PARALLEL_MIN_CHUNKS {
            return self.scan_candidates(&candidates, q, skipped);
        }

        let per_worker = candidates.len().div_ceil(threads);
        let parts: Vec<io::Result<(Vec<TraceEvent>, ScanStats)>> = std::thread::scope(|s| {
            let handles: Vec<_> = candidates
                .chunks(per_worker)
                .map(|slice| {
                    s.spawn(move || {
                        let mut stats = ScanStats::default();
                        let mut scratch = DecodeScratch::default();
                        let mut out = Vec::new();
                        for &idx in slice {
                            self.scan_chunk(idx, q, &mut scratch, &mut out, &mut stats)?;
                        }
                        Ok((out, stats))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
        });

        let mut stats = ScanStats { chunks_skipped: skipped, ..Default::default() };
        let mut out = Vec::new();
        for part in parts {
            let (events, p) = part?;
            out.extend(events);
            stats.events_matched += p.events_matched;
            stats.events_scanned += p.events_scanned;
            stats.chunks_decoded += p.chunks_decoded;
            stats.chunks_cached += p.chunks_cached;
        }
        Ok((out, stats))
    }

    /// Run several queries in **one pass** over the store: a chunk is
    /// pruned only when *no* query's predicate can match it, decoded
    /// at most once, and its events routed to every query whose
    /// predicate they satisfy. Per-query results keep stored (trace)
    /// order. The shared [`ScanStats`] counts each surviving chunk's
    /// decode and scan once (`events_matched` sums across queries).
    pub fn query_multi(&self, qs: &[Query]) -> io::Result<(Vec<Vec<TraceEvent>>, ScanStats)> {
        let mut stats = ScanStats::default();
        let mut outs: Vec<Vec<TraceEvent>> = qs.iter().map(|_| Vec::new()).collect();
        if qs.is_empty() {
            stats.chunks_skipped = self.metas.len() as u64;
            return Ok((outs, stats));
        }
        let mut scratch = DecodeScratch::default();
        let mut events = Vec::new();
        for (idx, m) in self.metas.iter().enumerate() {
            if !qs.iter().any(|q| m.may_match(q)) {
                stats.chunks_skipped += 1;
                continue;
            }
            let (data, decoded) = self.chunk_data(idx)?;
            if decoded {
                stats.chunks_decoded += 1;
            } else {
                stats.chunks_cached += 1;
            }
            events.clear();
            match self.format {
                Format::V2 => {
                    scan_events_v2(&data, m.events as usize, None, &mut scratch, &mut events)
                        .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
                }
                Format::V1 => {
                    events = decode_events(&data, m.events as usize)
                        .map_err(|e| bad_data(format!("chunk {idx}: {e}")))?;
                }
            }
            stats.events_scanned += events.len() as u64;
            for e in &events {
                for (q, out) in qs.iter().zip(&mut outs) {
                    if q.matches(e) {
                        stats.events_matched += 1;
                        out.push(e.clone());
                    }
                }
            }
        }
        Ok((outs, stats))
    }

    /// Materialize the whole trace: header plus every event, in
    /// stored order.
    pub fn materialize(&self) -> io::Result<Trace> {
        let (events, _) = self.query(&Query::all())?;
        let mut t = self.header.clone();
        t.events = events;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_store_chunked;
    use mempersp_extrae::query::EventClass;
    use mempersp_extrae::tracer::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp_store_r_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trace_sized(iters: u64) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 4);
        let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
        for i in 0..iters {
            let core = (i % 4) as usize;
            t.enter(core, "R", c, i * 100);
            t.user_event(core, 1, i, i * 100 + 10);
            t.exit(core, "R", c, i * 100 + 50);
        }
        t.finish("reader test")
    }

    fn trace() -> Trace {
        trace_sized(3000)
    }

    #[test]
    fn materialize_equals_source_trace() {
        let path = tmp("mat.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let back = r.materialize().unwrap();
        assert_eq!(back.events, t.events);
        assert_eq!(back.meta, t.meta);
        assert_eq!(back.region_names, t.region_names);
        assert_eq!(back.resolution, t.resolution);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn time_window_skips_chunks() {
        let path = tmp("window.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        assert!(r.chunks().len() >= 8, "need many chunks, got {}", r.chunks().len());
        let q = Query::all().in_time(0, 5_000);
        let (events, stats) = r.query(&q).unwrap();
        let expect: Vec<_> = t.events.iter().filter(|e| q.matches(e)).cloned().collect();
        assert_eq!(events, expect);
        assert!(stats.chunks_skipped > 0, "{stats:?}");
        assert!(
            stats.chunks_decoded < r.chunks().len() as u64,
            "decoded {} of {}",
            stats.chunks_decoded,
            r.chunks().len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn requery_hits_cache() {
        let path = tmp("cache.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let q = Query::all().in_time(0, 5_000);
        let (_, cold) = r.query(&q).unwrap();
        assert!(cold.chunks_decoded > 0);
        assert_eq!(cold.chunks_cached, 0);
        let (_, warm) = r.query(&q).unwrap();
        assert_eq!(warm.chunks_decoded, 0, "everything cached: {warm:?}");
        assert_eq!(warm.chunks_cached, cold.chunks_decoded);
        assert_eq!(r.chunks_decoded_total(), cold.chunks_decoded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let path = tmp("par.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let q = Query::all().with_kinds(&[EventClass::User]);
        let (seq, seq_stats) = r.query(&q).unwrap();
        for threads in [2, 3, 8] {
            let (par, par_stats) = r.query_parallel(&q, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_stats.events_matched, seq_stats.events_matched);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_merge_path_covers_many_chunks() {
        // Enough chunks to clear PARALLEL_MIN_CHUNKS so the real
        // fan-out + in-order merge runs (the test above stays under
        // the threshold and exercises the sequential fallback).
        let path = tmp("par_big.mps");
        let t = trace_sized(20_000);
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        let q = Query::all();
        let (candidates, _) = r.candidates(&q);
        assert!(
            candidates.len() >= PARALLEL_MIN_CHUNKS,
            "need ≥{PARALLEL_MIN_CHUNKS} chunks, got {}",
            candidates.len()
        );
        let (seq, seq_stats) = r.query(&q).unwrap();
        assert_eq!(seq.len(), t.events.len());
        for threads in [2, 5] {
            let (par, par_stats) = r.query_parallel(&q, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_stats.events_matched, seq_stats.events_matched);
            assert_eq!(par_stats.events_scanned, seq_stats.events_scanned);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_query_matches_individual_queries_with_one_decode_pass() {
        let path = tmp("multi.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let qs = [
            Query::all().in_time(0, 5_000).with_kinds(&[EventClass::User]),
            Query::all().in_time(100_000, 150_000),
            Query::all().with_kinds(&[EventClass::RegionEnter]),
        ];
        // Individual baselines on a fresh reader (cold cache).
        let r1 = StoreReader::open(&path).unwrap();
        let mut individual = Vec::new();
        let mut decoded_sum = 0u64;
        for q in &qs {
            let (events, s) = r1.query(q).unwrap();
            decoded_sum += s.chunks_decoded;
            individual.push(events);
        }
        let r2 = StoreReader::open(&path).unwrap();
        let (outs, stats) = r2.query_multi(&qs).unwrap();
        assert_eq!(outs, individual);
        assert!(
            stats.chunks_decoded <= decoded_sum,
            "one pass ({}) must not decode more than {} per-query decodes",
            stats.chunks_decoded,
            decoded_sum
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_query_prunes_chunks_no_query_needs() {
        let path = tmp("multi_prune.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        // Two disjoint narrow windows leave most chunks untouched.
        let qs = [Query::all().in_time(0, 2_000), Query::all().in_time(200_000, 202_000)];
        let (outs, stats) = r.query_multi(&qs).unwrap();
        assert!(stats.chunks_skipped > 0, "{stats:?}");
        for (q, out) in qs.iter().zip(&outs) {
            let expect: Vec<_> = t.events.iter().filter(|e| q.matches(e)).cloned().collect();
            assert_eq!(out, &expect);
        }
        // No queries at all: everything skipped, nothing decoded.
        let (empty, s0) = r.query_multi(&[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(s0.chunks_decoded + s0.chunks_cached, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_non_store_files() {
        let path = tmp("bogus.mps");
        std::fs::write(&path, "#MEMPERSP-PRV 1\nMETA 2500 1 0 \"x\"\n").unwrap();
        let err = match StoreReader::open(&path) {
            Ok(_) => panic!("a .prv text file must not open as a store"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("magic") || err.to_string().contains("short"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_truncated_store() {
        let path = tmp("trunc.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();
        assert!(StoreReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_out_of_bounds_chunk_index() {
        // Craft a store, then corrupt the first chunk's offset in the
        // footer index to point past the data region; open must fail
        // with a descriptive error instead of a scan-time panic.
        let path = tmp("oob.mps");
        let t = trace();
        write_store_chunked(&path, &t, 4096).unwrap();
        let r = StoreReader::open(&path).unwrap();
        assert!(!r.chunks().is_empty());
        drop(r);
        let mut bytes = std::fs::read(&path).unwrap();
        let index_off =
            u64::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 8].try_into().unwrap())
                as usize;
        // The index starts with a varint count, then chunk 0's offset
        // varint. Overwrite that offset with a huge 5-byte varint —
        // same length or longer keeps later bytes parseable enough to
        // reach the bounds check.
        let mut pos = index_off;
        crate::varint::get_u64(&bytes, &mut pos).unwrap(); // count
        bytes[pos] = 0xFF; // chunk 0 offset → continuation into garbage
        std::fs::write(&path, &bytes).unwrap();
        let err = match StoreReader::open(&path) {
            Ok(_) => panic!("corrupt index must not open"),
            Err(e) => e,
        };
        assert!(
            err.to_string().contains("chunk") || err.to_string().contains("codec"),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }
}
