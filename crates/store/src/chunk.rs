//! Chunk footer-index entries and predicate pushdown.
//!
//! Every chunk the writer seals gets one [`ChunkMeta`] in the file's
//! footer index: where the payload lives, how it is compressed, and a
//! four-dimensional summary of its contents — time range, core
//! bitmap, event-kind bitmap, and the range of resolved object ids.
//! [`ChunkMeta::may_match`] is the reader's pruning test: it must
//! never reject a chunk containing a matching event (soundness), and
//! the tighter it is, the fewer chunks a selective query decodes.

use crate::crc::crc32c;
use crate::varint::{get_u64, put_u64, CodecError};
use mempersp_extrae::events::{EventPayload, TraceEvent};
use mempersp_extrae::query::{EventClass, KindMask, Query};

/// Payload compression applied to a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compression {
    /// Varint-encoded events, stored as-is.
    Raw,
    /// Varint-encoded events behind the in-tree LZ pass ([`crate::lz`]).
    Lz,
}

impl Compression {
    pub fn code(self) -> u8 {
        match self {
            Compression::Raw => 0,
            Compression::Lz => 1,
        }
    }

    pub fn from_code(code: u8) -> Result<Self, CodecError> {
        match code {
            0 => Ok(Compression::Raw),
            1 => Ok(Compression::Lz),
            other => Err(CodecError { offset: 0, message: format!("unknown compression code {other}") }),
        }
    }
}

/// Sentinel for "this chunk has no object-resolved PEBS sample".
pub const NO_OBJECTS: (u32, u32) = (u32::MAX, 0);

/// Leading magic of a v3 per-chunk frame.
pub const FRAME_MAGIC: &[u8; 4] = b"MPC3";
/// Encoded size of a v3 chunk frame, preceding every chunk payload.
pub const FRAME_LEN: usize = 28;

/// The self-delimiting header written immediately before each chunk
/// payload in format v3. It carries enough to (a) verify the payload
/// against bit-rot (`payload_crc`), (b) verify *itself* against torn
/// writes (`header_crc`), and (c) rebuild a usable [`ChunkMeta`] when
/// the footer index never made it to disk — a forward scan hops
/// frame-to-frame by `FRAME_LEN + stored_len`.
///
/// Layout (all little-endian):
///
/// ```text
/// 0..4   magic "MPC3"
/// 4..8   stored_len   (payload bytes on disk)
/// 8..12  raw_len      (payload bytes after decompression)
/// 12..16 events       (event count in the chunk)
/// 16     compression code
/// 17..20 reserved, zero
/// 20..24 payload_crc  (CRC32C of the stored payload)
/// 24..28 header_crc   (CRC32C of bytes 0..24)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkFrame {
    pub stored_len: u32,
    pub raw_len: u32,
    pub events: u32,
    pub compression: Compression,
    pub payload_crc: u32,
}

impl ChunkFrame {
    pub fn encode(&self) -> [u8; FRAME_LEN] {
        let mut b = [0u8; FRAME_LEN];
        b[0..4].copy_from_slice(FRAME_MAGIC);
        b[4..8].copy_from_slice(&self.stored_len.to_le_bytes());
        b[8..12].copy_from_slice(&self.raw_len.to_le_bytes());
        b[12..16].copy_from_slice(&self.events.to_le_bytes());
        b[16] = self.compression.code();
        b[20..24].copy_from_slice(&self.payload_crc.to_le_bytes());
        let header_crc = crc32c(&b[0..24]);
        b[24..28].copy_from_slice(&header_crc.to_le_bytes());
        b
    }

    /// Decode and validate a frame: magic, self-checksum, compression
    /// code. A frame that passes is authentic with ~2^-32 false-accept
    /// odds, which is what makes forward-scan resynchronization safe.
    pub fn decode(buf: &[u8]) -> Result<ChunkFrame, CodecError> {
        if buf.len() < FRAME_LEN {
            return Err(CodecError { offset: 0, message: "truncated chunk frame".into() });
        }
        if &buf[0..4] != FRAME_MAGIC {
            return Err(CodecError { offset: 0, message: "bad chunk frame magic".into() });
        }
        let want = u32::from_le_bytes(buf[24..28].try_into().unwrap());
        let got = crc32c(&buf[0..24]);
        if want != got {
            return Err(CodecError {
                offset: 24,
                message: format!("chunk frame checksum mismatch (stored {want:#010x}, computed {got:#010x})"),
            });
        }
        let compression = Compression::from_code(buf[16])?;
        Ok(ChunkFrame {
            stored_len: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            raw_len: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            events: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            compression,
            payload_crc: u32::from_le_bytes(buf[20..24].try_into().unwrap()),
        })
    }

    /// A conservative footer-index entry for a chunk recovered from
    /// its frame alone: content summaries are unknown, so every field
    /// is widened to "may contain anything" — [`ChunkMeta::may_match`]
    /// then never false-negatives on salvaged chunks.
    pub fn to_salvaged_meta(self, payload_offset: u64) -> ChunkMeta {
        ChunkMeta {
            offset: payload_offset,
            stored_len: self.stored_len,
            raw_len: self.raw_len,
            compression: self.compression,
            events: self.events,
            first_cycles: 0,
            last_cycles: u64::MAX,
            core_mask: !0,
            kind_mask: KindMask::ALL,
            obj_lo: 0,
            obj_hi: u32::MAX,
        }
    }
}

/// One chunk's entry in the footer index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// File offset of the stored payload.
    pub offset: u64,
    /// Stored (possibly compressed) payload length in bytes.
    pub stored_len: u32,
    /// Raw encoded length (what [`crate::codec::decode_events`] sees).
    pub raw_len: u32,
    pub compression: Compression,
    /// Number of events in the chunk.
    pub events: u32,
    /// Smallest event timestamp in the chunk (cycles).
    pub first_cycles: u64,
    /// Largest event timestamp in the chunk (cycles).
    pub last_cycles: u64,
    /// Bit `min(core, 63)` set for every core appearing in the chunk;
    /// bit 63 therefore means "some core ≥ 63" and is conservative.
    pub core_mask: u64,
    /// Bitmap of the [`EventClass`]es present.
    pub kind_mask: KindMask,
    /// Range of resolved [`ObjectId`]s among PEBS samples;
    /// [`NO_OBJECTS`] when the chunk has none.
    pub obj_lo: u32,
    pub obj_hi: u32,
}

/// The saturating core-bitmap bit of one core id.
pub fn core_bit(core: usize) -> u64 {
    1u64 << core.min(63)
}

impl ChunkMeta {
    /// Summarize a batch of events (payload location filled by the
    /// writer once the bytes are on disk).
    pub fn summarize(events: &[TraceEvent]) -> ChunkMeta {
        let mut m = ChunkMeta {
            offset: 0,
            stored_len: 0,
            raw_len: 0,
            compression: Compression::Raw,
            events: events.len() as u32,
            first_cycles: u64::MAX,
            last_cycles: 0,
            core_mask: 0,
            kind_mask: KindMask::NONE,
            obj_lo: NO_OBJECTS.0,
            obj_hi: NO_OBJECTS.1,
        };
        for e in events {
            m.observe(e);
        }
        m
    }

    /// Fold one event into the summary.
    pub fn observe(&mut self, e: &TraceEvent) {
        self.first_cycles = self.first_cycles.min(e.cycles);
        self.last_cycles = self.last_cycles.max(e.cycles);
        self.core_mask |= core_bit(e.core);
        self.kind_mask.insert(EventClass::of(&e.payload));
        if let EventPayload::Pebs { object: Some(o), .. } = &e.payload {
            self.obj_lo = self.obj_lo.min(o.0);
            self.obj_hi = self.obj_hi.max(o.0);
        }
    }

    /// Can any event in this chunk satisfy `q`? False positives are
    /// allowed (the per-event filter runs after decode); false
    /// negatives would silently drop matching events.
    pub fn may_match(&self, q: &Query) -> bool {
        if self.events == 0 {
            return false;
        }
        if let Some((lo, hi)) = q.time {
            if self.last_cycles < lo || self.first_cycles > hi {
                return false;
            }
        }
        if !self.kind_mask.intersects(q.kinds) {
            return false;
        }
        if let Some(cores) = &q.cores {
            let want: u64 = cores.iter().fold(0, |m, &c| m | core_bit(c));
            if self.core_mask & want == 0 {
                return false;
            }
        }
        if let Some(obj) = q.object {
            // Object queries only ever match PEBS samples with a
            // resolution; a chunk without any can be skipped outright.
            if self.obj_lo == NO_OBJECTS.0 || obj.0 < self.obj_lo || obj.0 > self.obj_hi {
                return false;
            }
        }
        true
    }

    /// Serialize into the footer index.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.offset);
        put_u64(out, self.stored_len as u64);
        put_u64(out, self.raw_len as u64);
        out.push(self.compression.code());
        put_u64(out, self.events as u64);
        put_u64(out, self.first_cycles);
        put_u64(out, self.last_cycles);
        put_u64(out, self.core_mask);
        out.push(self.kind_mask.0);
        put_u64(out, self.obj_lo as u64);
        put_u64(out, self.obj_hi as u64);
    }

    /// Inverse of [`ChunkMeta::encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<ChunkMeta, CodecError> {
        let offset = get_u64(buf, pos)?;
        let stored_len = get_u64(buf, pos)? as u32;
        let raw_len = get_u64(buf, pos)? as u32;
        let comp = *buf
            .get(*pos)
            .ok_or_else(|| CodecError { offset: *pos, message: "truncated compression code".into() })?;
        *pos += 1;
        let compression = Compression::from_code(comp)?;
        let events = get_u64(buf, pos)? as u32;
        let first_cycles = get_u64(buf, pos)?;
        let last_cycles = get_u64(buf, pos)?;
        let core_mask = get_u64(buf, pos)?;
        let kind = *buf
            .get(*pos)
            .ok_or_else(|| CodecError { offset: *pos, message: "truncated kind mask".into() })?;
        *pos += 1;
        Ok(ChunkMeta {
            offset,
            stored_len,
            raw_len,
            compression,
            events,
            first_cycles,
            last_cycles,
            core_mask,
            kind_mask: KindMask(kind),
            obj_lo: get_u64(buf, pos)? as u32,
            obj_hi: get_u64(buf, pos)? as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::events::RegionId;
    use mempersp_extrae::objects::ObjectId;
    use mempersp_pebs::{CounterSnapshot, PebsSample};

    fn enter(cycles: u64, core: usize) -> TraceEvent {
        TraceEvent {
            cycles,
            core,
            payload: EventPayload::RegionEnter {
                region: RegionId(0),
                counters: CounterSnapshot::default(),
            },
        }
    }

    fn pebs(cycles: u64, core: usize, object: Option<u32>) -> TraceEvent {
        TraceEvent {
            cycles,
            core,
            payload: EventPayload::Pebs {
                sample: PebsSample {
                    timestamp: cycles,
                    core,
                    ip: 1,
                    addr: 2,
                    size: 8,
                    is_store: false,
                    latency: 1,
                    source: mempersp_memsim::MemLevel::L1,
                    tlb_miss: false,
                },
                object: object.map(ObjectId),
            },
        }
    }

    #[test]
    fn summary_captures_all_dimensions() {
        let evs = vec![enter(100, 0), pebs(150, 2, Some(5)), pebs(200, 2, Some(9))];
        let m = ChunkMeta::summarize(&evs);
        assert_eq!((m.first_cycles, m.last_cycles), (100, 200));
        assert_eq!(m.core_mask, 0b101);
        assert!(m.kind_mask.contains(EventClass::RegionEnter));
        assert!(m.kind_mask.contains(EventClass::Pebs));
        assert!(!m.kind_mask.contains(EventClass::Free));
        assert_eq!((m.obj_lo, m.obj_hi), (5, 9));
    }

    #[test]
    fn pruning_is_sound_and_selective() {
        let m = ChunkMeta::summarize(&[enter(100, 0), pebs(150, 2, Some(5))]);
        // Time pruning.
        assert!(!m.may_match(&Query::all().in_time(0, 99)));
        assert!(!m.may_match(&Query::all().in_time(151, 300)));
        assert!(m.may_match(&Query::all().in_time(150, 150)));
        // Kind pruning.
        assert!(!m.may_match(&Query::all().with_kinds(&[EventClass::Free])));
        assert!(m.may_match(&Query::all().with_kinds(&[EventClass::Pebs])));
        // Core pruning.
        assert!(!m.may_match(&Query::all().on_cores(&[1, 3])));
        assert!(m.may_match(&Query::all().on_cores(&[2])));
        // Object pruning.
        assert!(!m.may_match(&Query::all().touching_object(ObjectId(4))));
        assert!(!m.may_match(&Query::all().touching_object(ObjectId(6))));
        assert!(m.may_match(&Query::all().touching_object(ObjectId(5))));
    }

    #[test]
    fn chunk_without_objects_skips_object_queries() {
        let m = ChunkMeta::summarize(&[enter(100, 0), pebs(150, 0, None)]);
        assert!(!m.may_match(&Query::all().touching_object(ObjectId(0))));
    }

    #[test]
    fn empty_chunk_never_matches() {
        let m = ChunkMeta::summarize(&[]);
        assert!(!m.may_match(&Query::all()));
    }

    #[test]
    fn saturating_core_bits() {
        let m = ChunkMeta::summarize(&[enter(1, 100)]);
        assert_eq!(m.core_mask, 1u64 << 63);
        assert!(m.may_match(&Query::all().on_cores(&[200])), "≥63 cores alias conservatively");
    }

    #[test]
    fn frame_round_trips_and_rejects_damage() {
        let f = ChunkFrame {
            stored_len: 4096,
            raw_len: 65536,
            events: 1234,
            compression: Compression::Lz,
            payload_crc: 0xDEAD_BEEF,
        };
        let enc = f.encode();
        assert_eq!(ChunkFrame::decode(&enc).unwrap(), f);
        // Any single-byte flip anywhere in the frame is caught.
        for i in 0..FRAME_LEN {
            let mut bad = enc;
            bad[i] ^= 0x40;
            assert!(ChunkFrame::decode(&bad).is_err(), "flip at byte {i} undetected");
        }
        assert!(ChunkFrame::decode(&enc[..FRAME_LEN - 1]).is_err());
    }

    #[test]
    fn salvaged_meta_is_conservative() {
        let f = ChunkFrame {
            stored_len: 10,
            raw_len: 20,
            events: 3,
            compression: Compression::Raw,
            payload_crc: 0,
        };
        let m = f.to_salvaged_meta(99);
        assert_eq!((m.offset, m.stored_len, m.raw_len, m.events), (99, 10, 20, 3));
        // A salvaged meta must never prune: it matches every query shape.
        assert!(m.may_match(&Query::all().in_time(5, 6)));
        assert!(m.may_match(&Query::all().on_cores(&[7])));
        assert!(m.may_match(&Query::all().touching_object(ObjectId(42))));
    }

    #[test]
    fn meta_round_trips_through_index_encoding() {
        let mut m = ChunkMeta::summarize(&[enter(100, 0), pebs(150, 2, Some(5))]);
        m.offset = 123_456;
        m.stored_len = 777;
        m.raw_len = 999;
        m.compression = Compression::Lz;
        let mut buf = Vec::new();
        m.encode(&mut buf);
        let mut pos = 0;
        let back = ChunkMeta::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, m);
        assert_eq!(pos, buf.len());
    }
}
