//! Hostile-input tests for the `.mps` reader: truncations at every
//! byte boundary, random byte flips, and hand-crafted footers with
//! absurd length claims. `StoreReader::open` (and any query on a
//! reader that survived `open`) must return descriptive errors —
//! never panic, and never allocate anywhere near the claimed sizes.

use mempersp_extrae::query::{EventClass, Query};
use mempersp_extrae::tracer::{Tracer, TracerConfig};
use mempersp_pebs::CounterSnapshot;
use mempersp_store::cache::CacheConfig;
use mempersp_store::chunk::{ChunkMeta, Compression};
use mempersp_store::reader::RecoveryMode;
use mempersp_store::writer::write_store_chunked;
use mempersp_store::{ShardedReader, StoreReader};
use proptest::prelude::*;

fn trace(n: u64) -> mempersp_extrae::tracer::Trace {
    let mut t = Tracer::new(TracerConfig::default(), 2);
    let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
    for i in 0..n {
        t.enter((i % 2) as usize, "R", c, i * 10);
        t.exit((i % 2) as usize, "R", c, i * 10 + 5);
    }
    t.finish("corruption test")
}

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mempersp_store_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A valid multi-chunk store file's bytes, built once per test.
fn valid_store_bytes_v3() -> Vec<u8> {
    let path = tmpdir().join("valid_v3.mps");
    mempersp_store::write_store_v3(&path, &trace(400), 1024).expect("write v3");
    std::fs::read(&path).expect("read back")
}

fn valid_store_bytes() -> Vec<u8> {
    let path = tmpdir().join(format!("valid_{:?}.mps", std::thread::current().id()));
    write_store_chunked(&path, &trace(400), 1024).expect("write");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

fn open_bytes(name: &str, bytes: &[u8]) -> std::io::Result<StoreReader> {
    let path = tmpdir().join(name);
    std::fs::write(&path, bytes).unwrap();
    let r = StoreReader::open(&path);
    std::fs::remove_file(&path).ok();
    r
}

/// Every proper prefix of a store file must fail `open` with a
/// descriptive error — the trailer is the last thing written, so a
/// truncated file is by construction unsealed. This sweeps *every*
/// byte boundary, which subsumes the interesting ones (mid-chunk,
/// mid-header, mid-index, mid-trailer).
#[test]
fn open_rejects_truncation_at_every_byte() {
    let bytes = valid_store_bytes();
    assert!(bytes.len() > 1000, "want a multi-chunk file, got {} bytes", bytes.len());
    for len in 0..bytes.len() {
        let err = match open_bytes("trunc.mps", &bytes[..len]) {
            Ok(_) => panic!("open accepted a {len}-of-{} byte prefix", bytes.len()),
            Err(e) => e,
        };
        assert!(!err.to_string().is_empty(), "error at prefix {len} must describe itself");
    }
    // ... and the untruncated file still opens.
    open_bytes("trunc.mps", &bytes).expect("full file opens");
}

/// A footer that claims a gigantic raw chunk payload must be rejected
/// at `open` — long before anything tries to allocate it.
#[test]
fn open_rejects_absurd_chunk_raw_len() {
    let mut meta = ChunkMeta::summarize(&[]);
    meta.offset = 8;
    meta.stored_len = 4;
    meta.raw_len = u32::MAX; // 4 GiB claim in a 100-byte file
    meta.compression = Compression::Lz;
    meta.events = 10;
    let err = match open_crafted(meta, 0) {
        Ok(_) => panic!("must reject"),
        Err(e) => e,
    };
    let msg = err.to_string();
    assert!(msg.contains("raw payload"), "undescriptive error: {msg}");
}

/// Same for a header blob length claim.
#[test]
fn open_rejects_absurd_header_len() {
    let mut meta = ChunkMeta::summarize(&[]);
    meta.offset = 8;
    meta.stored_len = 4;
    meta.raw_len = 4;
    meta.events = 1;
    let err = match open_crafted(meta, 1 << 40) {
        Ok(_) => panic!("must reject"),
        Err(e) => e,
    };
    let msg = err.to_string();
    assert!(msg.contains("header blob"), "undescriptive error: {msg}");
}

/// Build a file with the v2 magic, 4 bytes of junk chunk payload, an
/// empty header, one crafted [`ChunkMeta`], and a well-formed trailer.
fn open_crafted(meta: ChunkMeta, header_raw_len: u64) -> std::io::Result<StoreReader> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"MPSTORE2");
    bytes.extend_from_slice(&[0xAA; 4]); // the "chunk" payload
    let header_off = bytes.len() as u64;
    bytes.push(0); // raw header compression code
    let index_off = bytes.len() as u64;
    let mut index = Vec::new();
    mempersp_store::varint::put_u64(&mut index, 1); // one chunk
    meta.encode(&mut index);
    mempersp_store::varint::put_u64(&mut index, header_off);
    mempersp_store::varint::put_u64(&mut index, header_raw_len);
    mempersp_store::varint::put_u64(&mut index, 0); // stored header len
    bytes.extend_from_slice(&index);
    bytes.extend_from_slice(&index_off.to_le_bytes());
    bytes.extend_from_slice(b"MPSEND01");
    open_bytes("crafted.mps", &bytes)
}

/// Build a fresh 3-shard store directory for a hostile-input test.
fn sharded_store(name: &str, iters: u64) -> (std::path::PathBuf, mempersp_extrae::tracer::Trace) {
    let dir = tmpdir().join(format!("{name}_{:?}.mps.d", std::thread::current().id()));
    std::fs::remove_dir_all(&dir).ok();
    let t = trace(iters);
    let per_shard = (t.events.len() as u64).div_ceil(3);
    mempersp_store::write_store_sharded(&dir, &t, 1024, 1, per_shard).expect("write sharded");
    (dir, t)
}

/// A flipped payload byte in one shard: a strict query must error
/// descriptively; a salvage query must skip exactly the damaged chunk
/// and keep every other shard's events, naming the culprit shard.
#[test]
fn sharded_flip_one_shard_strict_errors_salvage_recovers_rest() {
    let (dir, t) = sharded_store("flip1", 600);
    let victim = dir.join("shard-0001.mps");
    let lost = StoreReader::open(&victim).unwrap().chunks()[0].events as usize;
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = 8 + mempersp_store::FRAME_LEN + 3; // inside chunk 0's payload
    bytes[at] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();

    let strict = ShardedReader::open(&dir).expect("strict open is lazy about payloads");
    let err = match strict.query(&Query::all()) {
        Ok(_) => panic!("strict query must refuse a corrupt chunk"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(!err.to_string().is_empty());

    let salvage =
        ShardedReader::open_with_mode(&dir, CacheConfig::default(), RecoveryMode::Salvage).unwrap();
    let (events, stats) = salvage.query(&Query::all()).unwrap();
    assert_eq!(stats.chunks_damaged, 1);
    assert_eq!(events.len(), t.events.len() - lost, "salvage must lose exactly one chunk");
    let report = salvage.damage_report();
    assert!(report.iter().any(|d| d.contains("shard-0001")), "{report:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A deleted shard: strict open names the missing file; salvage opens
/// the survivors and returns their events (a prefix + a suffix of the
/// original stream).
#[test]
fn sharded_deleted_shard_strict_errors_salvage_keeps_survivors() {
    let (dir, t) = sharded_store("del1", 600);
    let survivors: u64 = ["shard-0000.mps", "shard-0002.mps"]
        .iter()
        .map(|n| StoreReader::open(&dir.join(n)).unwrap().num_events())
        .sum();
    std::fs::remove_file(dir.join("shard-0001.mps")).unwrap();

    let err = match ShardedReader::open(&dir) {
        Ok(_) => panic!("strict open must fail on a missing shard"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("shard-0001"), "undescriptive: {err}");

    let salvage =
        ShardedReader::open_with_mode(&dir, CacheConfig::default(), RecoveryMode::Salvage).unwrap();
    let (events, _) = salvage.query(&Query::all()).unwrap();
    assert_eq!(events.len() as u64, survivors);
    let head = StoreReader::open(&dir.join("shard-0000.mps")).unwrap().num_events() as usize;
    assert_eq!(events[..head], t.events[..head], "surviving prefix must be intact");
    assert_eq!(
        events[head..],
        t.events[t.events.len() - (events.len() - head)..],
        "surviving suffix must be intact"
    );
    assert!(salvage.damage_report().iter().any(|d| d.contains("shard-0001")));
    std::fs::remove_dir_all(&dir).ok();
}

/// A manifest that lies about a shard's event count: strict open
/// refuses; salvage notes the mismatch and still serves every event.
#[test]
fn sharded_manifest_mismatch_strict_errors_salvage_notes_it() {
    let (dir, t) = sharded_store("lie1", 600);
    let manifest_path = dir.join(mempersp_store::shard::MANIFEST_NAME);
    let manifest = std::fs::read_to_string(&manifest_path).unwrap();
    let doctored: String = manifest
        .lines()
        .map(|l| {
            if l.starts_with("shard-0001") {
                "shard-0001.mps 999999\n".to_string()
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    std::fs::write(&manifest_path, doctored).unwrap();

    let err = match ShardedReader::open(&dir) {
        Ok(_) => panic!("strict open must fail on a manifest mismatch"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("manifest says"), "undescriptive: {err}");

    let salvage =
        ShardedReader::open_with_mode(&dir, CacheConfig::default(), RecoveryMode::Salvage).unwrap();
    let (events, _) = salvage.query(&Query::all()).unwrap();
    assert_eq!(events, t.events, "a lying manifest must not cost any data");
    assert!(salvage.damage_report().iter().any(|d| d.contains("manifest says")));
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// Arbitrary byte flips anywhere in the file: `open` may succeed
    /// or fail, but neither it nor a subsequent full query / scan may
    /// panic, and errors must carry a message.
    #[test]
    fn byte_flips_never_panic(
        flips in prop::collection::vec((0usize..usize::MAX, 1u8..=255), 1..8),
        case in any::<u64>(),
    ) {
        let mut bytes = valid_store_bytes();
        for (pos, xor) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= xor;
        }
        match open_bytes(&format!("flip_{case}.mps"), &bytes) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(reader) => {
                // The flip may have landed in a payload: decoding must
                // surface it as Err, never as a panic.
                let q = Query::all().with_kinds(&[EventClass::RegionEnter]);
                let _ = reader.query(&q);
                let _ = reader.query_parallel(&Query::all(), 4);
                let _ = reader.materialize();
            }
        }
    }

    /// The same flip sweep over a v3 (LEB128) store: the default
    /// writer moved to v4, so the legacy decode path keeps its own
    /// corruption coverage.
    #[test]
    fn byte_flips_never_panic_v3(
        flips in prop::collection::vec((0usize..usize::MAX, 1u8..=255), 1..8),
        case in any::<u64>(),
    ) {
        let mut bytes = valid_store_bytes_v3();
        for (pos, xor) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= xor;
        }
        match open_bytes(&format!("flip_v3_{case}.mps"), &bytes) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(reader) => {
                let q = Query::all().with_kinds(&[EventClass::RegionEnter]);
                let _ = reader.query(&q);
                let _ = reader.query_parallel(&Query::all(), 4);
                let _ = reader.materialize();
            }
        }
    }

    /// Truncation combined with a flip — the unsealed-file error path
    /// must hold whatever the flipped byte was.
    #[test]
    fn truncate_then_flip_never_panics(
        cut in 0usize..usize::MAX,
        flip in (0usize..usize::MAX, 1u8..=255),
        case in any::<u64>(),
    ) {
        let mut bytes = valid_store_bytes();
        bytes.truncate(cut % bytes.len());
        if !bytes.is_empty() {
            let len = bytes.len();
            bytes[flip.0 % len] ^= flip.1;
        }
        if let Ok(reader) = open_bytes(&format!("cutflip_{case}.mps"), &bytes) {
            let _ = reader.materialize();
        }
    }
}
