//! Property-based tests for the trace store: the chunk codec, the LZ
//! pass, and the query path against a linear filter oracle.

use mempersp_extrae::events::{EventPayload, RegionId, TraceEvent};
use mempersp_extrae::objects::ObjectId;
use mempersp_extrae::query::{EventClass, Query};
use mempersp_extrae::source::Ip;
use mempersp_memsim::MemLevel;
use mempersp_pebs::{CounterSnapshot, PebsSample};
use mempersp_store::codec::{decode_events, encode_events};
use mempersp_store::codec_v4::{decode_events_v4, encode_events_v4};
use mempersp_store::lz;
use mempersp_store::svb::{encode_column, unzigzag, SvbColumn};
use mempersp_store::writer::write_store_chunked;
use mempersp_store::{detected_simd_level, SimdLevel, StoreReader};
use proptest::prelude::*;

fn arb_level() -> impl Strategy<Value = MemLevel> {
    (0u8..4).prop_map(|c| match c {
        0 => MemLevel::L1,
        1 => MemLevel::L2,
        2 => MemLevel::L3,
        _ => MemLevel::Dram,
    })
}

fn arb_counters() -> impl Strategy<Value = CounterSnapshot> {
    prop::collection::vec(0u64..1 << 45, 12..13).prop_map(|v| {
        let mut vals = [0u64; 12];
        vals.copy_from_slice(&v);
        CounterSnapshot::from_values(vals)
    })
}

/// One arbitrary event of any payload kind. The PEBS envelope
/// invariant (`sample.timestamp == cycles`, `sample.core == core`) is
/// maintained, exactly as the tracer maintains it.
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    let env = || (0u64..1 << 48, 0usize..128);
    prop_oneof![
        (env(), 0u32..100, arb_counters(), any::<bool>()).prop_map(|((cycles, core), r, c, en)| {
            TraceEvent {
                cycles,
                core,
                payload: if en {
                    EventPayload::RegionEnter { region: RegionId(r), counters: c }
                } else {
                    EventPayload::RegionExit { region: RegionId(r), counters: c }
                },
            }
        }),
        (env(), any::<u64>(), arb_counters(), prop::collection::vec(0u32..100, 0..6)).prop_map(
            |((cycles, core), ip, c, stack)| TraceEvent {
                cycles,
                core,
                payload: EventPayload::CounterSample {
                    ip: Ip(ip),
                    counters: c,
                    stack: stack.into_iter().map(RegionId).collect(),
                },
            }
        ),
        (
            env(),
            (any::<u64>(), any::<u64>(), 1u32..512),
            (any::<bool>(), 0u32..2000, arb_level(), any::<bool>()),
            (any::<bool>(), 0u32..50),
        )
            .prop_map(
                |((cycles, core), (ip, addr, size), (is_store, latency, source, tlb), (has_obj, obj))| {
                    TraceEvent {
                        cycles,
                        core,
                        payload: EventPayload::Pebs {
                            sample: PebsSample {
                                timestamp: cycles,
                                core,
                                ip,
                                addr,
                                size,
                                is_store,
                                latency,
                                source,
                                tlb_miss: tlb,
                            },
                            object: has_obj.then_some(ObjectId(obj)),
                        },
                    }
                }
            ),
        (env(), any::<u64>(), 1u64..1 << 30, any::<u64>()).prop_map(
            |((cycles, core), base, size, cs)| TraceEvent {
                cycles,
                core,
                payload: EventPayload::Alloc { base, size, callsite: Ip(cs) },
            }
        ),
        (env(), any::<u64>()).prop_map(|((cycles, core), base)| TraceEvent {
            cycles,
            core,
            payload: EventPayload::Free { base },
        }),
        (env(), 0usize..12, "[ -~]{0,24}").prop_map(|((cycles, core), idx, label)| TraceEvent {
            cycles,
            core,
            payload: EventPayload::MuxSwitch { event_index: idx, label },
        }),
        (env(), any::<u32>(), any::<u64>()).prop_map(|((cycles, core), kind, value)| TraceEvent {
            cycles,
            core,
            payload: EventPayload::User { kind, value },
        }),
    ]
}

/// A non-empty subset of the event classes, driven by a bitmask.
fn kinds_from_mask(mask: u8) -> Vec<EventClass> {
    let picked: Vec<EventClass> =
        EventClass::ALL.iter().copied().filter(|k| mask & k.bit() != 0).collect();
    if picked.is_empty() {
        EventClass::ALL.to_vec()
    } else {
        picked
    }
}

/// One arbitrary column value biased so every stream-vbyte width
/// class (1/2/4/8 data bytes) and both extremes show up often.
fn arb_col_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(u64::MAX),
        0u64..=0xFF,
        0x100u64..=0xFFFF,
        0x1_0000u64..=0xFFFF_FFFF,
        0x1_0000_0000u64..=u64::MAX,
    ]
}

/// The SIMD kernels this host can actually run (hardware detection,
/// ignoring the `MEMPERSP_NO_SIMD` override).
fn runnable_levels() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Scalar];
    if detected_simd_level() != SimdLevel::Scalar {
        levels.push(SimdLevel::Ssse3);
    }
    if detected_simd_level() == SimdLevel::Avx2 {
        levels.push(SimdLevel::Avx2);
    }
    levels
}

fn tmp(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mempersp_store_pt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{case}.mps"))
}

proptest! {
    /// `decode(encode(chunk)) == chunk` for arbitrary event mixes —
    /// every payload kind, out-of-order timestamps, high core ids.
    #[test]
    fn codec_round_trips(events in prop::collection::vec(arb_event(), 0..200)) {
        let buf = encode_events(&events);
        let back = decode_events(&buf, events.len()).expect("decode");
        prop_assert_eq!(back, events);
    }

    /// The v4 stream-vbyte codec round-trips the same arbitrary
    /// mixes: every payload kind, out-of-order timestamps (negative
    /// deltas), full-width values.
    #[test]
    fn v4_codec_round_trips(events in prop::collection::vec(arb_event(), 0..200)) {
        let buf = encode_events_v4(&events);
        let back = decode_events_v4(&buf, events.len()).expect("decode v4");
        prop_assert_eq!(back, events);
    }

    /// Every stream-vbyte kernel this host can run decodes random
    /// columns byte-identically to the scalar reference — including
    /// max-width values, empty columns, and lengths that leave 1–3
    /// values in the tail group or cross the 32-value SIMD block
    /// boundary.
    #[test]
    fn svb_kernels_agree_with_scalar(
        vals in prop::collection::vec(arb_col_value(), 0..150),
    ) {
        let stream = encode_column(&vals);
        let mut pos = 0usize;
        let col = SvbColumn::parse(&stream, &mut pos, vals.len()).expect("parse");
        prop_assert_eq!(pos, stream.len(), "parse must consume the whole stream");
        let mut scalar = Vec::new();
        col.decode_into_with(SimdLevel::Scalar, &mut scalar);
        prop_assert_eq!(&scalar, &vals);
        for level in runnable_levels() {
            let mut out = Vec::new();
            col.decode_into_with(level, &mut out);
            prop_assert_eq!(&out, &scalar, "kernel {:?} diverged", level);
        }
    }

    /// The fused zigzag-undo + prefix-sum kernel equals the obvious
    /// scalar fold, for arbitrary signed deltas and starting value.
    #[test]
    fn svb_zigzag_prefix_matches_scalar_fold(
        zz in prop::collection::vec(arb_col_value(), 0..150),
        prev in any::<u64>(),
    ) {
        let stream = encode_column(&zz);
        let mut pos = 0usize;
        let col = SvbColumn::parse(&stream, &mut pos, zz.len()).expect("parse");
        let mut got = Vec::new();
        col.decode_zigzag_prefix_into(prev, &mut got);
        let mut acc = prev;
        let want: Vec<u64> = zz
            .iter()
            .map(|&z| {
                acc = acc.wrapping_add(unzigzag(z));
                acc
            })
            .collect();
        prop_assert_eq!(got, want);
    }

    /// The LZ pass is lossless on arbitrary bytes.
    #[test]
    fn lz_round_trips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let packed = lz::compress(&data);
        let back = lz::decompress(&packed, data.len()).expect("decompress");
        prop_assert_eq!(back, data);
    }

    /// ... and on highly repetitive input, where matches (including
    /// overlapping RLE-style ones) actually fire and must shrink it.
    #[test]
    fn lz_round_trips_and_shrinks_repetitive(
        unit in prop::collection::vec(any::<u8>(), 1..16),
        reps in 64usize..256,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let packed = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&packed, data.len()).expect("decompress"), data.clone());
        prop_assert!(packed.len() < data.len(), "{} !< {}", packed.len(), data.len());
    }

    /// The decoder never panics on garbage — it returns an error.
    #[test]
    fn decoder_never_panics_on_garbage(
        data in prop::collection::vec(any::<u8>(), 0..512),
        count in 0usize..64,
    ) {
        let _ = decode_events(&data, count);
    }

    /// A store query equals the linear filter over the original
    /// events, for arbitrary traces and arbitrary predicates.
    #[test]
    fn query_equals_linear_filter(
        events in prop::collection::vec(arb_event(), 1..300),
        window in (any::<bool>(), 0u64..1 << 48, 0u64..1 << 16),
        kind_mask in any::<u8>(),
        cores in (any::<bool>(), prop::collection::vec(0usize..128, 1..4)),
        case in any::<u64>(),
    ) {
        let mut trace = mempersp_extrae::Tracer::new(Default::default(), 1).finish("pt");
        trace.events = events.clone();

        let path = tmp("oracle", case);
        write_store_chunked(&path, &trace, 1024).expect("write");
        let reader = StoreReader::open(&path).expect("open");

        let mut q = Query::all().with_kinds(&kinds_from_mask(kind_mask));
        if window.0 {
            q = q.in_time(window.1, window.1.saturating_add(window.2));
        }
        if cores.0 {
            q = q.on_cores(&cores.1);
        }

        let (got, stats) = reader.query(&q).expect("query");
        let want: Vec<TraceEvent> = events.iter().filter(|e| q.matches(e)).cloned().collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(stats.events_matched as usize, want.len());

        // Parallel scan returns the identical answer.
        let (par, _) = reader.query_parallel(&q, 4).expect("parallel query");
        prop_assert_eq!(par, want);

        std::fs::remove_file(&path).ok();
    }
}
