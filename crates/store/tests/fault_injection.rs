//! Deterministic IO fault injection against the production write
//! path, driving the tentpole durability invariant end to end:
//!
//! > For every injection point, `finish` either returns `Err` with no
//! > file at the final path, or `recover` salvages a store whose
//! > events are exactly a prefix of the ground truth.
//!
//! A [`FailingFile`] slides under a real [`StoreWriter`] via
//! `with_backend`, so these sweeps exercise the exact same code the
//! CLI runs — not a test double of it. Because the writer's byte
//! stream is deterministic (same chunking, same compression, in-order
//! commit), a write torn at byte `k` leaves a temp file equal to the
//! first `k` bytes of the clean file, which is what makes the
//! exact-prefix oracle checkable at all.

use mempersp_extrae::tracer::{Trace, Tracer, TracerConfig};
use mempersp_pebs::CounterSnapshot;
use mempersp_store::writer::{tmp_path, write_store_chunked};
use mempersp_store::{
    recover_store, FailingFile, FaultConfig, FaultPlan, StoreReader, StoreWriter,
};
use proptest::prelude::*;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const CHUNK_TARGET: usize = 1024;

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mempersp_faultinj_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn trace(iters: u64) -> Trace {
    let mut t = Tracer::new(TracerConfig::default(), 2);
    let c = CounterSnapshot::from_values([9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2]);
    for i in 0..iters {
        let core = (i % 2) as usize;
        t.enter(core, "R", c, i * 100);
        t.user_event(core, 1, i, i * 100 + 10);
        t.exit(core, "R", c, i * 100 + 50);
    }
    t.finish("fault injection ground truth")
}

/// One attempt to write `tr` through a file with the given failure
/// schedule. Returns the `finish` outcome, the kept temp path when the
/// write failed (`abandon`, i.e. what a `kill -9` leaves), and the
/// observed fault plan.
fn attempt(
    dest: &Path,
    config: FaultConfig,
    tr: &Trace,
    threads: usize,
) -> (io::Result<()>, Option<PathBuf>, Arc<FaultPlan>) {
    let tmp = tmp_path(dest);
    let plan = FaultPlan::new(config);
    let file = std::fs::File::create(&tmp).unwrap();
    let backend = FailingFile::new(file, Arc::clone(&plan));
    let mut w = match StoreWriter::with_backend(
        Box::new(backend),
        tmp,
        dest.to_path_buf(),
        CHUNK_TARGET,
        threads,
        threads * 2,
    ) {
        Ok(w) => w,
        Err(e) => return (Err(e), None, plan),
    };
    let mut failed = None;
    for ev in &tr.events {
        if let Err(e) = w.append(ev) {
            failed = Some(e);
            break;
        }
    }
    match failed {
        None => match w.finish(tr) {
            Ok(_) => (Ok(()), None, plan),
            Err(e) => (Err(e), w.abandon(), plan),
        },
        Some(e) => (Err(e), w.abandon(), plan),
    }
}

/// The clean run's bytes plus the call counts a fault-free write
/// needs — the coordinates the sweeps below inject at.
struct Baseline {
    bytes: Vec<u8>,
    writes: u64,
    syncs: u64,
}

fn baseline(tr: &Trace, threads: usize) -> Baseline {
    let dest = tmpdir().join(format!("baseline_t{threads}_{:?}.mps", std::thread::current().id()));
    let (res, kept, plan) = attempt(&dest, FaultConfig::default(), tr, threads);
    res.expect("fault-free write must succeed");
    assert!(kept.is_none());
    assert!(!plan.tripped());
    let bytes = std::fs::read(&dest).expect("clean store exists at the final path");
    std::fs::remove_file(&dest).ok();
    Baseline { bytes, writes: plan.writes(), syncs: plan.syncs() }
}

/// Events of all chunks whose last byte is at or before `cut` — the
/// exact event count a salvage of `clean[..cut]` must produce.
fn expected_prefix_events(clean_path: &Path, cut: u64) -> u64 {
    let r = StoreReader::open(clean_path).unwrap();
    r.chunks()
        .iter()
        .filter(|m| m.offset + m.stored_len as u64 <= cut)
        .map(|m| m.events as u64)
        .sum()
}

/// The core invariant, checked after every injected failure:
/// - nothing sits at the final path (atomicity), and
/// - if the torn temp is salvageable, `recover` yields an *exact*
///   prefix of the ground-truth events.
fn assert_crash_invariant(
    dest: &Path,
    kept_tmp: Option<&Path>,
    tr: &Trace,
    ctx: &str,
) -> Option<u64> {
    assert!(!dest.exists(), "{ctx}: a failed finish left a file at the final path");
    let torn = kept_tmp?;
    let out = dest.with_extension("recovered.mps");
    std::fs::remove_file(&out).ok();
    let recovered = match recover_store(torn, &out) {
        // A stump too short to carry even one whole chunk may be
        // unsalvageable; that must be a clean error, not a panic.
        Err(e) => {
            assert!(!e.to_string().is_empty(), "{ctx}: undescriptive recover error");
            return None;
        }
        Ok(r) => r,
    };
    let back = StoreReader::open(&out).unwrap().materialize().unwrap();
    assert!(
        tr.events.starts_with(&back.events),
        "{ctx}: recovered {} events are not a prefix of the {} ground-truth events",
        back.events.len(),
        tr.events.len()
    );
    assert_eq!(recovered.events, back.events.len() as u64, "{ctx}: report miscounts");
    std::fs::remove_file(&out).ok();
    Some(recovered.events)
}

/// ENOSPC-style persistent failure at every write call a clean run
/// performs: `finish` must error, the final path must stay empty, and
/// the abandoned temp must salvage to an exact event prefix.
#[test]
fn every_write_call_failure_is_atomic_and_salvageable() {
    // Big enough that the writer's BufWriter flushes several times —
    // otherwise the whole store coalesces into two write calls and
    // the sweep has nothing to inject into.
    let tr = trace(3000);
    let base = baseline(&tr, 1);
    assert!(base.writes >= 4, "want several write calls, saw {}", base.writes);
    for n in 0..base.writes {
        let dest = tmpdir().join(format!("failw_{n}.mps"));
        let cfg = FaultConfig {
            fail_write: Some((n, io::ErrorKind::StorageFull)),
            ..FaultConfig::default()
        };
        let (res, kept, plan) = attempt(&dest, cfg, &tr, 1);
        let ctx = format!("fail_write at call {n}");
        let err = res.expect_err(&ctx);
        assert!(!err.to_string().is_empty(), "{ctx}: undescriptive error");
        assert!(plan.tripped(), "{ctx}: fault never fired");
        assert_crash_invariant(&dest, kept.as_deref(), &tr, &ctx);
        if let Some(t) = &kept {
            std::fs::remove_file(t).ok();
        }
    }
}

/// Same sweep over every fsync call.
#[test]
fn every_fsync_failure_is_atomic() {
    let tr = trace(400);
    let base = baseline(&tr, 1);
    assert!(base.syncs >= 1, "the writer must fsync before renaming");
    for n in 0..base.syncs {
        let dest = tmpdir().join(format!("fails_{n}.mps"));
        let cfg =
            FaultConfig { fail_sync: Some((n, io::ErrorKind::Other)), ..FaultConfig::default() };
        let (res, kept, plan) = attempt(&dest, cfg, &tr, 1);
        let ctx = format!("fail_sync at call {n}");
        res.expect_err(&ctx);
        assert!(plan.tripped(), "{ctx}: fault never fired");
        // An fsync failure strands a byte-complete temp file, so the
        // salvage must recover *every* chunk.
        let events = assert_crash_invariant(&dest, kept.as_deref(), &tr, &ctx);
        assert_eq!(events, Some(tr.events.len() as u64), "{ctx}: complete temp lost events");
        if let Some(t) = &kept {
            std::fs::remove_file(t).ok();
        }
    }
}

/// Kill-at-byte sweep: tear the write at a spread of offsets including
/// every chunk boundary ±1. The torn temp must be byte-identical to a
/// prefix of the clean file (write determinism), and its salvage must
/// recover exactly the chunks that fit below the cut.
#[test]
fn kill_at_byte_salvages_the_exact_chunk_prefix() {
    let tr = trace(400);
    let base = baseline(&tr, 1);
    let clean_len = base.bytes.len() as u64;
    assert!(clean_len > 2000, "want a multi-chunk file, got {clean_len} bytes");

    // A clean twin on disk to read chunk boundaries from.
    let clean_path = tmpdir().join("kill_clean.mps");
    write_store_chunked(&clean_path, &tr, CHUNK_TARGET).unwrap();
    assert_eq!(std::fs::read(&clean_path).unwrap(), base.bytes, "writer is not deterministic");

    let mut cuts: Vec<u64> = (8..clean_len).step_by(97).collect();
    {
        let r = StoreReader::open(&clean_path).unwrap();
        for m in r.chunks() {
            let end = m.offset + m.stored_len as u64;
            cuts.extend([end - 1, end, end + 1]);
        }
    }
    cuts.retain(|&c| c < clean_len);
    cuts.sort_unstable();
    cuts.dedup();

    for &cut in &cuts {
        let dest = tmpdir().join(format!("kill_{cut}.mps"));
        let cfg = FaultConfig { kill_at_byte: Some(cut), ..FaultConfig::default() };
        let (res, kept, plan) = attempt(&dest, cfg, &tr, 1);
        let ctx = format!("kill at byte {cut} of {clean_len}");
        res.expect_err(&ctx);
        assert!(plan.tripped(), "{ctx}: fault never fired");
        assert!(!dest.exists(), "{ctx}: file at final path");
        if let Some(torn) = &kept {
            // Determinism: the torn temp IS the clean file's prefix.
            assert_eq!(
                std::fs::read(torn).unwrap(),
                &base.bytes[..cut as usize],
                "{ctx}: torn temp diverges from the clean byte stream"
            );
            let got = assert_crash_invariant(&dest, Some(torn), &tr, &ctx);
            if cut >= 8 + mempersp_store::FRAME_LEN as u64 {
                let want = expected_prefix_events(&clean_path, cut);
                assert_eq!(
                    got.unwrap_or(0),
                    want,
                    "{ctx}: salvage must recover exactly the chunks below the cut"
                );
            }
            std::fs::remove_file(torn).ok();
        }
    }
    std::fs::remove_file(&clean_path).ok();
}

/// The pipelined (multi-threaded) writer obeys the same invariant —
/// an error on the committer thread still surfaces, still leaves the
/// final path empty, and still tears at a salvageable prefix.
#[test]
fn pipelined_writer_holds_the_invariant() {
    let tr = trace(3000);
    let base = baseline(&tr, 2);
    let clean_len = base.bytes.len() as u64;
    for cut in [64, clean_len / 3, clean_len / 2, clean_len - 5] {
        let dest = tmpdir().join(format!("pkill_{cut}.mps"));
        let cfg = FaultConfig { kill_at_byte: Some(cut), ..FaultConfig::default() };
        let (res, kept, _) = attempt(&dest, cfg, &tr, 2);
        let ctx = format!("pipelined kill at byte {cut}");
        res.expect_err(&ctx);
        assert_crash_invariant(&dest, kept.as_deref(), &tr, &ctx);
        if let Some(t) = &kept {
            std::fs::remove_file(t).ok();
        }
    }
    for n in [0u64, 1, 3] {
        if n >= base.writes {
            continue;
        }
        let dest = tmpdir().join(format!("pfailw_{n}.mps"));
        let cfg = FaultConfig {
            fail_write: Some((n, io::ErrorKind::StorageFull)),
            ..FaultConfig::default()
        };
        let (res, kept, _) = attempt(&dest, cfg, &tr, 2);
        let ctx = format!("pipelined fail_write at call {n}");
        res.expect_err(&ctx);
        assert_crash_invariant(&dest, kept.as_deref(), &tr, &ctx);
        if let Some(t) = &kept {
            std::fs::remove_file(t).ok();
        }
    }
}

/// A short write is *not* a fault: `write_all` loops, the store comes
/// out byte-identical, and `finish` succeeds.
#[test]
fn short_writes_are_transparent() {
    let tr = trace(400);
    let base = baseline(&tr, 1);
    for n in 0..base.writes.min(6) {
        let dest = tmpdir().join(format!("short_{n}.mps"));
        let cfg = FaultConfig { short_write: Some((n, 3)), ..FaultConfig::default() };
        let (res, kept, plan) = attempt(&dest, cfg, &tr, 1);
        res.unwrap_or_else(|e| panic!("short write at call {n} must not fail finish: {e}"));
        assert!(kept.is_none());
        assert!(!plan.tripped());
        assert_eq!(std::fs::read(&dest).unwrap(), base.bytes, "short write changed the bytes");
        std::fs::remove_file(&dest).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized tentpole sweep: any kill offset, any thread count —
    /// `finish` errors with nothing at the final path, and a
    /// salvageable temp recovers to an exact event prefix.
    #[test]
    fn any_kill_offset_is_atomic_and_prefix_salvageable(
        cut_seed in 0u64..u64::MAX,
        threads in 1usize..=4,
        case in any::<u64>(),
    ) {
        let tr = trace(300);
        let base = baseline(&tr, threads);
        let cut = cut_seed % (base.bytes.len() as u64 - 1);
        let dest = tmpdir().join(format!("prop_{case}.mps"));
        let cfg = FaultConfig { kill_at_byte: Some(cut), ..FaultConfig::default() };
        let (res, kept, _) = attempt(&dest, cfg, &tr, threads);
        let ctx = format!("prop kill at {cut}, {threads} threads");
        prop_assert!(res.is_err(), "{}: finish succeeded past a kill", ctx);
        prop_assert!(!dest.exists(), "{}: file at final path", ctx);
        if let Some(torn) = &kept {
            prop_assert_eq!(
                std::fs::read(torn).unwrap(),
                base.bytes[..cut as usize].to_vec(),
                "{}: torn temp diverges", ctx
            );
            assert_crash_invariant(&dest, Some(torn), &tr, &ctx);
            std::fs::remove_file(torn).ok();
        }
    }
}
