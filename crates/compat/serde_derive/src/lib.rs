//! No-op derive macros standing in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal `serde` facade (see
//! `crates/compat/README.md`). Nothing in the workspace serializes
//! through serde's data model — the trace format and all JSON output
//! are hand-written — so the derives only need to exist, not expand.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
