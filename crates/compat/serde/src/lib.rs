//! Marker-trait stand-in for `serde`, for offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on most public data
//! types as documentation of intent, but nothing actually serializes
//! through serde's data model: trace persistence uses the hand-written
//! Paraver-like format (`mempersp-extrae::trace_format`) and JSON
//! output goes through the vendored `serde_json` facade's `Value`.
//! These traits are blanket-implemented markers so the derives resolve
//! without pulling the real crate from a registry.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
