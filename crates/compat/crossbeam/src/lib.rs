//! Stand-in for the slice of `crossbeam` this workspace uses —
//! `channel::{bounded, Sender, Receiver}` — backed by
//! `std::sync::mpsc::sync_channel`. Vendored because the build
//! environment has no registry access (see `crates/compat/README.md`).
//!
//! Semantics match what the callers rely on: `bounded(cap)` blocks the
//! sender when the buffer is full (backpressure), `Sender` is `Clone`,
//! and `Receiver` iterates until all senders are dropped.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned when the receiving half has disconnected. Like
    /// the real crossbeam, `Debug` elides the payload so it never
    /// requires `T: Debug`.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors if disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    #[derive(Debug)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// A bounded channel with `cap` slots of buffering.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip_and_drain() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (&rx).into_iter().take(50).collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        let rest: Vec<u32> = rx.into_iter().collect();
        assert_eq!(rest, (50..100).collect::<Vec<_>>());
        t.join().unwrap();
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
