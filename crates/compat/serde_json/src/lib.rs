//! A self-contained JSON value type with the small slice of the
//! `serde_json` API this workspace uses: the [`json!`] macro,
//! [`to_string`] / [`to_string_pretty`] over [`Value`], and `&str`
//! indexing. Vendored because the build environment has no registry
//! access (see `crates/compat/README.md`).

use std::fmt;

/// A parsed/constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered, like `serde_json` with `preserve_order`.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer or finite float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I(i64),
    U(u64),
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I(v) => write!(f, "{v}"),
            Number::U(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v as f64),
            Value::Number(Number::U(v)) => Some(*v as f64),
            Value::Number(Number::F(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(v)) => Some(*v),
            Value::Number(Number::I(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Member lookup; `Null` for misses, like `serde_json`'s `get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v),
            Value::Number(Number::U(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}
impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        match self {
            Value::Number(Number::I(v)) => v == other,
            Value::Number(Number::U(v)) => i64::try_from(*v).ok().as_ref() == Some(other),
            _ => false,
        }
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::F(v)) if v == other)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::F(v as f64))
    }
}
macro_rules! from_int {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::$variant(v as $cast)) }
        })*
    };
}
from_int!(i8 => I as i64, i16 => I as i64, i32 => I as i64, i64 => I as i64,
          u8 => U as u64, u16 => U as u64, u32 => U as u64, u64 => U as u64,
          usize => U as u64);

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Serialization error (construction from `Value` cannot fail; the
/// type exists so call sites keep their `Result` handling).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Compact one-line JSON.
pub fn to_string(v: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    Ok(out)
}

/// Two-space-indented JSON, matching `serde_json::to_string_pretty`.
pub fn to_string_pretty(v: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    Ok(out)
}

/// A parse failure with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}
impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Containers deeper than this are rejected rather than risking a
/// stack overflow on adversarial input (the server feeds this parser
/// raw request bodies).
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> std::result::Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> std::result::Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> std::result::Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> std::result::Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn parse_string(&mut self) -> std::result::Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return self.err("invalid low surrogate");
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return self.err("unpaired surrogate");
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return self.err("unpaired surrogate");
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                            continue; // parse_hex4 already advanced past the digits
                        }
                        _ => return self.err("invalid escape sequence"),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return self.err("control character in string"),
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str so the
                    // boundaries are already valid.
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| ParseError { offset: self.pos, message: "invalid UTF-8".into() })?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> std::result::Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(v) => {
                self.pos = end;
                Ok(v)
            }
            None => self.err("invalid \\u escape"),
        }
    }

    fn parse_number(&mut self) -> std::result::Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Number(Number::F(f))),
            _ => Err(ParseError { offset: start, message: format!("invalid number '{text}'") }),
        }
    }

    fn parse_array(&mut self) -> std::result::Result<Value, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> std::result::Result<Value, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a JSON text into a [`Value`].
///
/// Strict where it matters for a service boundary: rejects trailing
/// garbage, unterminated strings, bad escapes, non-finite numbers and
/// pathological nesting, and reports the byte offset of the failure.
pub fn from_str(s: &str) -> std::result::Result<Value, ParseError> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after value");
    }
    Ok(v)
}

/// Construct a [`Value`] from JSON-ish literal syntax.
///
/// Unlike the real `serde_json::json!`, nested containers are not
/// parsed structurally: a nested object or array literal must be its
/// own `json!({...})` / `json!([...])` call (or any expression
/// convertible via `Value::from`, e.g. a `Vec`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::Value::from($val)) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_roundtrips_to_text() {
        let v = json!({
            "a": 1u64,
            "b": json!([true, json!(null)]),
            "c": json!({ "nested": "x\"y" }),
            "d": Option::<bool>::None,
        });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0], json!(true));
        assert!(v["d"].is_null());
        assert!(v["missing"].is_null());
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"a":1,"b":[true,null],"c":{"nested":"x\"y"},"d":null}"#
        );
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\n  \"a\": 1"));
    }

    #[test]
    fn numbers_display() {
        assert_eq!(to_string(&json!(1.5f64)).unwrap(), "1.5");
        assert_eq!(to_string(&json!(-3i64)).unwrap(), "-3");
        assert_eq!(to_string(&json!(u64::MAX)).unwrap(), u64::MAX.to_string());
    }

    #[test]
    fn parse_round_trips_constructed_values() {
        let v = json!({
            "a": 1u64,
            "b": json!([true, json!(null), -7i64, 2.5f64]),
            "c": json!({ "nested": "x\"y\n\t\\z" }),
            "d": "unicode: é ☃",
        });
        let text = to_string(&v).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, v);
        // And the pretty form parses back to the same value.
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), json!(true));
        assert_eq!(from_str("0").unwrap(), json!(0u64));
        assert_eq!(from_str("-12").unwrap().as_i64(), Some(-12));
        assert_eq!(from_str("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(from_str(&u64::MAX.to_string()).unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(from_str(r#""\u00e9""#).unwrap(), json!("é"));
        assert_eq!(from_str(r#""\ud83d\ude00""#).unwrap(), json!("😀"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
            "{\"a\" 1}", "[1] extra", "\"\\q\"", "\"\\ud800\"", "nan", "01x",
        ] {
            let err = from_str(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            assert!(err.to_string().contains("invalid JSON at byte"));
        }
    }

    #[test]
    fn parse_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = from_str(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
    }

    #[test]
    fn accessors() {
        let v = from_str(r#"{"k": 3, "neg": -4, "o": {"x": 1}}"#).unwrap();
        assert_eq!(v["k"].as_i64(), Some(3));
        assert_eq!(v["neg"].as_i64(), Some(-4));
        assert_eq!(v["o"].as_object().map(|m| m.len()), Some(1));
        assert!(v.as_object().is_some());
        assert!(v["k"].as_object().is_none());
    }
}
