//! A self-contained JSON value type with the small slice of the
//! `serde_json` API this workspace uses: the [`json!`] macro,
//! [`to_string`] / [`to_string_pretty`] over [`Value`], and `&str`
//! indexing. Vendored because the build environment has no registry
//! access (see `crates/compat/README.md`).

use std::fmt;

/// A parsed/constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered, like `serde_json` with `preserve_order`.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer or finite float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I(i64),
    U(u64),
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I(v) => write!(f, "{v}"),
            Number::U(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v as f64),
            Value::Number(Number::U(v)) => Some(*v as f64),
            Value::Number(Number::F(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(v)) => Some(*v),
            Value::Number(Number::I(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Member lookup; `Null` for misses, like `serde_json`'s `get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}
impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        match self {
            Value::Number(Number::I(v)) => v == other,
            Value::Number(Number::U(v)) => i64::try_from(*v).ok().as_ref() == Some(other),
            _ => false,
        }
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::F(v)) if v == other)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::F(v as f64))
    }
}
macro_rules! from_int {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::$variant(v as $cast)) }
        })*
    };
}
from_int!(i8 => I as i64, i16 => I as i64, i32 => I as i64, i64 => I as i64,
          u8 => U as u64, u16 => U as u64, u32 => U as u64, u64 => U as u64,
          usize => U as u64);

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Serialization error (construction from `Value` cannot fail; the
/// type exists so call sites keep their `Result` handling).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Compact one-line JSON.
pub fn to_string(v: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    Ok(out)
}

/// Two-space-indented JSON, matching `serde_json::to_string_pretty`.
pub fn to_string_pretty(v: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    Ok(out)
}

/// Construct a [`Value`] from JSON-ish literal syntax.
///
/// Unlike the real `serde_json::json!`, nested containers are not
/// parsed structurally: a nested object or array literal must be its
/// own `json!({...})` / `json!([...])` call (or any expression
/// convertible via `Value::from`, e.g. a `Vec`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::Value::from($val)) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_roundtrips_to_text() {
        let v = json!({
            "a": 1u64,
            "b": json!([true, json!(null)]),
            "c": json!({ "nested": "x\"y" }),
            "d": Option::<bool>::None,
        });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0], json!(true));
        assert!(v["d"].is_null());
        assert!(v["missing"].is_null());
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"a":1,"b":[true,null],"c":{"nested":"x\"y"},"d":null}"#
        );
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\n  \"a\": 1"));
    }

    #[test]
    fn numbers_display() {
        assert_eq!(to_string(&json!(1.5f64)).unwrap(), "1.5");
        assert_eq!(to_string(&json!(-3i64)).unwrap(), "-3");
        assert_eq!(to_string(&json!(u64::MAX)).unwrap(), u64::MAX.to_string());
    }
}
