//! A wall-clock micro-benchmark harness with the subset of the
//! `criterion` API this workspace uses. Vendored because the build
//! environment has no registry access (see `crates/compat/README.md`).
//!
//! It runs each benchmark for a fixed number of timed iterations after
//! a short warmup and prints mean time per iteration (plus element
//! throughput when declared) to stdout. No statistics, no HTML
//! reports — good enough for relative before/after numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work-per-iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; ignored by this harness.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; times the measured section.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Criterion's "number of samples"; reused here as the timed
    /// iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warmup: one untimed pass.
        let mut warm = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);

        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let mut line = format!(
            "{}/{id}: {} per iter ({} iters)",
            self.name,
            fmt_duration(Duration::from_secs_f64(per_iter)),
            b.iters
        );
        if let Some(t) = self.throughput {
            let rate = match t {
                Throughput::Elements(n) => format!("{:.3} Melem/s", n as f64 / per_iter / 1e6),
                Throughput::Bytes(n) => format!("{:.3} MiB/s", n as f64 / per_iter / (1 << 20) as f64),
            };
            line.push_str(&format!(", {rate}"));
        }
        println!("{line}");
        self.criterion.results.push((format!("{}/{id}", self.name), per_iter));
    }

    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    /// `(benchmark id, seconds per iteration)` for everything run.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        self.benchmark_group("bench").bench_function(id.to_string(), &mut f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
                b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|(_, t)| *t >= 0.0));
        assert!(c.results[0].0.starts_with("g/"));
    }
}
