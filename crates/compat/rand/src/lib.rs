//! Deterministic stand-in for the subset of `rand` 0.8 this workspace
//! uses: `StdRng` via `SeedableRng::seed_from_u64`, `Rng` range
//! sampling, and `SliceRandom::shuffle`. Vendored because the build
//! environment has no registry access (see `crates/compat/README.md`).
//!
//! The generator is xorshift64* rather than ChaCha; all in-repo users
//! only require determinism and seed-sensitivity, not a specific
//! stream, and their tests assert exactly that.

/// Core RNG interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching the `rand` trait of the same name.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers.
pub trait Rng: RngCore {
    /// Uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Uniform in `[0, 1)` for `f64`, full-width for integers.
    fn gen<T: Generate>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Generate {
    fn generate<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! generate_int {
    ($($t:ty),*) => {$(
        impl Generate for $t {
            fn generate<R: RngCore>(rng: &mut R) -> $t { rng.next_u64() as $t }
        }
    )*};
}
generate_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Generate for bool {
    fn generate<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Generate for f64 {
    fn generate<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 step so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Self {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling, matching `rand::seq::SliceRandom::shuffle`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
        assert!(va.iter().all(|&x| x < 1000));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..64).collect();
        let mut rng = StdRng::seed_from_u64(7);
        v.shuffle(&mut rng);
        assert_ne!(v, (0..64).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }
}
