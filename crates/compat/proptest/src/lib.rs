//! A deterministic, dependency-free mini property-testing harness with
//! the subset of the `proptest` API this workspace uses. Vendored
//! because the build environment has no registry access (see
//! `crates/compat/README.md`).
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case panics with its case number and the
//!   RNG is deterministic (seeded from the test name), so failures
//!   reproduce exactly on re-run;
//! * `proptest-regressions` files are ignored;
//! * the default case count is 64 (`ProptestConfig::default`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

// ----- RNG ----------------------------------------------------------

/// Deterministic xorshift64* generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the test name), deterministically.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a, then force non-zero.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-case scale.
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ----- Strategy core ------------------------------------------------

/// A value generator. Object-safe so strategies can be boxed and mixed
/// (`prop_oneof!`).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ----- Ranges -------------------------------------------------------

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ----- Tuples -------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ----- any ----------------------------------------------------------

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ----- Collections --------------------------------------------------

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

// ----- String patterns ----------------------------------------------

/// `&str` as a strategy: a minimal pattern language covering the
/// `[class]{m,n}` regex shapes used in this workspace. Characters
/// outside a recognized `[...]{m,n}` pattern are emitted literally.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '[' {
            // Parse the class.
            let mut class = Vec::new();
            let mut j = i + 1;
            while j < chars.len() && chars[j] != ']' {
                let c = if chars[j] == '\\' && j + 1 < chars.len() {
                    j += 1;
                    match chars[j] {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    }
                } else {
                    chars[j]
                };
                // Range `a-b`?
                if j + 2 < chars.len() && chars[j + 1] == '-' && chars[j + 2] != ']' {
                    let hi = chars[j + 2];
                    for v in (c as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            class.push(ch);
                        }
                    }
                    j += 3;
                } else {
                    class.push(c);
                    j += 1;
                }
            }
            // Parse `{m,n}`.
            let (mut lo, mut hi) = (1usize, 1usize);
            let mut k = j + 1;
            if k < chars.len() && chars[k] == '{' {
                let close = chars[k..].iter().position(|&c| c == '}').map(|p| k + p);
                if let Some(close) = close {
                    let body: String = chars[k + 1..close].iter().collect();
                    let mut parts = body.splitn(2, ',');
                    lo = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
                    hi = parts.next().and_then(|s| s.parse().ok()).unwrap_or(lo);
                    k = close + 1;
                }
            }
            if !class.is_empty() && hi >= lo {
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(class[rng.below(class.len() as u64) as usize]);
                }
            }
            i = k;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

// ----- Union (prop_oneof!) ------------------------------------------

/// Uniform choice among boxed strategies.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

// ----- Config + runner ----------------------------------------------

/// Runner configuration (`cases` is the only knob honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Runs one property across `cfg.cases` sampled cases; used by the
/// `proptest!` macro expansion.
pub fn run_cases<F: FnMut(u32)>(name: &str, cfg: &ProptestConfig, mut case: F) {
    let _ = name;
    for i in 0..cfg.cases {
        case(i);
    }
}

/// Debug-print helper for failure messages.
pub fn describe_inputs(pairs: &[(&str, &dyn Debug)]) -> String {
    pairs
        .iter()
        .map(|(n, v)| format!("{n} = {v:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

// ----- Macros -------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let __inputs = $crate::describe_inputs(&[
                        $((stringify!($arg), &$arg as &dyn ::std::fmt::Debug)),*
                    ]);
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }));
                    if let Err(e) = __result {
                        let msg = e.downcast_ref::<String>().map(|s| s.as_str())
                            .or_else(|| e.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!(
                            "proptest {} failed at case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name), __case, cfg.cases, msg, __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

// ----- Prelude ------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
    /// `prop::collection::vec(...)` etc.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuples(v in prop::collection::vec((0u64..100, any::<bool>()), 3..10)) {
            prop_assert!(v.len() >= 3 && v.len() < 10);
            for (n, _) in &v {
                prop_assert!(*n < 100);
            }
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(k == 1 || k == 2);
        }

        #[test]
        fn string_pattern(s in "[ -~]{0,40}") {
            prop_assert!(s.len() <= 40);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_override_runs(_x in 0u8..10) {
            // Just exercising the config path.
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
