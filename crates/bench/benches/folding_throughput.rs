//! Folding-mechanism microbenchmarks: cost of the fold as a function
//! of sample count (the paper's selling point is that *coarse*
//! sampling suffices — the fold itself must stay cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mempersp_extrae::{Tracer, TracerConfig};
use mempersp_folding::{fold_region, FoldingConfig};
use mempersp_pebs::{CounterSnapshot, EventKind};
use std::hint::black_box;

fn trace_with_samples(instances: usize, samples_per: usize) -> mempersp_extrae::Trace {
    let mut t = Tracer::new(TracerConfig::default(), 1);
    let ip = t.location("k.rs", 1, "k");
    let mk = |inst: u64| {
        let mut v = [0u64; EventKind::ALL.len()];
        v[EventKind::Instructions.index()] = inst;
        v[EventKind::Cycles.index()] = inst * 2;
        CounterSnapshot::from_values(v)
    };
    let mut now = 0u64;
    let mut base = 0u64;
    for _ in 0..instances {
        t.enter(0, "R", mk(base), now);
        for s in 1..=samples_per {
            let x = s as f64 / (samples_per + 1) as f64;
            t.record_counter_sample(0, ip, mk(base + (x * 1e6) as u64), now + (x * 10_000.0) as u64);
        }
        t.exit(0, "R", mk(base + 1_000_000), now + 10_000);
        base += 1_000_000;
        now += 10_100;
    }
    t.finish("folding bench")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("folding_throughput");
    for &(instances, samples) in &[(10usize, 10usize), (100, 10), (100, 100), (1000, 100)] {
        let trace = trace_with_samples(instances, samples);
        let total = (instances * samples) as u64;
        g.throughput(Throughput::Elements(total));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{instances}x{samples}")),
            &trace,
            |b, tr| {
                b.iter(|| black_box(fold_region(tr, "R", &FoldingConfig::default()).unwrap()))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
