//! Folding-engine throughput: the single-pass multi-region engine
//! against the per-region rescan loop it replaces, plus an ablation of
//! the pooled-sample data layout (SoA buffers + interned file table vs
//! the old AoS tuples with per-sample `String` clones).
//!
//! Scenarios (all folding every region of one HPCG trace):
//!
//! * `per_region_rescan_mps` — the pre-PR shape: one
//!   `fold_region_source` call per region, each rescanning the `.mps`
//!   store;
//! * `single_pass_threads1` / `single_pass_threads4` — one
//!   `fold_regions_source` call folding all regions from a single
//!   store pass, fold work items on 1 vs 4 worker threads;
//! * `aos_string_pooling` vs `soa_interned_pooling` — pooling only
//!   (instances precomputed, in-memory trace): a faithful replica of
//!   the old per-sample-`String`, tuple-vector pooling against the
//!   current SoA + `FileId`-interning implementation.
//!
//! Writes `BENCH_folding.json` next to the workspace root so the
//! performance trajectory is tracked across PRs.

use mempersp_bench::{cross_thread_speedup, host_cpus, Scale};
use mempersp_core::Machine;
use mempersp_extrae::events::EventPayload;
use mempersp_extrae::Trace;
use mempersp_folding::{
    collect_instances, fold_region_source, fold_regions_source, pool_samples, FoldingConfig,
    InstanceFilter, RegionInstance, RegionRequest,
};
use mempersp_hpcg::HpcgWorkload;
use mempersp_pebs::EventKind;
use mempersp_store::{write_store_chunked, MpsSource};
use std::hint::black_box;
use std::time::Instant;

/// Small chunks so the kind-mask index has pruning opportunities
/// (allocation-, mux- and user-event runs become foldable-free chunks).
const CHUNK_TARGET: usize = 8 * 1024;

struct Measure {
    name: &'static str,
    seconds: f64,
}

/// Run a scenario `n` times and keep the fastest trial — the
/// least-noise estimate of its true cost (interference only ever
/// makes a trial slower, never faster).
fn best_of(n: usize, name: &'static str, mut f: impl FnMut() -> f64) -> Measure {
    let mut best = f();
    for _ in 1..n {
        best = best.min(f());
    }
    Measure { name, seconds: best }
}

/// The pre-PR loop: one full store scan per region.
fn bench_rescan(src: &mut MpsSource, regions: &[String]) -> f64 {
    let cfg = FoldingConfig::default();
    let t = Instant::now();
    let mut folded = 0usize;
    for r in regions {
        if let Ok((f, _)) = fold_region_source(src, r, &cfg) {
            black_box(f.pooled.len());
            folded += 1;
        }
    }
    black_box(folded);
    t.elapsed().as_secs_f64()
}

/// The single-pass engine: every region folded from one store scan.
fn bench_single_pass(src: &mut MpsSource, requests: &[RegionRequest], threads: usize) -> f64 {
    let t = Instant::now();
    let (results, stats) = fold_regions_source(src, requests, threads).expect("store scan");
    black_box(results.iter().filter(|r| r.is_ok()).count());
    black_box(stats.events_scanned);
    t.elapsed().as_secs_f64()
}

/// Faithful replica of the pooling loop this PR replaced: linear
/// instance search per sample, AoS `(f64, f64)` tuple vectors, a
/// freshly cloned `String` file name per resolved sample, and
/// comparison sorts over the cloned data.
mod legacy {
    use super::*;
    use mempersp_memsim::MemLevel;

    // Fields mirror the old layout; the bench only reads `len()`, the
    // stores and sorts over them are the measured work.
    #[allow(dead_code)]
    pub struct AosLinePoint {
        pub x: f64,
        pub ip: u64,
        pub file: Option<String>,
        pub line: Option<u32>,
    }

    #[allow(dead_code)]
    pub struct AosAddrPoint {
        pub x: f64,
        pub addr: u64,
        pub ip: u64,
        pub is_store: bool,
        pub latency: u32,
        pub source: MemLevel,
    }

    #[derive(Default)]
    pub struct AosPooled {
        pub counter_points: Vec<Vec<(f64, f64)>>,
        pub addr_points: Vec<AosAddrPoint>,
        pub line_points: Vec<AosLinePoint>,
    }

    impl AosPooled {
        pub fn len(&self) -> usize {
            self.counter_points.iter().map(Vec::len).sum::<usize>()
                + self.addr_points.len()
                + self.line_points.len()
        }
    }

    fn find_instance(instances: &[RegionInstance], core: usize, cycles: u64) -> Option<usize> {
        instances.iter().position(|i| i.core == core && i.contains(cycles))
    }

    pub fn pool(trace: &Trace, instances: &[RegionInstance]) -> AosPooled {
        let mut out = AosPooled {
            counter_points: vec![Vec::new(); EventKind::ALL.len()],
            ..AosPooled::default()
        };
        let resolve_line = |ip: u64| -> (Option<String>, Option<u32>) {
            match trace.source.resolve(mempersp_extrae::Ip(ip)) {
                Some(loc) => (Some(loc.file.clone()), Some(loc.line)),
                None => (None, None),
            }
        };
        for e in &trace.events {
            match &e.payload {
                EventPayload::CounterSample { ip, counters, .. } => {
                    let Some(idx) = find_instance(instances, e.core, e.cycles) else {
                        continue;
                    };
                    let inst = &instances[idx];
                    let x = inst.normalize(e.cycles);
                    for kind in EventKind::ALL {
                        let c0 = inst.counters_in.get(kind);
                        let c1 = inst.counters_out.get(kind);
                        if c1 <= c0 {
                            continue;
                        }
                        let c = counters.get(kind).clamp(c0, c1);
                        let y = (c - c0) as f64 / (c1 - c0) as f64;
                        out.counter_points[kind.index()].push((x, y));
                    }
                    let (file, line) = resolve_line(ip.0);
                    out.line_points.push(AosLinePoint { x, ip: ip.0, file, line });
                }
                EventPayload::Pebs { sample, .. } => {
                    let Some(idx) = find_instance(instances, sample.core, sample.timestamp)
                    else {
                        continue;
                    };
                    let x = instances[idx].normalize(sample.timestamp);
                    out.addr_points.push(AosAddrPoint {
                        x,
                        addr: sample.addr,
                        ip: sample.ip,
                        is_store: sample.is_store,
                        latency: sample.latency,
                        source: sample.source,
                    });
                    let (file, line) = resolve_line(sample.ip);
                    out.line_points.push(AosLinePoint { x, ip: sample.ip, file, line });
                }
                _ => {}
            }
        }
        for pts in &mut out.counter_points {
            pts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN coordinates"));
        }
        out.addr_points
            .sort_by(|a, b| a.x.partial_cmp(&b.x).expect("no NaN coordinates"));
        out.line_points
            .sort_by(|a, b| a.x.partial_cmp(&b.x).expect("no NaN coordinates"));
        out
    }
}

fn main() {
    let scale = Scale::from_env();
    println!("generating HPCG trace at scale {scale:?}...");
    let mut machine = Machine::new(scale.machine());
    let mut workload = HpcgWorkload::new(scale.hpcg());
    let report = machine.run(&mut workload);
    let trace = report.trace;
    let regions = trace.region_names.clone();
    println!("trace: {} events, {} regions", trace.events.len(), regions.len());

    let path = std::env::temp_dir()
        .join(format!("mempersp_bench_fold_{}.mps", std::process::id()));
    write_store_chunked(&path, &trace, CHUNK_TARGET).expect("write .mps store");
    let mut src = MpsSource::open(&path).expect("open .mps store");

    let requests: Vec<RegionRequest> = regions.iter().map(RegionRequest::new).collect();

    // Instances per region, precomputed so the pooling ablation times
    // pooling alone.
    let kept: Vec<Vec<RegionInstance>> = regions
        .iter()
        .filter_map(|r| trace.region_id(r))
        .map(|id| collect_instances(&trace, id, InstanceFilter::default()).0)
        .collect();

    const TRIALS: usize = 3;
    // Warm up (page in the store, fill the block cache) so the first
    // measured scenario is not penalized; the warm-up run is discarded.
    black_box(bench_rescan(&mut src, &regions));

    let rescan = best_of(TRIALS, "per_region_rescan_mps", || bench_rescan(&mut src, &regions));
    let single1 = best_of(TRIALS, "single_pass_threads1", || {
        bench_single_pass(&mut src, &requests, 1)
    });
    let single4 = best_of(TRIALS, "single_pass_threads4", || {
        bench_single_pass(&mut src, &requests, 4)
    });
    let aos = best_of(TRIALS, "aos_string_pooling", || {
        let t = Instant::now();
        for inst in &kept {
            black_box(legacy::pool(&trace, inst).len());
        }
        t.elapsed().as_secs_f64()
    });
    let soa = best_of(TRIALS, "soa_interned_pooling", || {
        let t = Instant::now();
        for inst in &kept {
            black_box(pool_samples(&trace, inst).len());
        }
        t.elapsed().as_secs_f64()
    });

    // One untimed single-pass run to record the scan statistics (chunk
    // pruning is deterministic; cache hits depend on warmth, so this
    // reports the steady state).
    let (_, stats) = fold_regions_source(&mut src, &requests, 1).expect("store scan");

    let measures = [&rescan, &single1, &single4, &aos, &soa];
    let mut scenarios = Vec::new();
    for m in measures {
        println!("{:<24} {:>9.4}s", m.name, m.seconds);
        scenarios.push(serde_json::json!({
            "name": m.name,
            "seconds": m.seconds,
        }));
    }

    // Headline: single-pass vs rescan at one thread on both sides —
    // valid even on a 1-CPU host, because the win is fewer scans and a
    // leaner pooling loop, not parallelism.
    let single_pass_speedup = rescan.seconds / single1.seconds;
    let pooling_speedup = aos.seconds / soa.seconds;
    let (threads_speedup, threads_skip) =
        cross_thread_speedup(4, 1.0 / single4.seconds, 1.0 / single1.seconds);
    println!("single-pass vs per-region rescan: {single_pass_speedup:.2}x");
    println!("SoA+interned vs AoS+String pool:  {pooling_speedup:.2}x");
    match threads_speedup.as_f64() {
        Some(s) => println!("4 threads vs 1 thread:            {s:.2}x"),
        None => println!(
            "4 threads vs 1 thread:            skipped ({})",
            threads_skip.as_deref().unwrap_or("no reason recorded")
        ),
    }
    println!(
        "scan: {} matched / {} scanned, chunks {} decoded / {} cached / {} skipped",
        stats.events_matched,
        stats.events_scanned,
        stats.chunks_decoded,
        stats.chunks_cached,
        stats.chunks_skipped
    );

    let summary = serde_json::json!({
        "bench": "folding_throughput",
        "scale": format!("{scale:?}"),
        "regions": regions.len(),
        "host_cpus": host_cpus(),
        "host": mempersp_bench::host_info(),
        "scenarios": scenarios,
        "single_pass_scan": serde_json::json!({
            "events_matched": stats.events_matched,
            "events_scanned": stats.events_scanned,
            "chunks_decoded": stats.chunks_decoded,
            "chunks_cached": stats.chunks_cached,
            "chunks_skipped": stats.chunks_skipped,
        }),
        "speedup_single_pass_vs_rescan": single_pass_speedup,
        "speedup_soa_interned_vs_aos_string": pooling_speedup,
        "speedup_threads4_vs_threads1": threads_speedup,
        "speedup_threads4_vs_threads1_skipped_reason": threads_skip,
    });
    // Anchor at the workspace root (cargo runs benches with the
    // package dir as CWD), so the tracked summary has one location.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_folding.json");
    std::fs::write(out, serde_json::to_string_pretty(&summary).expect("serialize"))
        .expect("write BENCH_folding.json");
    println!("wrote {out}");
    std::fs::remove_file(&path).ok();
}
