//! Throughput and latency of the trace-analysis service on a
//! one-million-event generated store ([`mempersp_bench::gentrace`];
//! `MEMPERSP_BENCH_EVENTS` overrides the size).
//!
//! Scenarios (all over real sockets against an in-process server):
//!
//! * `query_cold` — a selective `/v1/query` against a **fresh server
//!   instance** per trial: open + footer read + cold block cache, the
//!   cost a CLI invocation pays every time;
//! * `query_cached` — the same query repeated against one resident
//!   server: shared readers, warm sharded block cache;
//! * `fold_cold` — `/v1/fold` of one region on a fresh server (two
//!   full predicate scans + the fitting pipeline);
//! * `fold_memoized` — the same fold repeated against the resident
//!   server: answered from the fold memo (`X-Memo: hit` asserted),
//!   the response body byte-identical to the cold one.
//!
//! Writes `BENCH_server.json` (req/sec + p50/p99 per scenario, host
//! block). Gates: memoized folds must beat cold folds outright, and
//! the cached query must beat the cold query on any host — both are
//! architecture points of the service, not host-dependent threading
//! effects, so neither is CPU-count-gated.

use mempersp_bench::gentrace::{generate, GenConfig};
use mempersp_bench::host_info;
use mempersp_server::{start, ServerConfig, ServerHandle};
use mempersp_store::write_store_chunked;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// One request over a fresh connection; returns (status, memo header
/// value if any, body length, seconds).
fn timed_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> (u16, Option<String>, usize, f64) {
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let t = Instant::now();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).ok();
    s.write_all(request.as_bytes()).expect("send");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("recv");
    let seconds = t.elapsed().as_secs_f64();
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text.split(' ').nth(1).expect("status line").parse().expect("status");
    let memo = text
        .lines()
        .find(|l| l.to_ascii_lowercase().starts_with("x-memo:"))
        .map(|l| l.split(':').nth(1).unwrap().trim().to_string());
    (status, memo, raw.len(), seconds)
}

struct Scenario {
    name: &'static str,
    latencies: Vec<f64>,
}

impl Scenario {
    fn percentile(&self, p: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    }

    fn req_per_sec(&self) -> f64 {
        self.latencies.len() as f64 / self.latencies.iter().sum::<f64>()
    }

    fn report(&self) -> serde_json::Value {
        serde_json::json!({
            "name": self.name,
            "requests": self.latencies.len(),
            "req_per_sec": self.req_per_sec(),
            "p50_seconds": self.percentile(0.50),
            "p99_seconds": self.percentile(0.99),
        })
    }
}

fn fresh_server(root: &std::path::Path) -> ServerHandle {
    start(&ServerConfig {
        root: root.to_path_buf(),
        addr: "127.0.0.1:0".to_string(),
        max_inflight: 16,
        timeout_ms: 0,
        workers: 2,
        memo_cap: 16,
    })
    .expect("start server")
}

fn stop(handle: ServerHandle) {
    handle.shutdown();
    handle.join();
}

fn main() {
    let events: u64 = std::env::var("MEMPERSP_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let trace = generate(&GenConfig { events, ..GenConfig::default() });
    let dir = std::env::temp_dir().join(format!("mempersp_bench_srv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let summary = write_store_chunked(&dir.join("gen.mps"), &trace, 64 * 1024).expect("write");

    let span = trace.events.last().map(|e| e.cycles).unwrap_or(0);
    let query_body = format!(
        "{{\"trace\":\"gen.mps\",\"query\":{{\"time\":[{},{}],\"kinds\":[\"PEBS\"]}},\"limit\":1000}}",
        span / 2,
        span / 2 + span / 4
    );
    let fold_body = r#"{"trace":"gen.mps","regions":["gen_compute"],"points":16}"#;

    const COLD_TRIALS: usize = 5;
    const WARM_TRIALS: usize = 40;

    // Cold query: a fresh server (fresh readers, empty cache) each time.
    let mut query_cold = Scenario { name: "query_cold", latencies: Vec::new() };
    for _ in 0..COLD_TRIALS {
        let h = fresh_server(&dir);
        let (status, _, _, secs) = timed_request(h.addr(), "POST", "/v1/query", &query_body);
        assert_eq!(status, 200);
        query_cold.latencies.push(secs);
        stop(h);
    }

    // Resident server for every warm scenario.
    let resident = fresh_server(&dir);
    let addr = resident.addr();

    let (status, _, warm_len, _) = timed_request(addr, "POST", "/v1/query", &query_body);
    assert_eq!(status, 200);
    let mut query_cached = Scenario { name: "query_cached", latencies: Vec::new() };
    for _ in 0..WARM_TRIALS {
        let (status, _, len, secs) = timed_request(addr, "POST", "/v1/query", &query_body);
        assert_eq!(status, 200);
        assert_eq!(len, warm_len, "cached answers must not drift");
        query_cached.latencies.push(secs);
    }

    // Cold fold: fresh server (empty memo, cold cache) each time.
    let mut fold_cold = Scenario { name: "fold_cold", latencies: Vec::new() };
    for _ in 0..3 {
        let h = fresh_server(&dir);
        let (status, memo, _, secs) = timed_request(h.addr(), "POST", "/v1/fold", fold_body);
        assert_eq!(status, 200);
        assert_eq!(memo.as_deref(), Some("miss"), "fresh server must compute the fold");
        fold_cold.latencies.push(secs);
        stop(h);
    }

    // Memoized fold on the resident server: first miss primes the
    // memo, then every repeat must be a hit of identical size.
    let (status, memo, _, _) = timed_request(addr, "POST", "/v1/fold", fold_body);
    assert_eq!(status, 200);
    assert_eq!(memo.as_deref(), Some("miss"));
    let mut fold_memoized = Scenario { name: "fold_memoized", latencies: Vec::new() };
    let mut hit_len = None;
    for _ in 0..WARM_TRIALS {
        let (status, memo, len, secs) = timed_request(addr, "POST", "/v1/fold", fold_body);
        assert_eq!(status, 200);
        assert_eq!(memo.as_deref(), Some("hit"), "repeat fold must be memoized");
        assert_eq!(len, *hit_len.get_or_insert(len), "memoized body must be byte-identical");
        fold_memoized.latencies.push(secs);
    }
    stop(resident);

    // Architecture gates — not host-gated: the memo skips the whole
    // fold pipeline and the warm cache skips open+decode, on any CPU.
    let memo_speedup = fold_cold.percentile(0.5) / fold_memoized.percentile(0.5);
    assert!(
        memo_speedup > 1.0,
        "memoized fold (p50 {:.5}s) must beat the cold fold (p50 {:.5}s)",
        fold_memoized.percentile(0.5),
        fold_cold.percentile(0.5)
    );
    let cache_speedup = query_cold.percentile(0.5) / query_cached.percentile(0.5);

    let scenarios = [&query_cold, &query_cached, &fold_cold, &fold_memoized];
    for s in &scenarios {
        println!(
            "{:<14} {:>4} reqs {:>9.2} req/s  p50 {:>9.5}s  p99 {:>9.5}s",
            s.name,
            s.latencies.len(),
            s.req_per_sec(),
            s.percentile(0.50),
            s.percentile(0.99)
        );
    }
    println!("memoized fold vs cold fold (p50):   {memo_speedup:.2}x");
    println!("cached query vs cold query (p50):   {cache_speedup:.2}x");

    let out = serde_json::json!({
        "bench": "server_throughput",
        "host": host_info(),
        "trace_events": summary.events,
        "chunks": summary.chunks,
        "scenarios": scenarios.iter().map(|s| s.report()).collect::<Vec<_>>(),
        "memoized_fold_speedup": memo_speedup,
        "cached_query_speedup": cache_speedup,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize"))
        .expect("write BENCH_server.json");
    println!("wrote {path}");
    std::fs::remove_dir_all(&dir).ok();
}
