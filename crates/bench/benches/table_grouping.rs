//! Experiment T-B: allocation grouping vs object resolution — times
//! the end-to-end monitored run with and without grouping (the
//! grouping itself must be near-free) and checks the resolution gap.

use criterion::{criterion_group, criterion_main, Criterion};
use mempersp_bench::{run_analysis, run_ungrouped, Scale};
use mempersp_core::analysis::objects::{object_stats, resolved_fraction};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let grouped = run_analysis(Scale::Quick);
    let ungrouped = run_ungrouped(Scale::Quick);
    assert!(grouped.resolved_fraction > ungrouped.resolved_fraction);
    eprintln!(
        "resolution: grouped {:.1} % vs reference {:.1} %",
        100.0 * grouped.resolved_fraction,
        100.0 * ungrouped.resolved_fraction
    );

    let mut g = c.benchmark_group("table_grouping");
    g.sample_size(10);
    g.bench_function("object_stats_grouped", |b| {
        b.iter(|| {
            let stats = object_stats(black_box(&grouped.report.trace), None);
            black_box(resolved_fraction(&stats))
        })
    });
    g.bench_function("object_stats_ungrouped", |b| {
        b.iter(|| {
            let stats = object_stats(black_box(&ungrouped.report.trace), None);
            black_box(resolved_fraction(&stats))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
