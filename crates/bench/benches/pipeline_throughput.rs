//! End-to-end trace-production pipeline at the one-million-event
//! scale: events flowing straight from the generator into the store
//! writer (the `run --out trace.mps` path) against the two
//! materialize-first baselines it replaces.
//!
//! Scenarios, **in this order** — the peak-RSS high-water mark
//! (`VmHWM`) is monotone over the process lifetime, so the
//! bounded-memory scenarios must run before anything materializes the
//! event list, making the streaming-RSS figure a conservative upper
//! bound:
//!
//! * `streaming` — generator → `StoreWriter` with a compressor pool,
//!   chunks compressed while later events are still being produced
//!   (the overlap the pipeline exists for);
//! * `streaming_serial` — the same fused pass with the inline
//!   (1-thread) compressor: the overlap ablation;
//! * `materialize_convert` — materialize the full event list in
//!   memory, then write the store (the old `Machine::run` +
//!   `convert` split, minus the text hop);
//! * `materialize_prv_convert` — materialize, save as text `.prv`,
//!   re-parse, write the store: the complete pre-streaming tool-chain.
//!
//! Every scenario times the *whole* job — event production through
//! sealed store — and all four produce byte-identical `.mps` files
//! (also asserted across writer thread counts 1/2/4). The streaming
//! pass must beat both baselines on wall-clock, and its peak RSS
//! snapshot must undercut the post-materialize one.
//!
//! Writes `BENCH_pipeline.json` with a `host` block; the overlap
//! speedup is `null` (with a `*_skipped_reason`) when the host has
//! fewer CPUs than the compressor pool.

use mempersp_bench::gentrace::{generate, GenConfig};
use mempersp_bench::{cross_thread_speedup, host_cpus, host_info, peak_rss_bytes};
use mempersp_extrae::trace_format::{load_trace, save_trace};
use mempersp_store::{write_store_with, StoreWriter, DEFAULT_CHUNK_BYTES};
use std::hint::black_box;
use std::time::Instant;

struct Measure {
    name: &'static str,
    events: u64,
    seconds: f64,
    /// Process-lifetime RSS high-water mark right after the scenario.
    peak_rss_bytes: Option<u64>,
}

impl Measure {
    fn per_sec(&self) -> f64 {
        self.events as f64 / self.seconds
    }
}

/// Run a scenario `n` times and keep the fastest trial.
fn best_of(n: usize, mut f: impl FnMut() -> Measure) -> Measure {
    let mut best = f();
    for _ in 1..n {
        let m = f();
        if m.seconds < best.seconds {
            best = m;
        }
    }
    best
}

/// The fused pass: generate and append in one loop, nothing resident.
fn stream_once(cfg: &GenConfig, path: &std::path::Path, threads: usize) -> u64 {
    let header = cfg.header();
    let mut w = StoreWriter::with_threads(path, DEFAULT_CHUNK_BYTES, threads).expect("create");
    for e in cfg.events() {
        w.append(&e).expect("append");
    }
    w.finish(&header).expect("finish").events
}

fn main() {
    let events: u64 = std::env::var("MEMPERSP_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let cfg = GenConfig { events, ..GenConfig::default() };
    let pool = host_cpus().min(4).max(1);
    let dir = std::env::temp_dir().join(format!("mempersp_bench_pipe_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    const TRIALS: usize = 3;
    let streaming = best_of(TRIALS, || {
        let path = dir.join("streaming.mps");
        let t = Instant::now();
        let n = stream_once(&cfg, &path, pool);
        Measure {
            name: "streaming",
            events: n,
            seconds: t.elapsed().as_secs_f64(),
            peak_rss_bytes: peak_rss_bytes(),
        }
    });
    let streaming_serial = best_of(TRIALS, || {
        let path = dir.join("streaming_serial.mps");
        let t = Instant::now();
        let n = stream_once(&cfg, &path, 1);
        Measure {
            name: "streaming_serial",
            events: n,
            seconds: t.elapsed().as_secs_f64(),
            peak_rss_bytes: peak_rss_bytes(),
        }
    });
    // Everything up to here ran with O(chunk) resident events; the
    // identity checks below read whole files into memory, so snapshot
    // the streaming pipeline's high-water mark first.
    let rss_streaming = peak_rss_bytes();

    // Byte-identity across writer thread counts, before anything
    // materializes: the pipelined commit is order-deterministic.
    let streaming_bytes = std::fs::read(dir.join("streaming.mps")).expect("read streaming");
    for threads in [1usize, 2, 4] {
        let path = dir.join(format!("identity_{threads}.mps"));
        stream_once(&cfg, &path, threads);
        let bytes = std::fs::read(&path).expect("read");
        assert_eq!(
            bytes, streaming_bytes,
            "streaming output differs between {pool} and {threads} writer threads"
        );
        std::fs::remove_file(&path).ok();
    }

    let materialize = best_of(TRIALS, || {
        let path = dir.join("materialize.mps");
        let t = Instant::now();
        let trace = generate(&cfg);
        let s = write_store_with(&path, &trace, DEFAULT_CHUNK_BYTES, pool).expect("write");
        black_box(&trace);
        Measure {
            name: "materialize_convert",
            events: s.events,
            seconds: t.elapsed().as_secs_f64(),
            peak_rss_bytes: peak_rss_bytes(),
        }
    });
    let prv_pipeline = best_of(TRIALS, || {
        let prv = dir.join("pipeline.prv");
        let path = dir.join("prv_convert.mps");
        let t = Instant::now();
        let trace = generate(&cfg);
        save_trace(&prv, &trace).expect("save prv");
        drop(trace);
        let parsed = load_trace(&prv).expect("parse prv");
        let s = write_store_with(&path, &parsed, DEFAULT_CHUNK_BYTES, pool).expect("write");
        black_box(&parsed);
        Measure {
            name: "materialize_prv_convert",
            events: s.events,
            seconds: t.elapsed().as_secs_f64(),
            peak_rss_bytes: peak_rss_bytes(),
        }
    });
    let rss_materialize = peak_rss_bytes();

    // The streamed store and both materialized ones hold the same
    // bytes: the pipeline changed when work happens, never the output.
    let materialize_bytes = std::fs::read(dir.join("materialize.mps")).expect("read");
    assert_eq!(streaming_bytes, materialize_bytes, "streaming must equal materialize+convert");
    let prv_bytes = std::fs::read(dir.join("prv_convert.mps")).expect("read");
    assert_eq!(streaming_bytes, prv_bytes, "streaming must equal the prv round-trip store");

    assert!(
        streaming.seconds < materialize.seconds,
        "streaming ({:.4}s) must beat materialize+convert ({:.4}s) on wall-clock",
        streaming.seconds,
        materialize.seconds
    );
    assert!(
        streaming.seconds < prv_pipeline.seconds,
        "streaming ({:.4}s) must beat the .prv pipeline ({:.4}s) on wall-clock",
        streaming.seconds,
        prv_pipeline.seconds
    );
    if let (Some(s), Some(m)) = (rss_streaming, rss_materialize) {
        assert!(
            s < m,
            "streaming peak RSS ({s} B) must stay under the materialized pipeline's ({m} B)"
        );
    }

    let measures = [&streaming, &streaming_serial, &materialize, &prv_pipeline];
    let mut scenarios = Vec::new();
    for m in measures {
        println!(
            "{:<24} {:>9} events {:>9.5}s {:>10.2} K events/s  peak RSS {}",
            m.name,
            m.events,
            m.seconds,
            m.per_sec() / 1e3,
            m.peak_rss_bytes.map_or("n/a".into(), |b| format!("{:.1} MB", b as f64 / 1e6)),
        );
        scenarios.push(serde_json::json!({
            "name": m.name,
            "events": m.events,
            "seconds": m.seconds,
            "events_per_sec": m.per_sec(),
            "peak_rss_bytes": m.peak_rss_bytes,
        }));
    }
    let vs_materialize = materialize.seconds / streaming.seconds;
    let vs_prv = prv_pipeline.seconds / streaming.seconds;
    let (overlap, overlap_skip) =
        cross_thread_speedup(pool, 1.0 / streaming.seconds, 1.0 / streaming_serial.seconds);
    println!("streaming vs materialize+convert:  {vs_materialize:.2}x");
    println!("streaming vs .prv pipeline:        {vs_prv:.2}x");
    match overlap.as_f64() {
        Some(r) => println!("compression overlap ({pool} threads): {r:.2}x"),
        None => println!("compression overlap: null (host too small)"),
    }
    if let (Some(s), Some(m)) = (rss_streaming, rss_materialize) {
        println!(
            "peak RSS: streaming {:.1} MB, after materialize {:.1} MB",
            s as f64 / 1e6,
            m as f64 / 1e6
        );
    }

    let out = serde_json::json!({
        "bench": "pipeline_throughput",
        "host": host_info(),
        "trace_events": streaming.events,
        "writer_threads": pool,
        "scenarios": scenarios,
        "peak_rss_streaming_bytes": rss_streaming,
        "peak_rss_materialize_bytes": rss_materialize,
        "streaming_vs_materialize_speedup": vs_materialize,
        "streaming_vs_prv_pipeline_speedup": vs_prv,
        "overlap_speedup": overlap,
        "overlap_skipped_reason": overlap_skip,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize"))
        .expect("write BENCH_pipeline.json");
    println!("wrote {path}");
    std::fs::remove_dir_all(&dir).ok();
}
