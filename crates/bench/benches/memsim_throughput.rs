//! Simulator-substrate microbenchmarks: accesses per second through
//! the cache hierarchy under the archetypal access patterns, per
//! replacement policy and with/without the prefetcher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mempersp_memsim::{
    AccessKind, HierarchyConfig, MemorySystem, ReplacementPolicy,
};
use std::hint::black_box;

const N: u64 = 100_000;

fn stream(mem: &mut MemorySystem) -> u64 {
    let mut lat = 0u64;
    for i in 0..N {
        lat += mem.access(0, AccessKind::Load, i * 8, 8, i) .latency as u64;
    }
    lat
}

fn random(mem: &mut MemorySystem) -> u64 {
    let mut lat = 0u64;
    let mut x = 0x9E3779B97F4A7C15u64;
    for i in 0..N {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        lat += mem
            .access(0, AccessKind::Load, x % (1 << 26), 8, i)
            .latency as u64;
    }
    lat
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsim_throughput");
    g.throughput(Throughput::Elements(N));

    for (name, prefetch) in [("prefetch_on", true), ("prefetch_off", false)] {
        g.bench_with_input(BenchmarkId::new("stream", name), &prefetch, |b, &pf| {
            b.iter_batched(
                || {
                    let mut cfg = HierarchyConfig::haswell_like();
                    cfg.prefetch.enabled = pf;
                    MemorySystem::new(cfg, 1)
                },
                |mut mem| black_box(stream(&mut mem)),
                criterion::BatchSize::LargeInput,
            )
        });
    }

    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        g.bench_with_input(
            BenchmarkId::new("random", format!("{policy:?}")),
            &policy,
            |b, &p| {
                b.iter_batched(
                    || {
                        let mut cfg = HierarchyConfig::haswell_like();
                        cfg.l1d.replacement = p;
                        cfg.l2.replacement = p;
                        cfg.l3.replacement = p;
                        MemorySystem::new(cfg, 1)
                    },
                    |mut mem| black_box(random(&mut mem)),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
