//! Simulator-substrate throughput: accesses per second on a
//! 4-simulated-core HPCG-like SpMV stream, comparing the pre-PR
//! sequential issue path against the batched/pipelined one.
//!
//! Scenarios (all over the identical operation streams):
//!
//! * `per_access_probe_all` — one `MemorySystem::access` call per
//!   operation with the snoop filter disabled (every store probes all
//!   peer cores), i.e. the pre-PR sequential baseline;
//! * `batched_filtered` — the same stream through `access_batch` with
//!   the line directory active, still sequential;
//! * `epoch_threads1` / `epoch_threads4` — the two-phase epoch
//!   pipeline (private-phase per core, deterministic global replay),
//!   with the private phase on 1 vs 4 worker threads;
//! * `machine_threads1` / `machine_threads4` — the full `Machine`
//!   (PMU + PEBS + tracer) on a conflict-free 4-core workload.
//!
//! Writes a machine-readable summary to `BENCH_memsim.json` so the
//! performance trajectory is tracked across PRs.

use mempersp_core::{Machine, MachineConfig, PebsCoreSelect};
use mempersp_extrae::{AppContext, CodeLocation, MemRequest, Workload};
use mempersp_memsim::{
    AccessKind, Addr, BatchOp, HierarchyConfig, MemorySystem, PrivateResult, UncoreReq,
};
use std::hint::black_box;
use std::time::Instant;

const CORES: usize = 4;
/// Rows of the synthetic SpMV sweep per core (27 points per row →
/// 82 accesses per row).
const ROWS: usize = 20_000;
const NNZ: usize = 27;

/// Per-core HPCG-like op stream: for each matrix row, stream the
/// column indices and values, gather `x` within the 27-point band
/// around the diagonal, store `y`. Cores work on disjoint address
/// slabs (domain decomposition), so epochs are conflict-free — the
/// common case the pipeline optimizes.
fn spmv_ops(core: usize) -> Vec<BatchOp> {
    let slab = 1u64 << 28;
    let base = core as u64 * slab;
    let cols = base;
    let vals = base + (1 << 26);
    let x = base + (2 << 26);
    let y = base + (3 << 26);
    let mut ops = Vec::with_capacity(ROWS * (NNZ * 3 + 1));
    for r in 0..ROWS as u64 {
        for k in 0..NNZ as u64 {
            let idx = r * NNZ as u64 + k;
            ops.push(BatchOp { kind: AccessKind::Load, addr: cols + idx * 4, size: 4 });
            ops.push(BatchOp { kind: AccessKind::Load, addr: vals + idx * 8, size: 8 });
            // Banded gather, like the 27-point stencil: neighbours
            // within ±2 grid planes of the diagonal.
            let j = (r + 83 * (k % 5)).min(ROWS as u64 - 1);
            ops.push(BatchOp { kind: AccessKind::Load, addr: x + j * 8, size: 8 });
        }
        ops.push(BatchOp { kind: AccessKind::Store, addr: y + r * 8, size: 8 });
    }
    ops
}

struct Measure {
    name: &'static str,
    accesses: u64,
    seconds: f64,
}

impl Measure {
    fn rate(&self) -> f64 {
        self.accesses as f64 / self.seconds
    }
}

/// Pre-PR equivalent: per-access calls, snoop filter off (stores probe
/// every peer core, as the original inline snoop loop did).
fn bench_per_access(streams: &[Vec<BatchOp>]) -> Measure {
    let mut mem = MemorySystem::new(HierarchyConfig::haswell_like(), CORES);
    mem.set_snoop_filter(false);
    let mut lat = 0u64;
    let t = Instant::now();
    let per_round = 4096usize;
    let len = streams[0].len();
    let mut pos = 0usize;
    let mut now = 0u64;
    while pos < len {
        let end = (pos + per_round).min(len);
        for (core, stream) in streams.iter().enumerate() {
            for op in &stream[pos..end] {
                lat += mem.access(core, op.kind, op.addr, op.size, now).latency as u64;
            }
        }
        now += per_round as u64;
        pos = end;
    }
    black_box(lat);
    Measure {
        name: "per_access_probe_all",
        accesses: (len * CORES) as u64,
        seconds: t.elapsed().as_secs_f64(),
    }
}

/// Sequential batched path with the directory snoop filter.
fn bench_batched(streams: &[Vec<BatchOp>]) -> Measure {
    let mut mem = MemorySystem::new(HierarchyConfig::haswell_like(), CORES);
    let mut out = Vec::new();
    let mut lat = 0u64;
    let t = Instant::now();
    let per_round = 4096usize;
    let len = streams[0].len();
    let mut pos = 0usize;
    let mut now = 0u64;
    while pos < len {
        let end = (pos + per_round).min(len);
        for (core, stream) in streams.iter().enumerate() {
            out.clear();
            mem.access_batch(core, &stream[pos..end], now, &mut out);
            lat += out.iter().map(|r| r.latency as u64).sum::<u64>();
        }
        now += per_round as u64;
        pos = end;
    }
    black_box(lat);
    Measure {
        name: "batched_filtered",
        accesses: (len * CORES) as u64,
        seconds: t.elapsed().as_secs_f64(),
    }
}

/// The two-phase epoch pipeline at memsim level: private-phase
/// simulation of all cores (optionally on worker threads), directory
/// sync, then the deterministic global replay against L3/DRAM.
fn bench_epoch(streams: &[Vec<BatchOp>], threads: usize, name: &'static str) -> Measure {
    let mut mem = MemorySystem::new(HierarchyConfig::haswell_like(), CORES);
    let hier = mem.config().clone();
    let mut results: Vec<Vec<PrivateResult>> = vec![Vec::new(); CORES];
    let mut reqs: Vec<Vec<UncoreReq>> = vec![Vec::new(); CORES];
    let mut dirs: Vec<Vec<Addr>> = vec![Vec::new(); CORES];
    let mut out = Vec::new();
    let mut lat = 0u64;
    let t = Instant::now();
    let per_round = 32_768usize;
    let len = streams[0].len();
    let mut pos = 0usize;
    let mut now = 0u64;
    while pos < len {
        let end = (pos + per_round).min(len);
        let epoch: Vec<&[BatchOp]> = streams.iter().map(|s| &s[pos..end]).collect();

        // Phase 1: private paths, in parallel.
        {
            let paths = mem.core_paths_mut();
            let mut work: Vec<_> = paths
                .iter_mut()
                .zip(&epoch)
                .zip(results.iter_mut().zip(reqs.iter_mut()).zip(dirs.iter_mut()))
                .map(|((path, ops), ((res, rq), dr))| (path, *ops, res, rq, dr))
                .collect();
            if threads <= 1 {
                for (path, ops, res, rq, dr) in &mut work {
                    path.simulate_private(&hier, true, ops, res, rq, dr);
                }
            } else {
                let per_chunk = work.len().div_ceil(threads);
                std::thread::scope(|s| {
                    for chunk in work.chunks_mut(per_chunk) {
                        s.spawn(|| {
                            for (path, ops, res, rq, dr) in chunk {
                                path.simulate_private(&hier, true, ops, res, rq, dr);
                            }
                        });
                    }
                });
            }
        }
        for (c, d) in dirs.iter_mut().enumerate() {
            mem.sync_directory(c, d);
        }

        // Phase 2: global replay in issue order.
        for core in 0..CORES {
            out.clear();
            lat += mem.complete_epoch(core, &results[core], &reqs[core], now, &mut out);
            black_box(out.len());
        }
        for v in &mut results {
            v.clear();
        }
        for v in &mut reqs {
            v.clear();
        }
        now += per_round as u64;
        pos = end;
    }
    black_box(lat);
    Measure { name, accesses: (len * CORES) as u64, seconds: t.elapsed().as_secs_f64() }
}

/// The full machine on a conflict-free multi-core stream.
struct FourCoreStream;

impl Workload for FourCoreStream {
    fn name(&self) -> String {
        "bench-4core".into()
    }

    fn run(&mut self, ctx: &mut dyn AppContext) {
        let ip = ctx.location("bench.rs", 1, "spmv");
        let slab = 1u64 << 22;
        let base = ctx.malloc(0, slab * CORES as u64, &CodeLocation::new("bench.rs", 2, "b"));
        let mut bufs: Vec<Vec<MemRequest>> = vec![Vec::with_capacity(4096); CORES];
        ctx.enter(0, "spmv");
        for round in 0..160u64 {
            for (c, buf) in bufs.iter_mut().enumerate() {
                buf.clear();
                let cbase = base + c as u64 * slab;
                for i in 0..4096u64 {
                    let a = cbase + ((round * 4096 + i) * 24) % slab;
                    if i % 9 == 0 {
                        buf.push(MemRequest::store(ip, a, 8));
                    } else {
                        buf.push(MemRequest::load(ip, a, 8));
                    }
                }
            }
            for (c, buf) in bufs.iter().enumerate() {
                ctx.access_batch(c, buf);
            }
            // Synchronize occasionally, as an OpenMP loop would; the
            // epoch cap drives most flushes.
            if round % 16 == 15 {
                ctx.barrier();
            }
        }
        ctx.exit(0, "spmv");
    }
}

fn bench_machine(threads: usize, name: &'static str) -> Measure {
    let mut cfg = MachineConfig::haswell(CORES);
    cfg.threads = threads;
    cfg.pebs_cores = PebsCoreSelect::Only(0);
    let mut machine = Machine::new(cfg);
    let t = Instant::now();
    let report = machine.run(&mut FourCoreStream);
    let seconds = t.elapsed().as_secs_f64();
    Measure { name, accesses: report.stats.total_cores().accesses(), seconds }
}

/// Run a scenario `n` times and keep the fastest trial — the
/// least-noise estimate of its true cost (interference only ever
/// makes a trial slower, never faster).
fn best_of(n: usize, mut f: impl FnMut() -> Measure) -> Measure {
    let mut best = f();
    for _ in 1..n {
        let m = f();
        if m.seconds < best.seconds {
            best = m;
        }
    }
    best
}

fn main() {
    let streams: Vec<Vec<BatchOp>> = (0..CORES).map(spmv_ops).collect();
    const TRIALS: usize = 3;
    // Warm up the process (page faults, frequency ramp) so the first
    // measured scenario is not penalized; the warm-up run is discarded.
    black_box(bench_per_access(&streams));
    let measures = vec![
        best_of(TRIALS, || bench_per_access(&streams)),
        best_of(TRIALS, || bench_batched(&streams)),
        best_of(TRIALS, || bench_epoch(&streams, 1, "epoch_threads1")),
        best_of(TRIALS, || bench_epoch(&streams, 4, "epoch_threads4")),
        best_of(TRIALS, || bench_machine(1, "machine_threads1")),
        best_of(TRIALS, || bench_machine(4, "machine_threads4")),
    ];

    let mut scenarios = Vec::new();
    for m in &measures {
        println!(
            "{:<22} {:>10} accesses {:>8.3}s {:>8.2} M/s",
            m.name,
            m.accesses,
            m.seconds,
            m.rate() / 1e6
        );
        scenarios.push(serde_json::json!({
            "name": m.name,
            "accesses": m.accesses,
            "seconds": m.seconds,
            "accesses_per_sec": m.rate(),
        }));
    }
    let batched_speedup = measures[1].rate() / measures[0].rate();
    // Headline: the best epoch-pipeline configuration against the
    // pre-PR sequential baseline. Thread count is a tuning knob (the
    // private phase only profits from extra workers when the host has
    // spare cores), so the pipeline's figure of merit is its best
    // configuration on this host.
    let pipeline_speedup =
        measures[2].rate().max(measures[3].rate()) / measures[0].rate();
    let (machine_speedup, machine_skip) =
        mempersp_bench::cross_thread_speedup(4, measures[5].rate(), measures[4].rate());
    println!("batched vs per-access:            {batched_speedup:.2}x");
    println!("epoch pipeline vs per-access:     {pipeline_speedup:.2}x");
    match machine_speedup.as_f64() {
        Some(s) => println!("machine 4 threads vs 1 thread:    {s:.2}x"),
        None => println!(
            "machine 4 threads vs 1 thread:    skipped ({})",
            machine_skip.as_deref().unwrap_or("no reason recorded")
        ),
    }

    let summary = serde_json::json!({
        "bench": "memsim_throughput",
        "cores": CORES,
        "host_cpus": mempersp_bench::host_cpus(),
        "host": mempersp_bench::host_info(),
        "scenarios": scenarios,
        "speedup_batched_vs_per_access": batched_speedup,
        "speedup_pipeline_vs_per_access": pipeline_speedup,
        "speedup_machine_threads4_vs_threads1": machine_speedup,
        "speedup_machine_threads4_vs_threads1_skipped_reason": machine_skip,
    });
    // Anchor at the workspace root (cargo runs benches with the
    // package dir as CWD), so the tracked summary has one location.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_memsim.json");
    std::fs::write(path, serde_json::to_string_pretty(&summary).expect("serialize"))
        .expect("write BENCH_memsim.json");
    println!("wrote {path}");
}
