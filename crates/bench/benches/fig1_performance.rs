//! Fig. 1, bottom panel: counter-per-instruction rates and MIPS over
//! folded time.

use criterion::{criterion_group, criterion_main, Criterion};
use mempersp_bench::{run_analysis, Scale};
use mempersp_core::report::figure::performance_csv;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analysis = run_analysis(Scale::Quick);
    let folded = &analysis.folded_iteration;

    let mips = folded.mean_mips();
    assert!(mips > 0.0);
    let series = folded.performance_series(101);
    assert!(series.iter().all(|p| p.mips.is_finite()));
    eprintln!("performance panel: mean MIPS {mips:.0}");

    let mut g = c.benchmark_group("fig1_performance");
    g.bench_function("performance_series_201", |b| {
        b.iter(|| black_box(folded.performance_series(201).len()))
    });
    g.bench_function("emit_perf_csv", |b| {
        b.iter(|| black_box(performance_csv(folded, 201).len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
