//! Ablation: folding-model choices — fit model (isotonic vs binned
//! mean), bin count, and the tracer's allocation-tracking threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mempersp_bench::{run_analysis, Scale};
use mempersp_core::workflow::analyze_hpcg;
use mempersp_core::MachineConfig;
use mempersp_folding::{fold_region, FitModel, FoldingConfig};
use mempersp_hpcg::HpcgConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analysis = run_analysis(Scale::Quick);
    let trace = &analysis.report.trace;

    // Report the quality side: how close the two fits agree, and what
    // the threshold does to resolution.
    for fit in [FitModel::Isotonic, FitModel::BinnedMean] {
        let cfg = FoldingConfig { fit, ..Default::default() };
        let f = fold_region(trace, "CG_iteration", &cfg).unwrap();
        eprintln!("{fit:?}: mean MIPS {:.0}", f.mean_mips());
    }
    for threshold in [64u64, 1024, 1 << 20] {
        let mut mcfg = MachineConfig::small();
        mcfg.tracer.alloc_threshold = threshold;
        let hcfg = HpcgConfig { nx: 8, max_iters: 2, mg_levels: 2, group_allocations: false, use_mg: true };
        let a = analyze_hpcg(mcfg, hcfg);
        eprintln!(
            "threshold {threshold:>8} B: {:.1} % samples resolved (ungrouped run)",
            100.0 * a.resolved_fraction
        );
    }

    let mut g = c.benchmark_group("ablation_folding");
    for fit in [FitModel::Isotonic, FitModel::BinnedMean] {
        g.bench_with_input(BenchmarkId::new("fit", format!("{fit:?}")), &fit, |b, &fit| {
            let cfg = FoldingConfig { fit, ..Default::default() };
            b.iter(|| black_box(fold_region(black_box(trace), "CG_iteration", &cfg).unwrap()))
        });
    }
    for bins in [8usize, 32, 128] {
        g.bench_with_input(BenchmarkId::new("bins", bins), &bins, |b, &bins| {
            let cfg = FoldingConfig { bins, ..Default::default() };
            b.iter(|| black_box(fold_region(black_box(trace), "CG_iteration", &cfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
